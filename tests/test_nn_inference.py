"""Tests for the compiled inference plans (repro.nn.inference), the in-place
optimisers, and the vectorised one-pass query translation."""

import numpy as np
import pytest

from repro import nn
from repro.core import DuetConfig
from repro.core.encoding import QueryCodec
from repro.data import make_census
from repro.nn import ForwardPlan, PlanOptions, StageSpec, Tensor, lower_module
from repro.nn.inference import masked_block_mass, stable_sigmoid, stable_softmax
from repro.workload import (
    Query,
    make_inworkload,
    make_multi_predicate_workload,
    make_random_workload,
)


# ----------------------------------------------------------------------
# PlanOptions
# ----------------------------------------------------------------------
class TestPlanOptions:
    def test_default_is_float64(self):
        assert PlanOptions().numpy_dtype is np.float64

    def test_float32(self):
        assert PlanOptions(dtype="float32").numpy_dtype is np.float32

    def test_unknown_dtype_rejected(self):
        with pytest.raises(ValueError):
            PlanOptions(dtype="float16")

    def test_round_trips_through_dict(self):
        options = PlanOptions(dtype="float32")
        assert PlanOptions.from_dict(options.to_dict()) == options


# ----------------------------------------------------------------------
# ForwardPlan
# ----------------------------------------------------------------------
class TestForwardPlan:
    def _plan(self, dtype="float64"):
        rng = np.random.default_rng(0)
        stages = [
            StageSpec(rng.normal(size=(6, 8)), rng.normal(size=8), activation="relu"),
            StageSpec(rng.normal(size=(8, 8)), rng.normal(size=8), activation="relu",
                      residual_from=0),
            StageSpec(rng.normal(size=(8, 4)), rng.normal(size=4)),
        ]
        return ForwardPlan(stages, PlanOptions(dtype=dtype)), stages

    def test_matches_manual_forward(self):
        plan, stages = self._plan()
        x = np.random.default_rng(1).normal(size=(5, 6))
        h0 = np.maximum(x @ stages[0].weight + stages[0].bias, 0.0)
        h1 = np.maximum(h0 @ stages[1].weight + stages[1].bias, 0.0) + h0
        expected = h1 @ stages[2].weight + stages[2].bias
        np.testing.assert_allclose(plan.run(x), expected, rtol=1e-12)

    def test_buffers_are_reused_across_batches(self):
        plan, _ = self._plan()
        x = np.random.default_rng(2).normal(size=(16, 6))
        out1 = plan.run(x)
        first_buffer = out1.base if out1.base is not None else out1
        out2 = plan.run(x[:4])
        second_buffer = out2.base if out2.base is not None else out2
        assert first_buffer is second_buffer  # no reallocation for smaller batches
        assert plan.buffer_bytes > 0

    def test_output_valid_until_next_run(self):
        plan, _ = self._plan()
        rng = np.random.default_rng(3)
        a, b = rng.normal(size=(3, 6)), rng.normal(size=(3, 6))
        first = plan.run(a).copy()
        plan.run(b)
        np.testing.assert_allclose(plan.run(a), first)

    def test_float32_stays_close(self):
        plan64, _ = self._plan()
        plan32, _ = self._plan(dtype="float32")
        x = np.random.default_rng(4).normal(size=(7, 6))
        out64 = plan64.run(x)
        out32 = plan32.run(x)
        assert out32.dtype == np.float32
        np.testing.assert_allclose(out32, out64, rtol=1e-4, atol=1e-4)

    def test_empty_batch_returns_empty_output(self):
        plan, _ = self._plan()
        out = plan.run(np.zeros((0, 6)))
        assert out.shape == (0, 4)

    def test_rejects_bad_shapes(self):
        plan, _ = self._plan()
        with pytest.raises(ValueError):
            plan.run(np.zeros((3, 5)))
        with pytest.raises(ValueError):
            ForwardPlan([], PlanOptions())

    def test_rejects_mismatched_stage_widths(self):
        with pytest.raises(ValueError):
            ForwardPlan([StageSpec(np.zeros((4, 5)), None),
                         StageSpec(np.zeros((6, 2)), None)])

    def test_rejects_forward_residual_reference(self):
        with pytest.raises(ValueError):
            ForwardPlan([StageSpec(np.zeros((4, 4)), None, residual_from=0)])


# ----------------------------------------------------------------------
# Lowering hooks
# ----------------------------------------------------------------------
class TestLowering:
    def test_linear_exports_raw_weights(self):
        layer = nn.Linear(3, 4, rng=np.random.default_rng(0))
        weight, bias = layer.export_weights()
        np.testing.assert_array_equal(weight, layer.weight.data)
        np.testing.assert_array_equal(bias, layer.bias.data)

    def test_masked_linear_folds_mask(self):
        layer = nn.MaskedLinear(3, 4, rng=np.random.default_rng(0))
        mask = (np.random.default_rng(1).uniform(size=(3, 4)) > 0.5).astype(float)
        layer.set_mask(mask)
        weight, _ = layer.export_weights()
        np.testing.assert_array_equal(weight, layer.weight.data * mask)

    def test_sequential_lowering_matches_tape(self):
        rng = np.random.default_rng(5)
        net = nn.Sequential(nn.Linear(5, 9, rng=rng), nn.ReLU(),
                            nn.Linear(9, 9, rng=rng), nn.Tanh(),
                            nn.Linear(9, 2, rng=rng), nn.Sigmoid())
        plan = lower_module(net)
        x = rng.normal(size=(6, 5))
        with nn.no_grad():
            expected = net(Tensor(x)).numpy()
        np.testing.assert_allclose(plan.run(x), expected, rtol=1e-12)

    def test_made_lowering_matches_tape(self):
        made = nn.MADE(input_bins=[3, 2, 4], output_bins=[4, 3, 5],
                       hidden_sizes=[16, 16], residual=True, seed=0)
        plan = lower_module(made)
        x = np.random.default_rng(6).normal(size=(5, made.total_input))
        with nn.no_grad():
            expected = made(Tensor(x)).numpy()
        np.testing.assert_allclose(plan.run(x), expected, rtol=1e-12)

    def test_unloerable_module_rejected(self):
        with pytest.raises(TypeError):
            lower_module(nn.LSTM(4, 4))

    def test_stable_helpers_match_tape(self):
        from repro.nn import functional as F

        x = np.random.default_rng(7).normal(size=(4, 6)) * 10
        np.testing.assert_allclose(stable_softmax(x.copy()),
                                   F.softmax(Tensor(x)).numpy(), rtol=1e-12)
        np.testing.assert_allclose(stable_sigmoid(x.copy()),
                                   Tensor(x).sigmoid().numpy(), rtol=1e-12)


# ----------------------------------------------------------------------
# Fused masked selectivity
# ----------------------------------------------------------------------
class TestMaskedBlockMass:
    def _reference(self, logits, blocks, masks):
        result = np.ones(logits.shape[0])
        for (start, end), mask in zip(blocks, masks):
            if mask is None:
                continue
            block = logits[:, start:end]
            dist = np.exp(block - block.max(axis=1, keepdims=True))
            dist /= dist.sum(axis=1, keepdims=True)
            result *= (dist * mask).sum(axis=1)
        return result

    def test_matches_dense_softmax_reference(self):
        rng = np.random.default_rng(8)
        blocks = [(0, 4), (4, 9), (9, 12)]
        logits = rng.normal(size=(6, 12)) * 5
        masks = [
            (rng.uniform(size=(6, 4)) > 0.4).astype(float),
            None,
            (rng.uniform(size=(6, 3)) > 0.4).astype(float),
        ]
        np.testing.assert_allclose(masked_block_mass(logits, blocks, masks),
                                   self._reference(logits, blocks, masks),
                                   rtol=1e-12)

    def test_all_unconstrained_is_exactly_one(self):
        logits = np.random.default_rng(9).normal(size=(3, 7))
        out = masked_block_mass(logits, [(0, 3), (3, 7)], [None, None])
        np.testing.assert_array_equal(out, np.ones(3))

    def test_extreme_logits_are_stable(self):
        logits = np.array([[1e4, -1e4, 5e3, 0.0]])
        mask = np.array([[1.0, 0.0, 1.0, 0.0]])
        out = masked_block_mass(logits, [(0, 4)], [mask])
        assert np.isfinite(out).all() and 0.0 <= out[0] <= 1.0

    def test_zero_mask_gives_zero_mass(self):
        logits = np.random.default_rng(10).normal(size=(2, 5))
        out = masked_block_mass(logits, [(0, 5)], [np.zeros((2, 5))])
        np.testing.assert_array_equal(out, np.zeros(2))


# ----------------------------------------------------------------------
# In-place optimisers
# ----------------------------------------------------------------------
class TestInPlaceOptimizers:
    def _reference_adam_step(self, data, grad, first, second, step, lr=0.1,
                             beta1=0.9, beta2=0.999, eps=1e-8, wd=0.0):
        if wd:
            grad = grad + wd * data
        first = beta1 * first + (1 - beta1) * grad
        second = beta2 * second + (1 - beta2) * grad ** 2
        corrected_first = first / (1 - beta1 ** step)
        corrected_second = second / (1 - beta2 ** step)
        return (data - lr * corrected_first / (np.sqrt(corrected_second) + eps),
                first, second)

    @pytest.mark.parametrize("weight_decay", [0.0, 0.01])
    def test_adam_matches_reference_formula(self, weight_decay):
        rng = np.random.default_rng(11)
        parameter = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        optimizer = nn.Adam([parameter], lr=0.1, weight_decay=weight_decay)
        data = parameter.data.copy()
        first = np.zeros_like(data)
        second = np.zeros_like(data)
        for step in range(1, 4):
            grad = rng.normal(size=(4, 3))
            parameter.grad = grad.copy()
            optimizer.step()
            data, first, second = self._reference_adam_step(
                data, grad, first, second, step, wd=weight_decay)
            np.testing.assert_allclose(parameter.data, data, rtol=1e-12, atol=1e-12)

    def test_adam_updates_in_place(self):
        parameter = Tensor(np.ones((8, 8)), requires_grad=True)
        buffer_before = parameter.data
        optimizer = nn.Adam([parameter], lr=0.1)
        parameter.grad = np.ones((8, 8))
        optimizer.step()
        assert parameter.data is buffer_before  # no rebinding, views stay live

    @pytest.mark.parametrize("momentum,weight_decay", [(0.0, 0.0), (0.9, 0.0),
                                                       (0.9, 0.01)])
    def test_sgd_matches_reference_formula(self, momentum, weight_decay):
        rng = np.random.default_rng(12)
        parameter = Tensor(rng.normal(size=(5,)), requires_grad=True)
        optimizer = nn.SGD([parameter], lr=0.05, momentum=momentum,
                           weight_decay=weight_decay)
        data = parameter.data.copy()
        velocity = np.zeros_like(data)
        for _ in range(3):
            grad = rng.normal(size=(5,))
            parameter.grad = grad.copy()
            optimizer.step()
            effective = grad + weight_decay * data
            if momentum:
                velocity = momentum * velocity + effective
                update = velocity
            else:
                update = effective
            data = data - 0.05 * update
            np.testing.assert_allclose(parameter.data, data, rtol=1e-12, atol=1e-12)

    def test_sgd_leaves_gradient_unchanged(self):
        parameter = Tensor(np.ones(4), requires_grad=True)
        optimizer = nn.SGD([parameter], lr=0.1)
        grad = np.full(4, 2.0)
        parameter.grad = grad
        optimizer.step()
        np.testing.assert_array_equal(grad, np.full(4, 2.0))

    def test_clip_grad_norm_scales_in_place(self):
        parameter = Tensor(np.zeros(3), requires_grad=True)
        parameter.grad = np.array([3.0, 4.0, 0.0])
        grad_buffer = parameter.grad
        norm = nn.clip_grad_norm([parameter], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert parameter.grad is grad_buffer
        np.testing.assert_allclose(np.linalg.norm(parameter.grad), 1.0)


# ----------------------------------------------------------------------
# One-pass vectorised translation
# ----------------------------------------------------------------------
class TestTranslateBatch:
    @pytest.fixture(scope="class")
    def table(self):
        return make_census(scale=0.04, seed=0)

    def _reference_arrays(self, codec, queries):
        batch = len(queries)
        shape = (batch, codec.table.num_columns, codec.max_predicates)
        values = np.full(shape, -1, dtype=np.int64)
        ops = np.full(shape, -1, dtype=np.int64)
        for qi, query in enumerate(queries):
            for ci, preds in codec.canonical_predicates(query).items():
                for slot, canonical in enumerate(preds):
                    values[qi, ci, slot] = canonical.code
                    ops[qi, ci, slot] = canonical.op_index
        return values, ops

    def _reference_masks(self, codec, queries):
        masks = [np.ones((len(queries), c.num_distinct))
                 for c in codec.table.columns]
        for qi, query in enumerate(queries):
            for predicate in query.predicates:
                ci = codec.table.column_index(predicate.column)
                masks[ci][qi] *= predicate.valid_value_mask(codec.table.column(ci))
        return masks

    def _check(self, codec, queries):
        values, ops, masks = codec.translate_batch(queries)
        ref_values, ref_ops = self._reference_arrays(codec, queries)
        ref_masks = self._reference_masks(codec, queries)
        np.testing.assert_array_equal(values, ref_values)
        np.testing.assert_array_equal(ops, ref_ops)
        for ci, mask in enumerate(masks):
            if mask is None:
                assert np.all(ref_masks[ci] == 1.0)
            else:
                np.testing.assert_array_equal(np.asarray(mask), ref_masks[ci])

    @pytest.mark.parametrize("maker,seed", [
        (make_random_workload, 7), (make_inworkload, 9)])
    def test_matches_scalar_path_single_predicate(self, table, maker, seed):
        codec = QueryCodec(table, DuetConfig(hidden_sizes=(16,)))
        self._check(codec, maker(table, num_queries=150, seed=seed).queries)

    def test_matches_scalar_path_multi_predicate(self, table):
        codec = QueryCodec(table, DuetConfig(
            hidden_sizes=(16,), multi_predicate=True, max_predicates_per_column=2))
        workload = make_multi_predicate_workload(table, num_queries=150, seed=11)
        self._check(codec, workload.queries)

    def test_edge_cases(self, table):
        codec = QueryCodec(table, DuetConfig(hidden_sizes=(16,)))
        column = table.columns[0]
        self._check(codec, [
            Query.from_triples([]),
            Query.from_triples([(column.name, ">=", column.distinct_values[0])]),
            Query.from_triples([(column.name, "=", 999999)]),
            Query.from_triples([(column.name, "<", column.distinct_values[0])]),
            Query.from_triples([(column.name, "<=", column.distinct_values[-1])]),
        ])

    def test_whole_domain_only_column_keeps_none_sentinel(self, table):
        """A predicate covering the whole domain constrains nothing: its
        column must keep the None sentinel (exact factor 1, no softmax)."""
        codec = QueryCodec(table, DuetConfig(hidden_sizes=(16,)))
        column = table.columns[0]
        _, _, masks = codec.translate_batch(
            [Query.from_triples([(column.name, ">=", column.distinct_values[0])])])
        assert all(mask is None for mask in masks)

    def test_interval_cache_stays_correct_on_repeats(self, table):
        codec = QueryCodec(table, DuetConfig(hidden_sizes=(16,)))
        queries = make_random_workload(table, num_queries=80, seed=13).queries
        for _ in range(2):  # second round is fully cache-hit
            self._check(codec, queries)

    def test_slot_overflow_raises_unless_disabled(self, table):
        codec = QueryCodec(table, DuetConfig(hidden_sizes=(16,)))
        column = table.columns[0]
        query = Query.from_triples([
            (column.name, ">=", column.distinct_values[2]),
            (column.name, "<=", column.distinct_values[4])])
        with pytest.raises(ValueError, match="at most 1"):
            codec.translate_batch([query])
        _, _, masks = codec.translate_batch([query], enforce_slots=False)
        np.testing.assert_array_equal(
            np.asarray(masks[0][0]),
            self._reference_masks(codec, [query])[0][0])
