"""Tests for predicates, queries, the ground-truth executor, and generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Column, Table, make_census
from repro.workload import (
    Operator,
    Predicate,
    Query,
    Workload,
    cardinality,
    execute,
    make_inworkload,
    make_multi_predicate_workload,
    make_random_workload,
    selectivity,
    true_cardinalities,
)
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


@pytest.fixture(scope="module")
def toy_table():
    return Table.from_dict("toy", {
        "a": [1, 2, 3, 4, 5, 1, 2, 3, 4, 5],
        "b": ["x", "x", "x", "y", "y", "y", "z", "z", "z", "z"],
        "c": [10, 10, 20, 20, 30, 30, 40, 40, 50, 50],
    })


class TestOperator:
    def test_from_string(self):
        assert Operator.from_string(">=") is Operator.GE
        assert Operator.from_string("=") is Operator.EQ

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            Operator.from_string("!=")

    def test_indices_are_stable_and_unique(self):
        indices = [op.index for op in Operator]
        assert sorted(indices) == list(range(5))


class TestPredicate:
    def test_string_operator_coerced(self):
        predicate = Predicate("a", ">=", 3)
        assert predicate.operator is Operator.GE

    @pytest.mark.parametrize("op,expected", [
        ("=", [False, False, True, False, False]),
        (">", [False, False, False, True, True]),
        (">=", [False, False, True, True, True]),
        ("<", [True, True, False, False, False]),
        ("<=", [True, True, True, False, False]),
    ])
    def test_valid_value_mask(self, op, expected):
        column = Column.from_values("a", [1, 2, 3, 4, 5])
        mask = Predicate("a", op, 3).valid_value_mask(column)
        np.testing.assert_array_equal(mask, expected)

    def test_mask_for_absent_equality_value(self):
        column = Column.from_values("a", [1, 2, 4, 5])
        mask = Predicate("a", "=", 3).valid_value_mask(column)
        assert not mask.any()

    def test_range_with_absent_boundary(self):
        column = Column.from_values("a", [1, 2, 4, 5])
        mask = Predicate("a", ">", 3).valid_value_mask(column)
        np.testing.assert_array_equal(mask, [False, False, True, True])
        mask = Predicate("a", "<=", 3).valid_value_mask(column)
        np.testing.assert_array_equal(mask, [True, True, False, False])

    def test_evaluate_codes(self, toy_table):
        column = toy_table.column("a")
        mask = Predicate("a", ">=", 4).evaluate_codes(column, column.codes)
        assert mask.sum() == 4

    def test_string_column_range(self):
        column = Column.from_values("b", ["apple", "banana", "cherry"])
        mask = Predicate("b", "<=", "banana").valid_value_mask(column)
        np.testing.assert_array_equal(mask, [True, True, False])

    def test_str(self):
        assert str(Predicate("a", ">=", 3)) == "a >= 3"


class TestQuery:
    def test_from_triples(self):
        query = Query.from_triples([("a", ">=", 2), ("b", "=", "x")])
        assert query.num_predicates == 2
        assert query.columns == ["a", "b"]

    def test_predicates_on(self):
        query = Query.from_triples([("a", ">=", 2), ("a", "<=", 4), ("b", "=", "x")])
        assert len(query.predicates_on("a")) == 2
        assert query.max_predicates_per_column() == 2

    def test_validate_unknown_column(self, toy_table):
        query = Query.from_triples([("zzz", "=", 1)])
        with pytest.raises(KeyError):
            query.validate(toy_table)

    def test_validate_empty(self, toy_table):
        with pytest.raises(ValueError):
            Query([]).validate(toy_table)

    def test_str(self):
        query = Query.from_triples([("a", ">=", 2), ("b", "=", "x")])
        assert "AND" in str(query)


class TestExecutor:
    def test_single_equality(self, toy_table):
        assert cardinality(toy_table, Query.from_triples([("b", "=", "x")])) == 3

    def test_range(self, toy_table):
        assert cardinality(toy_table, Query.from_triples([("a", ">", 3)])) == 4

    def test_conjunction(self, toy_table):
        query = Query.from_triples([("a", "<=", 3), ("b", "=", "z")])
        assert cardinality(toy_table, query) == 2

    def test_two_sided_range_on_one_column(self, toy_table):
        query = Query.from_triples([("c", ">=", 20), ("c", "<=", 40)])
        assert cardinality(toy_table, query) == 6

    def test_empty_result(self, toy_table):
        query = Query.from_triples([("a", ">", 5)])
        assert cardinality(toy_table, query) == 0

    def test_selectivity(self, toy_table):
        assert selectivity(toy_table, Query.from_triples([("b", "=", "x")])) == pytest.approx(0.3)

    def test_execute_mask_shape(self, toy_table):
        mask = execute(toy_table, Query.from_triples([("a", ">=", 1)]))
        assert mask.shape == (toy_table.num_rows,)
        assert mask.all()

    def test_true_cardinalities_batch(self, toy_table):
        queries = [Query.from_triples([("a", "=", value)]) for value in (1, 2, 6)]
        np.testing.assert_array_equal(true_cardinalities(toy_table, queries), [2, 2, 0])

    def test_matches_bruteforce_on_random_queries(self):
        """Executor must agree with a naive per-row evaluation."""
        table = make_census(scale=0.05, seed=9)
        workload = make_random_workload(table, num_queries=30, seed=5, label=False)
        raw = {name: table.column(name).distinct_values[table.column(name).codes]
               for name in table.column_names}
        comparators = {
            Operator.EQ: lambda values, literal: values == literal,
            Operator.GT: lambda values, literal: values > literal,
            Operator.LT: lambda values, literal: values < literal,
            Operator.GE: lambda values, literal: values >= literal,
            Operator.LE: lambda values, literal: values <= literal,
        }
        for query in workload:
            mask = np.ones(table.num_rows, dtype=bool)
            for predicate in query.predicates:
                mask &= comparators[predicate.operator](raw[predicate.column], predicate.value)
            assert cardinality(table, query) == int(mask.sum())


class TestVectorizedLabeling:
    """``true_cardinalities`` labels in chunks; it must match the per-query path."""

    def test_matches_per_query_executor(self):
        table = make_census(scale=0.05, seed=4)
        workload = make_random_workload(table, num_queries=80, seed=21, label=False)
        expected = np.array([cardinality(table, query) for query in workload],
                            dtype=np.int64)
        np.testing.assert_array_equal(
            true_cardinalities(table, workload.queries), expected)

    def test_chunk_boundaries_do_not_matter(self, toy_table):
        queries = [Query.from_triples([("a", op, value)])
                   for op in ("=", ">", "<=") for value in (1, 3, 5)]
        reference = true_cardinalities(toy_table, queries)
        for chunk_size in (1, 2, 4, 7, len(queries), 1000):
            np.testing.assert_array_equal(
                true_cardinalities(toy_table, queries, chunk_size=chunk_size),
                reference)

    def test_multiple_predicates_per_column_intersect(self, toy_table):
        queries = [
            Query.from_triples([("a", ">=", 2), ("a", "<=", 4)]),
            Query.from_triples([("a", ">=", 4), ("a", "<=", 2)]),  # empty interval
            Query.from_triples([("a", ">", 1), ("b", "=", "z"), ("a", "<", 5)]),
        ]
        expected = np.array([cardinality(toy_table, query) for query in queries])
        np.testing.assert_array_equal(true_cardinalities(toy_table, queries), expected)

    def test_multi_predicate_workload_agrees(self):
        table = make_census(scale=0.05, seed=6)
        workload = make_multi_predicate_workload(table, num_queries=40, seed=13,
                                                 label=False)
        expected = np.array([cardinality(table, query) for query in workload])
        np.testing.assert_array_equal(
            true_cardinalities(table, workload.queries), expected)

    def test_invalid_chunk_size(self, toy_table):
        with pytest.raises(ValueError):
            true_cardinalities(toy_table, [], chunk_size=0)

    def test_unknown_column_still_raises(self, toy_table):
        with pytest.raises(KeyError):
            true_cardinalities(toy_table, [Query.from_triples([("zz", "=", 1)])])


class TestGenerator:
    def test_rand_q_properties(self, toy_table):
        workload = make_random_workload(toy_table, num_queries=50, seed=0)
        assert len(workload) == 50
        assert workload.is_labeled
        # Tuple-anchored generation guarantees non-empty results.
        assert (workload.cardinalities >= 1).all()

    def test_inworkload_bounded_column(self):
        table = make_census(scale=0.05)
        config = WorkloadConfig(num_queries=200, seed=42, bounded_column=True)
        generator = WorkloadGenerator(table, config)
        workload = generator.generate("w", label=False)
        bounded_index = generator._bounded_column_index
        bounded_name = table.column(bounded_index).name
        allowed = {table.column(bounded_index).value_of(code)
                   for code in generator._bounded_values}
        seen = {predicate.value for query in workload
                for predicate in query.predicates if predicate.column == bounded_name}
        assert seen <= allowed

    def test_multi_predicate_workload(self, toy_table):
        workload = make_multi_predicate_workload(toy_table, num_queries=50, seed=1)
        maxima = [query.max_predicates_per_column() for query in workload]
        assert max(maxima) == 2
        assert (workload.cardinalities >= 1).all()

    def test_deterministic_with_seed(self, toy_table):
        first = make_random_workload(toy_table, num_queries=20, seed=3, label=False)
        second = make_random_workload(toy_table, num_queries=20, seed=3, label=False)
        assert [str(q) for q in first] == [str(q) for q in second]

    def test_query_column_count_respects_max(self, toy_table):
        workload = make_random_workload(toy_table, num_queries=30, seed=1,
                                        max_predicates=2, label=False)
        assert all(len(query.columns) <= 2 for query in workload)

    def test_in_and_rand_distributions_differ(self):
        """Figure 4: In-Q and Rand-Q cardinality distributions are different."""
        table = make_census(scale=0.05)
        rand_q = make_random_workload(table, num_queries=200, seed=1234)
        in_q = make_inworkload(table, num_queries=200, seed=42)
        assert abs(np.median(rand_q.cardinalities) - np.median(in_q.cardinalities)) > 0


class TestWorkloadContainer:
    def test_label_and_selectivities(self, toy_table):
        workload = Workload("w", [Query.from_triples([("a", "=", 1)])])
        assert not workload.is_labeled
        workload.label(toy_table)
        np.testing.assert_array_equal(workload.cardinalities, [2])
        np.testing.assert_allclose(workload.selectivities(toy_table), [0.2])

    def test_subset(self, toy_table):
        workload = make_random_workload(toy_table, num_queries=10, seed=0)
        subset = workload.subset([0, 3, 5])
        assert len(subset) == 3
        assert subset.cardinalities.shape == (3,)

    def test_batches(self, toy_table):
        workload = make_random_workload(toy_table, num_queries=10, seed=0)
        batches = list(workload.batches(4))
        assert [len(batch) for batch in batches] == [4, 4, 2]

    def test_mismatched_labels_rejected(self, toy_table):
        with pytest.raises(ValueError):
            Workload("w", [Query.from_triples([("a", "=", 1)])], np.array([1, 2]))

    def test_save_load_roundtrip(self, tmp_path, toy_table):
        workload = make_random_workload(toy_table, num_queries=15, seed=0)
        path = workload.save(tmp_path / "w.json")
        loaded = Workload.load(path)
        assert len(loaded) == 15
        np.testing.assert_array_equal(loaded.cardinalities, workload.cardinalities)
        assert [str(q) for q in loaded] == [str(q) for q in workload]
        # Re-labelling the loaded workload must reproduce the same counts.
        relabeled = Workload(loaded.name, loaded.queries).label(toy_table)
        np.testing.assert_array_equal(relabeled.cardinalities, workload.cardinalities)


class TestPropertyBased:
    @given(st.integers(0, 4), st.sampled_from(["=", ">", "<", ">=", "<="]))
    @settings(max_examples=60, deadline=None)
    def test_mask_matches_semantics(self, value, op):
        column = Column.from_values("a", [0, 1, 2, 3, 4])
        mask = Predicate("a", op, value).valid_value_mask(column)
        comparators = {
            "=": lambda x: x == value,
            ">": lambda x: x > value,
            "<": lambda x: x < value,
            ">=": lambda x: x >= value,
            "<=": lambda x: x <= value,
        }
        expected = comparators[op](np.arange(5))
        np.testing.assert_array_equal(mask, expected)

    @given(st.lists(st.tuples(st.sampled_from(["a", "b", "c"]),
                              st.sampled_from(["=", ">=", "<="]),
                              st.integers(0, 5)),
                    min_size=1, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_adding_predicates_never_increases_cardinality(self, triples):
        table = Table.from_dict("t", {
            "a": list(range(6)) * 5,
            "b": [i % 3 for i in range(30)],
            "c": [i // 6 for i in range(30)],
        })
        cards = []
        for count in range(1, len(triples) + 1):
            query = Query.from_triples(triples[:count])
            cards.append(cardinality(table, query))
        assert all(later <= earlier for earlier, later in zip(cards, cards[1:]))
