"""Integration tests of the observability layer across serving + lifecycle.

Everything that spans more than one module lives here: the ServiceStats
ring-buffer snapshot under concurrent recorders (the tear-regression test),
EventLog overflow accounting, the shared-registry topology (service,
scheduler and event log landing in one exposition), the file exporter, and
the blocking soak smoke test the CI ``tests`` job runs — a short soak must
leave non-zero ``repro_requests_total`` and a parseable exposition.
"""

import threading

import numpy as np
import pytest

from repro.core import (
    DuetConfig,
    DuetEstimator,
    DuetModel,
    DuetTrainer,
    LifecyclePolicy,
    ServingConfig,
)
from repro.data import ColumnStore, Table
from repro.eval import run_soak
from repro.lifecycle import DriftMonitor, EventLog, RefreshScheduler
from repro.obs import MetricsExporter, MetricsRegistry, parse_exposition
from repro.serving import EstimationService, ServiceStats
from repro.workload import make_random_workload


@pytest.fixture(scope="module")
def table() -> Table:
    rng = np.random.default_rng(0)
    return Table.from_dict("tiny", {
        "age": rng.integers(18, 66, size=400),
        "city": rng.choice(["ams", "ber", "cdg", "dus"], size=400),
        "score": rng.integers(0, 10, size=400),
    })


def make_service(table, **config_kwargs) -> EstimationService:
    estimator = DuetEstimator(
        DuetModel(table, DuetConfig(hidden_sizes=(16, 16), seed=0)))
    return EstimationService(estimator, config=ServingConfig(**config_kwargs))


# ----------------------------------------------------------------------
# ServiceStats on the registry
# ----------------------------------------------------------------------
class TestServiceStats:
    def test_counters_land_in_the_registry(self):
        stats = ServiceStats()
        stats.record_request(0.002, cache_hit=True)
        stats.record_request(0.004, cache_hit=False)
        stats.record_batch(8)
        snapshot = stats.snapshot()
        assert snapshot.requests == 2 and snapshot.cache_hits == 1
        assert snapshot.num_batches == 1 and snapshot.batched_requests == 8
        parsed = parse_exposition(stats.metrics.exposition())
        assert parsed[("repro_requests_total", (("cache", "hit"),))] == 1.0
        assert parsed[("repro_requests_total", (("cache", "miss"),))] == 1.0
        assert parsed[("repro_request_latency_seconds_count", ())] == 2.0
        assert parsed[("repro_batches_total", ())] == 1.0

    def test_latency_window_bounds_percentile_memory(self):
        stats = ServiceStats(latency_window=4)
        for latency in (0.1, 0.1, 0.1, 0.1, 0.001, 0.001, 0.001, 0.001):
            stats.record_request(latency, cache_hit=False)
        snapshot = stats.snapshot()
        # Only the last four samples remain in the percentile window...
        assert snapshot.p50_ms == pytest.approx(1.0)
        # ...but the registry counters keep the full total.
        assert snapshot.requests == 8

    def test_reset_keeps_shared_instruments_valid(self):
        registry = MetricsRegistry()
        stats = ServiceStats(metrics=registry)
        stats.record_request(0.002, cache_hit=False)
        stats.record_batch(4)
        # An exporter-style reader binds the counter before the reset.
        counter = registry.get("repro_requests_total")
        stats.reset()
        assert stats.snapshot().requests == 0
        stats.record_request(0.001, cache_hit=False)
        assert counter.total() == 1.0  # pre-reset binding still live

    def test_concurrent_record_and_snapshot_never_tear(self):
        """Regression: snapshots race recorders without errors or bad counts.

        The old implementation copied a deque under the recorders' lock and
        could raise (or stall every recorder) when percentile math ran under
        contention; the ring-buffer version copies a dense array under the
        lock and does the math outside it.
        """
        stats = ServiceStats(latency_window=256)
        threads_count, per_thread = 8, 2_000
        barrier = threading.Barrier(threads_count + 1)
        failures: list[Exception] = []

        def recorder(index: int) -> None:
            barrier.wait()
            for step in range(per_thread):
                stats.record_request(1e-4 * (1 + index), cache_hit=step % 2 == 0)
                if step % 100 == 0:
                    stats.record_batch(4)

        def snapshotter() -> None:
            barrier.wait()
            try:
                for _ in range(300):
                    snapshot = stats.snapshot()
                    # Mid-flight invariants: never negative, never torn below
                    # the parts that make them up.
                    assert snapshot.requests == (snapshot.cache_hits
                                                 + snapshot.cache_misses)
                    assert 0.0 <= snapshot.cache_hit_rate <= 1.0
                    assert snapshot.p50_ms >= 0.0
            except Exception as error:  # noqa: BLE001 — surface in main thread
                failures.append(error)

        threads = [threading.Thread(target=recorder, args=(index,))
                   for index in range(threads_count)]
        watcher = threading.Thread(target=snapshotter)
        for thread in threads + [watcher]:
            thread.start()
        for thread in threads + [watcher]:
            thread.join()
        assert not failures
        final = stats.snapshot()
        assert final.requests == threads_count * per_thread
        assert final.cache_hits == threads_count * per_thread // 2
        assert final.num_batches == threads_count * (per_thread // 100)


# ----------------------------------------------------------------------
# EventLog overflow accounting
# ----------------------------------------------------------------------
class TestEventLogOverflow:
    def test_overflow_is_counted_not_silent(self):
        log = EventLog(capacity=8)
        for index in range(20):
            log.record("decision", step=index)
        assert len(log) == 8
        assert log.dropped_events == 12
        # Totals survive the window; the retained suffix is the newest 8.
        assert log.count("decision") == 20
        assert [event.details["step"] for event in log.events()] == (
            list(range(12, 20)))

    def test_no_overflow_no_drops(self):
        log = EventLog(capacity=8)
        for _ in range(8):
            log.record("refresh")
        assert log.dropped_events == 0

    def test_drop_counter_is_exported(self):
        registry = MetricsRegistry()
        log = EventLog(capacity=2, metrics=registry)
        for _ in range(5):
            log.record("decision")
        parsed = parse_exposition(registry.exposition())
        assert parsed[("repro_lifecycle_events_total",
                       (("kind", "decision"),))] == 5.0
        assert parsed[("repro_lifecycle_events_dropped_total", ())] == 3.0


# ----------------------------------------------------------------------
# Shared-registry topology
# ----------------------------------------------------------------------
class TestSharedRegistry:
    def test_scheduler_joins_the_service_registry(self, table):
        store = ColumnStore.from_table(table)
        snapshot = store.snapshot()
        estimator = DuetEstimator(
            DuetModel(snapshot, DuetConfig(hidden_sizes=(16, 16), seed=0)))
        with EstimationService(estimator, store=store) as service:
            scheduler = RefreshScheduler(
                service, LifecyclePolicy(poll_interval_seconds=60.0))
            assert scheduler.metrics is service.metrics
            assert scheduler.events.metrics is service.metrics
            # Serving counters and lifecycle gauges in one exposition.
            service.estimate(make_random_workload(
                snapshot, num_queries=1, seed=3).queries[0])
            text = service.metrics.exposition()
            assert "repro_requests_total" in text
            assert "repro_lifecycle_breaker_state 0.0" in text
            parsed = parse_exposition(text)
            assert parsed[("repro_store_physical_rows", ())] == (
                float(snapshot.num_rows))
            assert parsed[("repro_store_tombstone_fraction", ())] == 0.0

    def test_breaker_transitions_flip_the_gauge_in_the_timeline(
            self, tmp_path):
        """Acceptance: breaker state changes are visible as gauge flips in
        the exported timeline (0 closed / 1 half-open / 2 open), not only
        as events in the log."""
        from repro.serving import ModelRegistry

        rng = np.random.default_rng(0)
        store = ColumnStore.from_table(Table.from_dict("lifecycle", {
            "age": rng.integers(18, 60, size=400),
            "score": rng.integers(0, 10, size=400),
        }))
        base = store.snapshot()
        config = DuetConfig(hidden_sizes=(16, 16), epochs=1, batch_size=128,
                            expand_coefficient=1, lambda_query=0.0, seed=0)
        model = DuetModel(base, config)
        DuetTrainer(model, base, config=config).train(1)
        registry = ModelRegistry(tmp_path / "registry")
        registry.save(model, dataset="lifecycle")
        policy = LifecyclePolicy(
            poll_interval_seconds=0.02, max_stale_rows=50,
            probe_sample_rate=1.0, min_probe_queries=5, debounce_polls=1,
            cooldown_seconds=0.0, refresh_epochs=1, cold_train_epochs=1,
            tune_yield_seconds=0.0, failure_backoff_seconds=0.0,
            breaker_failure_threshold=2, breaker_cooldown_seconds=60.0)
        with EstimationService.from_registry(registry, "lifecycle",
                                             store=store) as service:
            monitor = DriftMonitor(service, policy)
            monitor.seed_probes(make_random_workload(
                base, num_queries=10, seed=17, label=False).queries)
            scheduler = RefreshScheduler(service, policy, monitor=monitor)
            exporter = MetricsExporter(service.metrics,
                                       tmp_path / "timeline.jsonl",
                                       interval_seconds=3600.0)

            def fail(*args, **kwargs):
                raise RuntimeError("trainer down")

            real_refresh, service.refresh = service.refresh, fail
            snapshot = base
            store.append({name: snapshot.column(name).distinct_values[
                rng.integers(0, snapshot.column(name).num_distinct, size=80)]
                for name in snapshot.column_names})
            exporter.write_snapshot()             # closed
            scheduler.poll_once()                 # failure 1/2: still closed
            exporter.write_snapshot()
            scheduler.poll_once()                 # failure 2/2: opens
            exporter.write_snapshot()
            scheduler._breaker_opened_at -= 61.0  # cooldown -> half-open
            scheduler.poll_once()                 # trial fails -> re-opens
            exporter.write_snapshot()
            scheduler._breaker_opened_at -= 61.0
            service.refresh = real_refresh
            scheduler.poll_once()                 # trial succeeds -> closes
            exporter.write_snapshot()

            records = MetricsExporter.read_timeline(tmp_path / "timeline.jsonl")
            series = MetricsExporter.series(records,
                                            "repro_lifecycle_breaker_state")
            assert [state for _, state in series] == [0.0, 0.0, 2.0, 2.0, 0.0]
            # The half-open trials happen inside a poll, so the live gauge
            # (not just the log) must have flipped through 1.0 as well:
            assert [event.details["state"]
                    for event in scheduler.events.events("breaker")] == [
                "open", "half_open", "open", "half_open", "closed"]

    def test_poll_durations_reach_the_histogram(self, table):
        store = ColumnStore.from_table(table)
        snapshot = store.snapshot()
        estimator = DuetEstimator(
            DuetModel(snapshot, DuetConfig(hidden_sizes=(16, 16), seed=0)))
        with EstimationService(estimator, store=store) as service:
            scheduler = RefreshScheduler(
                service, LifecyclePolicy(poll_interval_seconds=60.0))
            scheduler.poll_once()
            scheduler.poll_once()
            parsed = parse_exposition(service.metrics.exposition())
            assert parsed[("repro_lifecycle_poll_seconds_count", ())] == 2.0


# ----------------------------------------------------------------------
# File exporter
# ----------------------------------------------------------------------
class TestMetricsExporter:
    def test_snapshot_timeline_round_trips(self, tmp_path):
        registry = MetricsRegistry()
        counter = registry.counter("repro_things_total").labels()
        exporter = MetricsExporter(registry, tmp_path / "metrics.jsonl",
                                   interval_seconds=60.0)
        counter.inc()
        exporter.write_snapshot()
        counter.inc(2)
        exporter.write_snapshot()
        records = MetricsExporter.read_timeline(tmp_path / "metrics.jsonl")
        assert len(records) == 2
        series = MetricsExporter.series(records, "repro_things_total")
        assert [value for _, value in series] == [1.0, 3.0]
        timestamps = [t for t, _ in series]
        assert timestamps == sorted(timestamps)

    def test_stop_always_flushes_a_final_snapshot(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("repro_things_total").labels().inc()
        path = tmp_path / "metrics.jsonl"
        # Interval far longer than the run: only stop() writes.
        with MetricsExporter(registry, path, interval_seconds=3600.0):
            pass
        records = MetricsExporter.read_timeline(path)
        assert len(records) == 1
        assert exporter_value(records[0], "repro_things_total") == 1.0

    def test_background_loop_appends_periodically(self, tmp_path):
        registry = MetricsRegistry()
        path = tmp_path / "metrics.jsonl"
        exporter = MetricsExporter(registry, path, interval_seconds=0.05)
        exporter.start()
        deadline = threading.Event()
        deadline.wait(0.3)
        exporter.stop()
        assert exporter.snapshots_written >= 2
        assert len(MetricsExporter.read_timeline(path)) == (
            exporter.snapshots_written)


def exporter_value(record: dict, metric: str) -> float:
    return record["metrics"][metric]["samples"][0]["value"]


# ----------------------------------------------------------------------
# Blocking soak smoke test (CI gate)
# ----------------------------------------------------------------------
class TestSoakSmoke:
    def test_short_soak_leaves_metrics_and_valid_exposition(self, table,
                                                            tmp_path):
        """A one-second soak must produce scrape-able observability output.

        This is the blocking CI smoke test: traffic flowed
        (``repro_requests_total`` > 0), the exposition parses, the JSON
        snapshot agrees with it, and the exporter left a readable timeline.
        """
        workload = make_random_workload(table, num_queries=30, seed=5,
                                        label=False)
        path = tmp_path / "soak_metrics.jsonl"
        with make_service(table) as service:
            exporter = MetricsExporter(service.metrics, path,
                                       interval_seconds=0.2)
            report = run_soak(service, workload, duration_seconds=1.0,
                              concurrency=2, exporter=exporter, seed=0)
            text = service.metrics.exposition()
            parsed = parse_exposition(text)

        assert report.errors == 0 and report.num_requests > 0
        total = sum(value for (name, _), value in parsed.items()
                    if name == "repro_requests_total")
        assert total == report.num_requests > 0
        assert parsed[("repro_request_latency_seconds_count", ())] == (
            report.num_requests)
        records = MetricsExporter.read_timeline(path)
        assert records  # the exporter flushed at least the final snapshot
        final = MetricsExporter.series(records, "repro_batches_total")[-1]
        assert final[1] > 0
