"""End-to-end tests of the mutable data lifecycle:

append → delta labeling → incremental fine-tune → registry versioning →
staleness-aware serving with hot-swap and cache invalidation.  This is the
acceptance path of the data-side drift story (the data twin of
``examples/workload_drift.py``).
"""

import numpy as np
import pytest

from repro.core import (
    DomainGrowthError,
    DuetConfig,
    DuetEstimator,
    DuetModel,
    DuetTrainer,
    ServingConfig,
)
from repro.data import ColumnStore, Table
from repro.serving import EstimationService, ModelRegistry
from repro.workload import (
    Query,
    make_random_workload,
    true_cardinalities,
    true_cardinalities_delta,
)

CONFIG = DuetConfig(hidden_sizes=(16, 16), epochs=1, batch_size=128,
                    expand_coefficient=1, lambda_query=0.0, seed=0)


@pytest.fixture()
def store() -> ColumnStore:
    rng = np.random.default_rng(0)
    table = Table.from_dict("lifecycle", {
        "age": rng.integers(18, 60, size=400),
        "city": rng.choice(["ams", "ber", "cdg", "dus"], size=400),
        "score": rng.integers(0, 10, size=400),
    })
    return ColumnStore.from_table(table)


def _append_in_domain(store: ColumnStore, count: int, seed: int):
    """Append rows drawn from the existing domains (no growth)."""
    rng = np.random.default_rng(seed)
    snapshot = store.snapshot()
    return store.append({
        name: snapshot.column(name).distinct_values[
            rng.integers(0, snapshot.column(name).num_distinct, size=count)]
        for name in snapshot.column_names
    })


class TestEndToEndLifecycle:
    def test_full_lifecycle(self, store, tmp_path):
        base = store.snapshot()
        model = DuetModel(base, CONFIG)
        DuetTrainer(model, base, config=CONFIG).train(1)
        registry = ModelRegistry(tmp_path)
        registry.save(model, dataset="lifecycle",
                      compile_options=None)

        workload = make_random_workload(base, num_queries=60, seed=11,
                                        label=False)
        base_counts = true_cardinalities(base, workload.queries)

        service = EstimationService.from_registry(
            registry, "lifecycle", store=store,
            config=ServingConfig(max_wait_ms=0.5))
        with service:
            probe = workload.queries[0]
            stale_estimate = service.estimate(probe)
            assert service.staleness() == 0
            assert len(service.cache) == 1

            # 1. Append: a skewed batch over the existing domains.
            new_snapshot = _append_in_domain(store, 120, seed=7)
            assert service.staleness() == 120

            # 2. Delta labeling equals a full rescan bit-for-bit.
            delta = store.delta(base)
            delta_counts = true_cardinalities_delta(delta, workload.queries,
                                                    base_counts)
            np.testing.assert_array_equal(
                delta_counts, true_cardinalities(new_snapshot, workload.queries))

            # 3. refresh(): fine-tune + re-register + hot-swap + invalidate.
            entry = service.refresh()
            assert entry is not None
            assert entry.data_version == new_snapshot.data_version
            assert registry.latest_version("lifecycle") == entry.version
            assert registry.entry("lifecycle").data_version == entry.data_version
            assert service.staleness() == 0
            assert service.data_version == new_snapshot.data_version
            # The pre-refresh cache entry is gone; the probe is re-estimated
            # against the refreshed model and the new row count.
            assert len(service.cache) == 0
            refreshed_estimate = service.estimate(probe)
            assert refreshed_estimate != stale_estimate
            # The served model scales selectivities by the *new* row count.
            assert service.table.num_rows == new_snapshot.num_rows

            # 4. A reloaded estimator from the refreshed entry serves
            #    identical estimates (registry round trip).
            reloaded = registry.load_estimator("lifecycle")
            assert reloaded.data_version == entry.data_version
            np.testing.assert_allclose(
                reloaded.estimate_batch(workload.queries),
                service.estimate_batch(workload.queries), rtol=1e-9)

    def test_refresh_without_appends_is_noop(self, store, tmp_path):
        base = store.snapshot()
        model = DuetModel(base, CONFIG)
        registry = ModelRegistry(tmp_path)
        registry.save(model, dataset="lifecycle")
        with EstimationService.from_registry(registry, "lifecycle",
                                             store=store) as service:
            assert service.refresh() is None
            assert registry.versions("lifecycle") == ["v1"]

    def test_refresh_fast_path_skips_work_and_keeps_cache(self, store, tmp_path,
                                                          monkeypatch):
        """staleness() == 0 must short-circuit before delta materialisation,
        fine-tuning, and — crucially — the cache flush."""
        base = store.snapshot()
        model = DuetModel(base, CONFIG)
        DuetTrainer(model, base, config=CONFIG).train(1)
        registry = ModelRegistry(tmp_path)
        registry.save(model, dataset="lifecycle")
        with EstimationService.from_registry(registry, "lifecycle",
                                             store=store) as service:
            probe = Query.from_triples([("age", ">=", 30)])
            service.estimate(probe)
            assert len(service.cache) == 1
            # The fast path must not even look at deltas or snapshots.
            monkeypatch.setattr(store, "delta", lambda *a, **k: pytest.fail(
                "no-op refresh materialised a delta"))
            monkeypatch.setattr(store, "snapshot", lambda: pytest.fail(
                "no-op refresh took a snapshot"))
            assert service.refresh() is None
            assert len(service.cache) == 1       # valid entries survive
            assert registry.versions("lifecycle") == ["v1"]

    def test_refresh_after_pure_delete_tunes_and_invalidates(self, store,
                                                             tmp_path):
        """Regression (the old fast path only counted appended rows): a
        pure delete must register as staleness and drive a real refresh —
        fine-tune with negative replay, re-register, hot-swap, cache
        flush."""
        base = store.snapshot()
        model = DuetModel(base, CONFIG)
        DuetTrainer(model, base, config=CONFIG).train(1)
        registry = ModelRegistry(tmp_path)
        registry.save(model, dataset="lifecycle")
        with EstimationService.from_registry(registry, "lifecycle",
                                             store=store) as service:
            probe = Query.from_triples([("age", ">=", 30)])
            service.estimate(probe)
            assert len(service.cache) == 1
            store.delete(np.arange(80))
            assert service.staleness() == 80
            entry = service.refresh()
            assert entry is not None
            assert entry.data_version == store.data_version
            assert service.staleness() == 0
            assert len(service.cache) == 0          # stale entries flushed
            assert service.table.num_rows == store.num_rows == 320
            assert registry.latest_version("lifecycle") == entry.version

    def test_refresh_requires_a_store(self):
        estimator = DuetEstimator(DuetModel(
            Table.from_dict("static", {"a": [1, 2, 3]}), CONFIG))
        with EstimationService(estimator) as service:
            assert service.staleness() == 0
            with pytest.raises(RuntimeError, match="live ColumnStore"):
                service.refresh()


class TestFineTune:
    def test_fine_tune_trains_only_on_delta_plus_replay(self, store):
        base = store.snapshot()
        model = DuetModel(base, CONFIG)
        DuetTrainer(model, base, config=CONFIG).train(1)
        _append_in_domain(store, 100, seed=3)
        snapshot = store.snapshot()
        delta = store.delta(base)
        trainer, history = DuetTrainer.fine_tune(snapshot, model, delta,
                                                 epochs=2, replay_fraction=0.5)
        assert len(history.epochs) == 2
        # 100 appended + 50 replay rows, not the full 500-row table.
        assert trainer.train_row_indices.size == 150
        assert trainer.train_row_indices.min() >= 0
        assert (trainer.train_row_indices >= delta.base_rows).sum() == 100
        # Only the training slice is gathered, not the whole code matrix.
        assert trainer._codes.shape == (150, snapshot.num_columns)
        assert model.table is snapshot  # rebound to the new snapshot

    def test_fine_tune_mixed_delta_trains_positives_and_negatives(self, store):
        base = store.snapshot()
        model = DuetModel(base, CONFIG)
        DuetTrainer(model, base, config=CONFIG).train(1)
        _append_in_domain(store, 100, seed=3)
        store.delete(np.arange(60))             # 60 base rows tombstoned
        snapshot = store.snapshot()
        delta = store.delta(base)
        assert delta.appended_rows == 100 and delta.removed_rows == 60
        trainer, history = DuetTrainer.fine_tune(snapshot, model, delta,
                                                 epochs=1, replay_fraction=0.25)
        assert len(history.epochs) == 1
        # Positives: 100 appended + round(0.25 * 160) replay of survivors.
        assert trainer.train_row_indices.size == 140
        assert (trainer.train_row_indices >= delta.surviving_base_rows).sum() == 100
        assert (trainer.train_row_indices < delta.surviving_base_rows).sum() == 40
        # Negatives: the removed rows' code matrix.
        assert trainer._negative_codes.shape == (60, snapshot.num_columns)
        assert model.table is snapshot

    def test_fine_tune_pure_delete_replays_survivors(self, store):
        base = store.snapshot()
        model = DuetModel(base, CONFIG)
        DuetTrainer(model, base, config=CONFIG).train(1)
        store.delete(np.arange(100))
        snapshot = store.snapshot()
        delta = store.delta(base)
        assert delta.appended_rows == 0 and delta.removed_rows == 100
        trainer, _ = DuetTrainer.fine_tune(snapshot, model, delta, epochs=1,
                                           replay_fraction=0.5)
        # Positive side falls back to a replay sample of surviving rows.
        assert trainer.train_row_indices.size == 50
        assert trainer.train_row_indices.max() < delta.surviving_base_rows
        assert trainer._negative_codes.shape == (100, snapshot.num_columns)

    def test_fine_tune_rejects_domain_growth(self, store):
        base = store.snapshot()
        model = DuetModel(base, CONFIG)
        store.append({"age": [150], "city": ["zrh"], "score": [3]})
        delta = store.delta(base)
        with pytest.raises(DomainGrowthError) as excinfo:
            DuetTrainer.fine_tune(store.snapshot(), model, delta)
        assert set(excinfo.value.columns) == {"age", "city"}

    def test_rebind_rejects_changed_domains(self, store):
        base = store.snapshot()
        model = DuetModel(base, CONFIG)
        store.append({"age": [17], "city": ["ams"], "score": [0]})
        with pytest.raises(DomainGrowthError, match="different"):
            model.rebind(store.snapshot())

    def test_rebind_accepts_same_domain_snapshot(self, store):
        base = store.snapshot()
        model = DuetModel(base, CONFIG)
        grown = _append_in_domain(store, 10, seed=1)
        model.rebind(grown)
        assert model.table is grown
        assert model.codec.table is grown

    def test_refresh_propagates_domain_growth(self, store, tmp_path):
        base = store.snapshot()
        model = DuetModel(base, CONFIG)
        registry = ModelRegistry(tmp_path)
        registry.save(model, dataset="lifecycle")
        store.append({"age": [150], "city": ["zrh"], "score": [3]})
        with EstimationService.from_registry(registry, "lifecycle",
                                             store=store) as service:
            with pytest.raises(DomainGrowthError):
                service.refresh()


class TestVersionedCacheKeys:
    def test_swapped_model_cannot_serve_stale_cache_entries(self, store, tmp_path):
        """Regression: cache keys must be scoped by (dataset, model, data)."""
        base = store.snapshot()
        model = DuetModel(base, CONFIG)
        DuetTrainer(model, base, config=CONFIG).train(1)
        registry = ModelRegistry(tmp_path)
        registry.save(model, dataset="lifecycle")
        query = Query.from_triples([("age", ">=", 30)])
        with EstimationService.from_registry(registry, "lifecycle",
                                             store=store) as service:
            before_key = service._keys.key(query)
            service.estimate(query)
            assert service.cache.get(before_key) is not None
            _append_in_domain(store, 80, seed=13)
            service.refresh()
            after_key = service._keys.key(query)
            # Same query, different serving identity: the key changed AND
            # the old entry was flushed — either alone prevents stale serves.
            assert after_key != before_key
            assert service.cache.get(before_key) is None

    def test_namespace_distinguishes_identical_intervals(self, store):
        from repro.serving import QueryKeyEncoder
        base = store.snapshot()
        query = Query.from_triples([("age", ">=", 30)])
        plain = QueryKeyEncoder(base)
        scoped_v1 = QueryKeyEncoder(base, namespace=("d", "v1", 1))
        scoped_v2 = QueryKeyEncoder(base, namespace=("d", "v2", 2))
        assert plain.key(query) != scoped_v1.key(query)
        assert scoped_v1.key(query) != scoped_v2.key(query)
