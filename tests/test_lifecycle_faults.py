"""Tests of the fault-tolerant control plane: the deterministic fault
injector, canary-gated swaps (ShadowEvaluator + scheduler wiring), the
refresh scheduler's failure backoff and circuit breaker, the failed-swap /
failed-tune regression fixes, poll-loop error containment, and the chaos
acceptance run (seeded faults across trainer/registry with zero failed
estimate requests and a recoverable registry).
"""

import threading
import time

import numpy as np
import pytest

from repro.core import (
    DuetConfig,
    DuetModel,
    DuetTrainer,
    LifecyclePolicy,
    ServingConfig,
)
from repro.data import ColumnStore, Table
from repro.lifecycle import (
    ColdTrainResult,
    DriftMonitor,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    RefreshScheduler,
    ShadowEvaluator,
    SimulatedCrash,
    cold_train_and_swap,
)
from repro.serving import EstimationService, ModelRegistry
from repro.workload import make_random_workload

CONFIG = DuetConfig(hidden_sizes=(16, 16), epochs=1, batch_size=128,
                    expand_coefficient=1, lambda_query=0.0, seed=0)

#: eager knobs (no debounce/cooldown) with the failure machinery wide open:
#: zero backoff and no breaker, so synchronous polls are never parked
EAGER = LifecyclePolicy(poll_interval_seconds=0.02, max_stale_rows=50,
                        max_stale_fraction=0.1, probe_sample_rate=1.0,
                        min_probe_queries=5, debounce_polls=1,
                        cooldown_seconds=0.0, refresh_epochs=1,
                        cold_train_epochs=1, keep_model_versions=2,
                        tune_yield_seconds=0.0,
                        failure_backoff_seconds=0.0,
                        breaker_failure_threshold=None)


@pytest.fixture()
def store() -> ColumnStore:
    rng = np.random.default_rng(0)
    table = Table.from_dict("lifecycle", {
        "age": rng.integers(18, 60, size=400),
        "city": rng.choice(["ams", "ber", "cdg", "dus"], size=400),
        "score": rng.integers(0, 10, size=400),
    })
    return ColumnStore.from_table(table)


def _make_service(store, tmp_path, config=CONFIG):
    base = store.snapshot()
    model = DuetModel(base, config)
    DuetTrainer(model, base, config=config).train(1)
    registry = ModelRegistry(tmp_path / "registry")
    registry.save(model, dataset="lifecycle")
    return EstimationService.from_registry(
        registry, "lifecycle", store=store,
        config=ServingConfig(max_wait_ms=0.2))


def _append_in_domain(store: ColumnStore, count: int, seed: int):
    rng = np.random.default_rng(seed)
    snapshot = store.snapshot()
    return store.append({
        name: snapshot.column(name).distinct_values[
            rng.integers(0, snapshot.column(name).num_distinct, size=count)]
        for name in snapshot.column_names
    })


def _seeded_monitor(service, policy=EAGER, num_probes=20):
    monitor = DriftMonitor(service, policy)
    workload = make_random_workload(service.store.snapshot(),
                                    num_queries=num_probes, seed=17,
                                    label=False)
    monitor.seed_probes(workload.queries)
    return monitor


def _raiser(message="boom"):
    def fail(*args, **kwargs):
        raise RuntimeError(message)
    return fail


def _degraded_model(store, seed=13) -> DuetModel:
    """A deliberately broken candidate: parameters saturated with noise.

    (A merely *untrained* model is not reliably worse on the probe median —
    these probe sets contain easy queries any smooth model gets right.)
    """
    rng = np.random.default_rng(seed)
    model = DuetModel(store.snapshot(), CONFIG)
    for parameter in model.parameters():
        parameter.data[...] = rng.normal(0.0, 25.0, size=parameter.data.shape)
    return model


# ----------------------------------------------------------------------
# FaultInjector
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_kinds_map_to_exceptions(self):
        injector = FaultInjector([
            FaultSpec(site="a", kind="raise"),
            FaultSpec(site="b", kind="io_error"),
            FaultSpec(site="c", kind="crash"),
        ])
        with pytest.raises(InjectedFault):
            injector.fire("a")
        with pytest.raises(OSError):
            injector.fire("b")
        with pytest.raises(SimulatedCrash):
            injector.fire("c")
        assert injector.counts() == {"a:raise": 1, "b:io_error": 1,
                                     "c:crash": 1}
        assert injector.total_injected == 3

    def test_stall_sleeps_instead_of_raising(self):
        injector = FaultInjector([
            FaultSpec(site="slow", kind="stall", stall_seconds=0.05)])
        started = time.perf_counter()
        injector.fire("slow")
        assert time.perf_counter() - started >= 0.05
        assert injector.counts() == {"slow:stall": 1}

    def test_after_and_times_window_the_firings(self):
        injector = FaultInjector([
            FaultSpec(site="s", kind="raise", after=2, times=2)])
        outcomes = []
        for _ in range(6):
            try:
                injector.fire("s")
                outcomes.append(False)
            except InjectedFault:
                outcomes.append(True)
        # skips opportunities 1-2, fires on 3-4, then the budget is spent
        assert outcomes == [False, False, True, True, False, False]
        assert injector.total_injected == 2

    def test_unknown_site_is_a_noop(self):
        injector = FaultInjector([FaultSpec(site="s", kind="raise")])
        injector.fire("other")
        assert injector.total_injected == 0

    def test_probability_is_seed_deterministic(self):
        def pattern(seed):
            injector = FaultInjector(
                [FaultSpec(site="s", kind="raise", probability=0.4,
                           times=None)], seed=seed)
            fired = []
            for _ in range(40):
                try:
                    injector.fire("s")
                    fired.append(False)
                except InjectedFault:
                    fired.append(True)
            return fired

        assert pattern(7) == pattern(7)
        assert any(pattern(7)) and not all(pattern(7))

    @pytest.mark.parametrize("bad", [
        dict(site="s", kind="explode"),
        dict(site=""),
        dict(site="s", probability=1.5),
        dict(site="s", times=0),
        dict(site="s", after=-1),
        dict(site="s", stall_seconds=-0.1),
    ])
    def test_spec_validation(self, bad):
        with pytest.raises(ValueError):
            FaultSpec(**bad)

    def test_arm_and_disarm_install_the_hooks(self, store, tmp_path):
        with _make_service(store, tmp_path) as service:
            scheduler = RefreshScheduler(service, EAGER)
            injector = FaultInjector([FaultSpec(site="store.append",
                                                kind="io_error")])
            injector.arm(scheduler=scheduler, registry=service.registry,
                         store=store)
            assert scheduler.fault_injector is injector
            assert service.registry.fault_hook is injector
            with pytest.raises(OSError):
                _append_in_domain(store, 5, seed=1)
            FaultInjector.disarm(scheduler=scheduler,
                                 registry=service.registry, store=store)
            assert store.fault_hook is None
            _append_in_domain(store, 5, seed=2)  # seam is quiet again


# ----------------------------------------------------------------------
# Shadow evaluation (canary gate)
# ----------------------------------------------------------------------
class TestShadowEvaluator:
    def test_served_model_judges_itself_a_pass(self, store, tmp_path):
        with _make_service(store, tmp_path) as service:
            shadow = ShadowEvaluator(_seeded_monitor(service))
            report = shadow.evaluate(service.estimator.model)
            assert report.passed
            assert report.reason == "pass"
            # identical model, identical probes: medians must agree
            assert report.candidate_median == pytest.approx(
                report.incumbent_median)
            assert report.probe_size == 20

    def test_degraded_candidate_is_rejected(self, store, tmp_path):
        with _make_service(store, tmp_path) as service:
            shadow = ShadowEvaluator(_seeded_monitor(service))
            report = shadow.evaluate(_degraded_model(store))
            assert not report.passed
            assert report.reason == "degraded"
            assert report.candidate_median > report.incumbent_median

    def test_insufficient_probes_abstain_pass(self, store, tmp_path):
        with _make_service(store, tmp_path) as service:
            shadow = ShadowEvaluator(DriftMonitor(service, EAGER))  # empty window
            report = shadow.evaluate(service.estimator.model)
            assert report.passed
            assert report.reason == "insufficient_probes"
            assert report.candidate_median is None

    def test_margin_none_disables_the_gate(self, store, tmp_path):
        with _make_service(store, tmp_path) as service:
            policy = LifecyclePolicy(canary_margin=None)
            shadow = ShadowEvaluator(DriftMonitor(service, policy))
            assert not shadow.enabled
            with pytest.raises(RuntimeError, match="disabled"):
                shadow.evaluate(service.estimator.model)
            scheduler = RefreshScheduler(service, policy)
            assert scheduler._canary_gate("refresh") is None


class TestCanaryGating:
    def test_scheduler_gate_records_pass_and_reject(self, store, tmp_path):
        with _make_service(store, tmp_path) as service:
            scheduler = RefreshScheduler(service, EAGER,
                                         monitor=_seeded_monitor(service))
            gate = scheduler._canary_gate("refresh")
            assert gate(service.estimator.model) is True
            assert scheduler.events.last("canary_pass").details["stage"] == \
                "refresh"
            assert gate(_degraded_model(store)) is False
            reject = scheduler.events.last("canary_reject")
            assert reject.details["reason"] == "degraded"
            assert reject.details["candidate_median"] > \
                reject.details["incumbent_median"]

    def test_gate_errors_fail_open(self, store, tmp_path):
        with _make_service(store, tmp_path) as service:
            scheduler = RefreshScheduler(service, EAGER,
                                         monitor=_seeded_monitor(service))
            scheduler.shadow.evaluate = _raiser("canary exploded")
            gate = scheduler._canary_gate("refresh")
            assert gate(service.estimator.model) is True  # fail open
            assert scheduler.events.last("error").details["stage"] == \
                "canary_refresh"

    def test_rejected_refresh_keeps_incumbent_serving(self, store, tmp_path):
        """A degraded candidate must not swap in, register, or count as a
        refresh — and the wasted tune still consumes the cooldown."""
        policy = LifecyclePolicy(**{**_policy_kwargs(EAGER),
                                    "canary_margin": 0.01,
                                    "cooldown_seconds": 120.0})
        with _make_service(store, tmp_path) as service:
            scheduler = RefreshScheduler(service, policy,
                                         monitor=_seeded_monitor(service,
                                                                 policy))
            versions_before = service.registry.versions("lifecycle")
            version_before = service.model_version
            _append_in_domain(store, 80, seed=3)
            event = scheduler.poll_once()
            assert event.details["action"] == "tune"
            assert scheduler.events.count("canary_reject") == 1
            assert scheduler.events.count("refresh") == 0
            assert service.model_version == version_before
            assert service.registry.versions("lifecycle") == versions_before
            # rejection is not a fault: breaker stays closed, no backoff...
            assert scheduler.breaker_state == "closed"
            assert not scheduler._in_backoff()
            # ...but the burned cycles start a cooldown
            assert scheduler._in_cooldown()

    def test_rejected_cold_train_keeps_incumbent(self, store, tmp_path):
        with _make_service(store, tmp_path) as service:
            served = service.estimator.model
            versions_before = service.registry.versions("lifecycle")
            result = cold_train_and_swap(service, epochs=1,
                                         gate=lambda model: False)
            assert result.done and result.rejected and not result.ok
            assert result.error is None and result.entry is None
            assert service.estimator.model is served
            assert service.registry.versions("lifecycle") == versions_before

    def test_finalise_reports_rejected_cold_train(self, store, tmp_path):
        with _make_service(store, tmp_path) as service:
            scheduler = RefreshScheduler(service, EAGER)
            pending = ColdTrainResult()
            pending.rejected = True
            pending.data_version = service.data_version
            pending._done.set()
            scheduler._cold_train = pending
            event = scheduler.poll_once()
            assert event.kind == "cold_train"
            assert event.details["status"] == "rejected"
            assert scheduler._cold_train is None
            assert scheduler.breaker_state == "closed"


def _policy_kwargs(policy: LifecyclePolicy) -> dict:
    import dataclasses
    return dataclasses.asdict(policy)


# ----------------------------------------------------------------------
# Failure backoff + circuit breaker
# ----------------------------------------------------------------------
class TestBreakerAndBackoff:
    def _scheduler(self, service, **overrides):
        policy = LifecyclePolicy(**{**_policy_kwargs(EAGER), **overrides})
        return RefreshScheduler(service, policy,
                                monitor=_seeded_monitor(service, policy))

    def test_failure_starts_exponential_backoff(self, store, tmp_path):
        with _make_service(store, tmp_path) as service:
            scheduler = self._scheduler(service, failure_backoff_seconds=10.0,
                                        failure_backoff_max_seconds=15.0)
            service.refresh = _raiser("trainer down")
            _append_in_domain(store, 80, seed=4)
            assert scheduler.poll_once().details["action"] == "tune"
            assert scheduler.events.last("error").details["stage"] == "refresh"
            # parked: the very next poll does not retry
            assert scheduler.poll_once().details["action"] == "backoff"
            first_deadline = scheduler._backoff_until
            # a second failure (forced through) doubles the delay, capped
            scheduler._backoff_until = None
            assert scheduler.poll_once().details["action"] == "tune"
            assert scheduler._backoff_until - time.monotonic() == \
                pytest.approx(15.0, abs=1.0)  # min(10 * 2, cap 15)
            assert scheduler._consecutive_failures == 2
            del first_deadline

    def test_breaker_opens_after_threshold_and_recovers(self, store, tmp_path):
        with _make_service(store, tmp_path) as service:
            scheduler = self._scheduler(service, breaker_failure_threshold=2,
                                        breaker_cooldown_seconds=60.0)
            real_refresh = service.refresh
            service.refresh = _raiser("trainer down")
            _append_in_domain(store, 80, seed=5)
            assert scheduler.poll_once().details["action"] == "tune"
            assert scheduler.breaker_state == "closed"
            assert scheduler.poll_once().details["action"] == "tune"
            assert scheduler.breaker_state == "open"
            opened = scheduler.events.last("breaker")
            assert opened.details["state"] == "open"
            assert opened.details["consecutive_failures"] == 2
            # open: polls refuse to tune, no new error events pile up
            errors_before = scheduler.events.count("error")
            assert scheduler.poll_once().details["action"] == "breaker_open"
            assert scheduler.events.count("error") == errors_before
            # cooldown elapses -> half-open trial; still failing -> re-open
            scheduler._breaker_opened_at -= 61.0
            assert scheduler.poll_once().details["action"] == "tune"
            assert scheduler.breaker_state == "open"
            # cooldown again, trainer fixed -> trial succeeds, breaker closes
            scheduler._breaker_opened_at -= 61.0
            service.refresh = real_refresh
            event = scheduler.poll_once()
            assert event.details["action"] == "tune"
            assert scheduler.breaker_state == "closed"
            assert scheduler.events.count("refresh") == 1
            assert [e.details["state"]
                    for e in scheduler.events.events("breaker")] == [
                "open", "half_open", "open", "half_open", "closed"]
            assert scheduler._consecutive_failures == 0

    def test_failed_tune_does_not_consume_the_cooldown(self, store, tmp_path):
        """Regression: _execute used to stamp _last_tune_at in its finally,
        so a *failed* refresh parked the scheduler for cooldown_seconds and
        delayed the recovery it never earned."""
        with _make_service(store, tmp_path) as service:
            scheduler = self._scheduler(service, cooldown_seconds=120.0)
            real_refresh = service.refresh
            service.refresh = _raiser("transient")
            _append_in_domain(store, 80, seed=6)
            assert scheduler.poll_once().details["action"] == "tune"
            assert scheduler.events.last("error").details["stage"] == "refresh"
            assert scheduler._last_tune_at is None  # failure != tune
            service.refresh = real_refresh
            event = scheduler.poll_once()  # retries immediately, no cooldown
            assert event.details["action"] == "tune"
            assert scheduler.events.count("refresh") == 1
            assert scheduler._in_cooldown()  # the *success* started one

    def test_failed_cold_train_parks_compaction_reescalation(
            self, store, tmp_path, monkeypatch):
        """Regression: a failed compaction-escalated cold train must not be
        re-escalated by _maybe_compact on the very next poll."""
        policy = LifecyclePolicy(**{
            **_policy_kwargs(EAGER), "max_stale_rows": None,
            "max_stale_fraction": None, "compact_tombstone_fraction": 0.2,
            "failure_backoff_seconds": 30.0})
        with _make_service(store, tmp_path) as service:
            scheduler = RefreshScheduler(service, policy)
            monkeypatch.setattr(DuetTrainer, "train",
                                _raiser("trainer down"))
            store.delete(np.arange(150))  # 150/400 tombstoned
            assert scheduler.poll_once().kind == "compaction"
            assert scheduler.quiesce(timeout=30.0)
            assert scheduler.events.last("error").details["stage"] == \
                "cold_train"
            assert scheduler._in_backoff()
            # tombstones pile up again, but the backoff parks re-escalation
            store.delete(np.arange(80))
            assert store.tombstone_fraction > 0.2
            assert scheduler.poll_once().kind == "decision"
            assert scheduler.events.count("compaction") == 1
            assert not scheduler.cold_train_in_flight


# ----------------------------------------------------------------------
# Poll-loop error containment
# ----------------------------------------------------------------------
class TestErrorContainment:
    def test_loop_survives_raising_components(self, store, tmp_path):
        with _make_service(store, tmp_path) as service:
            scheduler = RefreshScheduler(service, EAGER)
            scheduler.compaction.should_compact = _raiser("compaction check")
            scheduler.monitor.decide = _raiser("monitor down")
            with scheduler:
                deadline = time.monotonic() + 10.0
                while (scheduler.events.count("error") < 3
                       and time.monotonic() < deadline):
                    time.sleep(0.02)
                assert scheduler.running
                errors = scheduler.events.events("error")
                assert len(errors) >= 3
                assert all(event.details["stage"] == "poll"
                           for event in errors)
            # the tune lock never leaked
            assert scheduler._tune_lock.acquire(blocking=False)
            scheduler._tune_lock.release()


# ----------------------------------------------------------------------
# Failed-swap rollback (the orphaned-"latest" regression)
# ----------------------------------------------------------------------
class TestFailedSwapRollback:
    def test_cold_train_swap_failure_discards_the_registered_version(
            self, store, tmp_path):
        """Regression: cold_train_and_swap registered the candidate before
        swapping; a failed swap left a registered-but-never-served "latest"
        that RetentionPolicy.prune protected forever."""
        with _make_service(store, tmp_path) as service:
            versions_before = service.registry.versions("lifecycle")
            latest_before = service.registry.latest_version("lifecycle")
            service.swap_model = _raiser("swap exploded")
            result = cold_train_and_swap(service, epochs=1)
            assert result.done and not result.ok
            assert "swap exploded" in repr(result.error)
            assert result.entry is None
            assert service.registry.versions("lifecycle") == versions_before
            assert service.registry.latest_version("lifecycle") == \
                latest_before
            assert service.registry.load_estimator("lifecycle") is not None

    def test_refresh_install_failure_discards_the_registered_version(
            self, store, tmp_path):
        with _make_service(store, tmp_path) as service:
            versions_before = service.registry.versions("lifecycle")
            _append_in_domain(store, 60, seed=8)
            service._install = _raiser("install exploded")
            with pytest.raises(RuntimeError, match="install exploded"):
                service.refresh(epochs=1)
            assert service.registry.versions("lifecycle") == versions_before
            assert service.registry.load_estimator("lifecycle") is not None


# ----------------------------------------------------------------------
# Chaos acceptance: seeded faults, zero failed requests, recoverable state
# ----------------------------------------------------------------------
class TestChaosAcceptance:
    def test_seeded_fault_plan_never_fails_serving(self, store, tmp_path):
        """The ISSUE's acceptance run, synchronous and deterministic: a
        trainer fault, a registry I/O error, and a crash-simulated partial
        checkpoint hit consecutive tunes while request hammers run; no
        estimate ever fails, the fourth tune lands with a canary pass, and
        recover() quarantines everything the faults left behind."""
        policy = LifecyclePolicy(**{**_policy_kwargs(EAGER),
                                    "canary_margin": 2.0})
        with _make_service(store, tmp_path) as service:
            scheduler = RefreshScheduler(service, policy,
                                         monitor=_seeded_monitor(service,
                                                                 policy))
            injector = FaultInjector([
                FaultSpec(site="trainer.step", kind="raise"),
                FaultSpec(site="registry.save", kind="io_error"),
                FaultSpec(site="registry.manifest", kind="crash"),
            ], seed=11)
            injector.arm(scheduler=scheduler, registry=service.registry,
                         store=store)

            workload = make_random_workload(store.snapshot(), num_queries=40,
                                            seed=23, label=False)
            stop = threading.Event()
            request_errors = [0] * 4

            def hammer(index: int) -> None:
                rng = np.random.default_rng(index)
                while not stop.is_set():
                    query = workload.queries[int(rng.integers(0,
                                                              len(workload)))]
                    try:
                        service.estimate(query)
                    except Exception:  # noqa: BLE001 — the acceptance count
                        request_errors[index] += 1

            threads = [threading.Thread(target=hammer, args=(index,),
                                        daemon=True) for index in range(4)]
            for thread in threads:
                thread.start()
            try:
                _append_in_domain(store, 80, seed=31)
                # tune 1: InjectedFault out of the training loop
                assert scheduler.poll_once().details["action"] == "tune"
                assert scheduler.events.last("error").details["stage"] == \
                    "refresh"
                # tune 2: registry save fails with an I/O error
                assert scheduler.poll_once().details["action"] == "tune"
                assert "OSError" in \
                    scheduler.events.last("error").details["error"]
                # tune 3: crash between checkpoint files and manifest commit
                assert scheduler.poll_once().details["action"] == "tune"
                assert "SimulatedCrash" in \
                    scheduler.events.last("error").details["error"]
                # tune 4: fault budget exhausted; canary-gated swap lands
                event = scheduler.poll_once()
                assert event.details["action"] == "tune"
                assert scheduler.events.count("refresh") == 1
                # every surviving tune was canary-evaluated (tunes 2 and 3
                # passed the gate before their registry faults hit)
                assert scheduler.events.count("canary_pass") >= 1
                assert scheduler.events.count("canary_reject") == 0
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=10.0)
            assert sum(request_errors) == 0
            assert injector.total_injected == 3
            injector.disarm(scheduler=scheduler, registry=service.registry,
                            store=store)

            # A deliberately degraded candidate is still turned away.
            gate = scheduler._canary_gate("refresh")
            assert gate(_degraded_model(store)) is False
            assert scheduler.events.count("canary_reject") == 1

            registry_root = service.registry.root
            serving_version = service.model_version
            # Corrupt the superseded version on disk.
            corrupt = registry_root / "lifecycle" / "v1" / "model.npz"
            corrupt.write_bytes(b"bit rot")

        # Cold start over the crashed+corrupted state: the partial
        # checkpoint (orphan dir, tune 3's crash re-saved it as the next
        # version) and the corrupt entry are quarantined; the survivor
        # still serves.
        fresh = ModelRegistry(registry_root)
        report = fresh.recover()
        reasons = {(q.version, q.reason) for q in report.quarantined}
        assert ("v1", "checksum_mismatch") in reasons
        assert fresh.latest_version("lifecycle") == serving_version
        assert fresh.load_estimator("lifecycle") is not None
        assert fresh.recover().clean
