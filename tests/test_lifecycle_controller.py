"""Tests of the autonomous lifecycle controller (:mod:`repro.lifecycle`).

Covers the event log, the drift monitor (probe sampling, incremental
relabeling through appends *and* deletes, threshold/drift decisions), the
refresh scheduler (debounce, cooldown, backpressure, error containment, the
daemon loop), cold-train escalation on domain growth, tombstone-triggered
compaction with its own escalation, retention, and the end-to-end
acceptance paths: skewed appends or skewed deletes trigger an automatic
refresh that restores accuracy with zero failed requests, and domain
growth escalates to a cold train that swaps without raising to callers.
"""

import dataclasses
import threading
import time

import numpy as np
import pytest

from repro.core import (
    DuetConfig,
    DuetEstimator,
    DuetModel,
    DuetTrainer,
    LifecyclePolicy,
    ServingConfig,
)
from repro.data import ColumnStore, Table
from repro.eval import qerror
from repro.lifecycle import (
    DriftMonitor,
    EventLog,
    RefreshScheduler,
    RetentionPolicy,
    cold_train_and_swap,
)
from repro.serving import EstimationService, ModelRegistry
from repro.workload import make_random_workload, true_cardinalities

CONFIG = DuetConfig(hidden_sizes=(16, 16), epochs=1, batch_size=128,
                    expand_coefficient=1, lambda_query=0.0, seed=0)

#: a policy tight enough that single test appends cross its thresholds, with
#: debounce/cooldown disabled so poll_once() acts immediately
EAGER = LifecyclePolicy(poll_interval_seconds=0.02, max_stale_rows=50,
                        max_stale_fraction=0.1, probe_sample_rate=1.0,
                        min_probe_queries=5, debounce_polls=1,
                        cooldown_seconds=0.0, refresh_epochs=1,
                        cold_train_epochs=1, keep_model_versions=2,
                        tune_yield_seconds=0.0)


@pytest.fixture()
def store() -> ColumnStore:
    rng = np.random.default_rng(0)
    table = Table.from_dict("lifecycle", {
        "age": rng.integers(18, 60, size=400),
        "city": rng.choice(["ams", "ber", "cdg", "dus"], size=400),
        "score": rng.integers(0, 10, size=400),
    })
    return ColumnStore.from_table(table)


def _make_service(store, tmp_path, config=CONFIG, serving=None):
    base = store.snapshot()
    model = DuetModel(base, config)
    DuetTrainer(model, base, config=config).train(1)
    registry = ModelRegistry(tmp_path / "registry")
    registry.save(model, dataset="lifecycle")
    return EstimationService.from_registry(
        registry, "lifecycle", store=store,
        config=serving or ServingConfig(max_wait_ms=0.2))


def _append_in_domain(store: ColumnStore, count: int, seed: int):
    rng = np.random.default_rng(seed)
    snapshot = store.snapshot()
    return store.append({
        name: snapshot.column(name).distinct_values[
            rng.integers(0, snapshot.column(name).num_distinct, size=count)]
        for name in snapshot.column_names
    })


def _append_growing(store: ColumnStore, count: int, seed: int):
    """Append rows containing values outside every current domain."""
    rng = np.random.default_rng(seed)
    return store.append({
        "age": rng.integers(200, 260, size=count),
        "city": rng.choice(["zrh", "vie"], size=count),
        "score": rng.integers(50, 60, size=count),
    })


# ----------------------------------------------------------------------
# Event log
# ----------------------------------------------------------------------
class TestEventLog:
    def test_record_and_filter(self):
        log = EventLog()
        log.record("decision", action="hold")
        log.record("refresh", version="v2")
        log.record("decision", action="tune")
        assert len(log) == 3
        assert [event.kind for event in log.events()] == [
            "decision", "refresh", "decision"]
        assert [event.details["action"] for event in log.events("decision")] == [
            "hold", "tune"]
        assert log.last().details["action"] == "tune"
        assert log.last("refresh").details["version"] == "v2"
        assert log.last("cold_train") is None

    def test_capacity_bounds_events_but_not_counts(self):
        log = EventLog(capacity=4)
        for index in range(10):
            log.record("decision", index=index)
        assert len(log) == 4
        assert [event.details["index"] for event in log.events()] == [6, 7, 8, 9]
        assert log.count("decision") == 10
        assert log.counts() == {"decision": 10}

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)


# ----------------------------------------------------------------------
# Policy validation
# ----------------------------------------------------------------------
class TestLifecyclePolicy:
    @pytest.mark.parametrize("overrides", [
        {"poll_interval_seconds": 0.0},
        {"max_stale_rows": 0},
        {"max_stale_fraction": -0.5},
        {"probe_window": 0},
        {"probe_sample_rate": 1.5},
        {"min_probe_queries": 0},
        {"qerror_median_threshold": 0.5},
        {"qerror_drift_factor": 1.0},
        {"debounce_polls": 0},
        {"cooldown_seconds": -1.0},
        {"refresh_epochs": 0},
        {"cold_train_epochs": 0},
        {"tune_slice_batches": 0},
        {"tune_yield_seconds": -0.1},
        {"keep_model_versions": 0},
        {"canary_margin": 0.0},
        {"canary_margin": -1.0},
        {"failure_backoff_seconds": -1.0},
        {"failure_backoff_seconds": 10.0, "failure_backoff_max_seconds": 1.0},
        {"breaker_failure_threshold": 0},
        {"breaker_cooldown_seconds": -1.0},
    ])
    def test_rejects_invalid_knobs(self, overrides):
        with pytest.raises(ValueError):
            LifecyclePolicy(**overrides)

    def test_triggers_can_be_disabled(self):
        policy = LifecyclePolicy(max_stale_rows=None, max_stale_fraction=None,
                                 qerror_median_threshold=None,
                                 qerror_drift_factor=None,
                                 keep_model_versions=None)
        assert policy.max_stale_rows is None


# ----------------------------------------------------------------------
# Drift monitor
# ----------------------------------------------------------------------
class TestDriftMonitor:
    def test_requires_a_live_store(self):
        estimator = DuetEstimator(DuetModel(
            Table.from_dict("static", {"a": [1, 2, 3]}), CONFIG))
        with EstimationService(estimator) as service:
            with pytest.raises(ValueError, match="live ColumnStore"):
                DriftMonitor(service)

    def test_observer_samples_served_queries(self, store, tmp_path):
        with _make_service(store, tmp_path) as service:
            monitor = DriftMonitor(service, EAGER).attach()
            workload = make_random_workload(store.snapshot(), num_queries=8,
                                            seed=5, label=False)
            for query in workload.queries:
                service.estimate(query)
            assert len(monitor.probe_queries) == 8  # sample rate 1.0
            monitor.detach()
            service.estimate(workload.queries[0])
            assert len(monitor.probe_queries) == 8

    def test_evaluation_stays_out_of_the_request_path(self, store, tmp_path):
        """Probe evaluation must not feed the probe window, inflate the
        request counters, or write into the estimate cache."""
        with _make_service(store, tmp_path) as service:
            monitor = DriftMonitor(service, EAGER).attach()
            workload = make_random_workload(store.snapshot(), num_queries=10,
                                            seed=5, label=False)
            monitor.seed_probes(workload.queries)
            before_probes = monitor.probe_queries
            before_stats = service.snapshot()
            metrics = monitor.evaluate()
            assert metrics.median_qerror is not None
            assert monitor.probe_queries == before_probes
            after_stats = service.snapshot()
            assert after_stats.requests == before_stats.requests
            assert after_stats.num_batches == before_stats.num_batches
            assert len(service.cache) == 0

    def test_incremental_labels_match_full_rescan(self, store, tmp_path):
        with _make_service(store, tmp_path) as service:
            monitor = DriftMonitor(service, EAGER)
            workload = make_random_workload(store.snapshot(), num_queries=30,
                                            seed=9, label=False)
            monitor.seed_probes(workload.queries)
            probes = monitor.probe_queries
            first = monitor._labeled_counts(probes)
            np.testing.assert_array_equal(
                first, true_cardinalities(store.snapshot(), list(probes)))
            # In-domain append: labels roll forward through the delta.
            _append_in_domain(store, 90, seed=3)
            rolled = monitor._labeled_counts(probes)
            np.testing.assert_array_equal(
                rolled, true_cardinalities(store.snapshot(), list(probes)))
            # Domain growth: raw-value comparison still additive.
            _append_growing(store, 25, seed=4)
            grown = monitor._labeled_counts(probes)
            np.testing.assert_array_equal(
                grown, true_cardinalities(store.snapshot(), list(probes)))

    def test_incremental_labels_roll_through_deletes(self, store, tmp_path):
        with _make_service(store, tmp_path) as service:
            monitor = DriftMonitor(service, EAGER)
            workload = make_random_workload(store.snapshot(), num_queries=30,
                                            seed=9, label=False)
            monitor.seed_probes(workload.queries)
            probes = monitor.probe_queries
            monitor._labeled_counts(probes)      # pin labels at this version
            store.delete(np.arange(0, 120, 2))   # tombstone 60 base rows
            rolled = monitor._labeled_counts(probes)
            np.testing.assert_array_equal(
                rolled, true_cardinalities(store.snapshot(), list(probes)))
            # Mixed churn rolls forward too (append + another delete).
            _append_in_domain(store, 50, seed=3)
            store.delete(np.arange(0, 40))
            np.testing.assert_array_equal(
                monitor._labeled_counts(probes),
                true_cardinalities(store.snapshot(), list(probes)))

    def test_pure_delete_triggers_staleness(self, store, tmp_path):
        policy = LifecyclePolicy(max_stale_rows=100, max_stale_fraction=0.2,
                                 qerror_median_threshold=None,
                                 qerror_drift_factor=None)
        with _make_service(store, tmp_path) as service:
            monitor = DriftMonitor(service, policy)
            assert not monitor.decide()
            store.delete(np.arange(50))          # 50/400 < 0.2, < 100 rows
            assert not monitor.decide()
            store.delete(np.arange(50))          # 100 rows churned
            decision = monitor.decide()
            assert decision.refresh
            assert decision.reasons == ("stale_rows", "stale_fraction")
            assert decision.metrics.stale_rows == 100
            assert decision.metrics.trained_rows == 400  # live rows at v1

    def test_changed_probe_set_relabels_fully(self, store, tmp_path):
        with _make_service(store, tmp_path) as service:
            monitor = DriftMonitor(service, EAGER)
            workload = make_random_workload(store.snapshot(), num_queries=12,
                                            seed=9, label=False)
            monitor.seed_probes(workload.queries[:6])
            monitor._labeled_counts(monitor.probe_queries)
            monitor.seed_probes(workload.queries[6:])
            probes = monitor.probe_queries
            np.testing.assert_array_equal(
                monitor._labeled_counts(probes),
                true_cardinalities(store.snapshot(), list(probes)))

    def test_staleness_triggers(self, store, tmp_path):
        policy = LifecyclePolicy(max_stale_rows=100, max_stale_fraction=0.2,
                                 qerror_median_threshold=None,
                                 qerror_drift_factor=None)
        with _make_service(store, tmp_path) as service:
            monitor = DriftMonitor(service, policy)
            assert not monitor.decide()
            _append_in_domain(store, 79, seed=1)   # 79/400 < 0.2, < 100 rows
            assert not monitor.decide()
            _append_in_domain(store, 21, seed=2)   # 100 rows appended
            decision = monitor.decide()
            assert decision.refresh
            assert decision.reasons == ("stale_rows", "stale_fraction")
            assert decision.metrics.stale_rows == 100
            assert decision.metrics.trained_rows == 400

    def test_qerror_threshold_trigger_needs_enough_probes(self, store, tmp_path):
        policy = LifecyclePolicy(max_stale_rows=None, max_stale_fraction=None,
                                 qerror_median_threshold=1.0,  # always fires
                                 qerror_drift_factor=None, min_probe_queries=5)
        with _make_service(store, tmp_path) as service:
            monitor = DriftMonitor(service, policy)
            workload = make_random_workload(store.snapshot(), num_queries=8,
                                            seed=2, label=False)
            monitor.seed_probes(workload.queries[:4])
            decision = monitor.decide()  # probe too small: trigger silent
            assert not decision and decision.metrics.median_qerror is None
            monitor.seed_probes(workload.queries[4:])
            decision = monitor.decide()
            assert decision.refresh and decision.reasons == ("qerror_threshold",)
            assert decision.metrics.median_qerror >= 1.0

    def test_drift_factor_measures_against_baseline(self, store, tmp_path, monkeypatch):
        policy = LifecyclePolicy(max_stale_rows=None, max_stale_fraction=None,
                                 qerror_median_threshold=None,
                                 qerror_drift_factor=2.0)
        with _make_service(store, tmp_path) as service:
            monitor = DriftMonitor(service, policy)
            medians = iter([1.2, 1.8, 3.0])
            monkeypatch.setattr(monitor, "_probe_median",
                                lambda probes: next(medians))
            assert monitor.rebase() == 1.2          # baseline recorded
            assert not monitor.decide()             # 1.8 < 2 * 1.2
            decision = monitor.decide()             # 3.0 >= 2 * 1.2
            assert decision.refresh and decision.reasons == ("qerror_drift",)


# ----------------------------------------------------------------------
# Scheduler mechanics
# ----------------------------------------------------------------------
class TestRefreshScheduler:
    def test_poll_refreshes_and_records(self, store, tmp_path):
        with _make_service(store, tmp_path) as service:
            scheduler = RefreshScheduler(service, EAGER)
            assert scheduler.poll_once().details["action"] == "hold"
            _append_in_domain(store, 120, seed=7)
            event = scheduler.poll_once()
            assert event.details["action"] == "tune"
            assert service.staleness() == 0
            refresh = scheduler.events.last("refresh")
            assert refresh.details["version"] == "v2"
            assert service.model_version == "v2"
            assert scheduler.events.count("retention") == 1

    def test_debounce_requires_consecutive_hits(self, store, tmp_path):
        policy = dataclasses.replace(EAGER, debounce_polls=2)
        with _make_service(store, tmp_path) as service:
            scheduler = RefreshScheduler(service, policy)
            _append_in_domain(store, 120, seed=7)
            assert scheduler.poll_once().details["action"] == "debounce"
            assert service.staleness() == 120  # not tuned yet
            assert scheduler.poll_once().details["action"] == "tune"
            assert service.staleness() == 0
            # A negative poll resets the streak.
            _append_in_domain(store, 120, seed=8)
            assert scheduler.poll_once().details["action"] == "debounce"
            scheduler.service.refresh()  # absorb out-of-band
            assert scheduler.poll_once().details["action"] == "hold"
            _append_in_domain(store, 120, seed=9)
            assert scheduler.poll_once().details["action"] == "debounce"

    def test_cooldown_blocks_back_to_back_tunes(self, store, tmp_path):
        policy = dataclasses.replace(EAGER, cooldown_seconds=120.0)
        with _make_service(store, tmp_path) as service:
            scheduler = RefreshScheduler(service, policy)
            _append_in_domain(store, 120, seed=7)
            assert scheduler.poll_once().details["action"] == "tune"
            _append_in_domain(store, 120, seed=8)
            assert scheduler.poll_once().details["action"] == "cooldown"
            assert service.staleness() == 120
            scheduler._last_tune_at = time.monotonic() - 121.0
            assert scheduler.poll_once().details["action"] == "tune"
            assert service.staleness() == 0

    def test_accuracy_trigger_without_staleness_noops_cleanly(self, store,
                                                              tmp_path):
        """An always-firing accuracy trigger with zero staleness must not
        fabricate refresh events, rebase the baseline, or run retention."""
        policy = dataclasses.replace(EAGER, max_stale_rows=None,
                                     max_stale_fraction=None,
                                     qerror_median_threshold=1.0)
        with _make_service(store, tmp_path) as service:
            scheduler = RefreshScheduler(service, policy)
            workload = make_random_workload(store.snapshot(), num_queries=10,
                                            seed=2, label=False)
            scheduler.monitor.seed_probes(workload.queries)
            event = scheduler.poll_once()
            assert event.details["action"] == "tune"
            assert scheduler.events.count("refresh") == 0
            assert scheduler.events.count("retention") == 0
            assert scheduler.events.last("decision").details["action"] == "refresh_noop"
            assert service.model_version == "v1"

    def test_refresh_failure_is_contained(self, store, tmp_path, monkeypatch):
        with _make_service(store, tmp_path) as service:
            scheduler = RefreshScheduler(service, EAGER)
            _append_in_domain(store, 120, seed=7)
            monkeypatch.setattr(service, "refresh",
                                lambda **kwargs: (_ for _ in ()).throw(
                                    RuntimeError("tune exploded")))
            scheduler.poll_once()  # must not raise
            error = scheduler.events.last("error")
            assert error.details["stage"] == "refresh"
            assert "tune exploded" in error.details["error"]

    def test_retention_prunes_registry_and_trims_store(self, store, tmp_path):
        policy = dataclasses.replace(EAGER, keep_model_versions=1)
        with _make_service(store, tmp_path) as service:
            scheduler = RefreshScheduler(service, policy)
            for seed in (11, 12):
                _append_in_domain(store, 120, seed=seed)
                assert scheduler.poll_once().details["action"] == "tune"
            # keep=1: only the served version remains.
            assert service.registry.versions("lifecycle") == [service.model_version]
            retention = scheduler.events.last("retention")
            assert retention.details["pruned_model_versions"]

    def test_daemon_loop_refreshes_autonomously(self, store, tmp_path):
        with _make_service(store, tmp_path) as service:
            with RefreshScheduler(service, EAGER) as scheduler:
                assert scheduler.running
                _append_in_domain(store, 120, seed=7)
                deadline = time.time() + 30.0
                while service.staleness() and time.time() < deadline:
                    time.sleep(0.02)
                assert service.staleness() == 0
                assert scheduler.events.count("refresh") >= 1
            assert not scheduler.running

    def test_backpressure_throttle_counts_slices(self):
        policy = LifecyclePolicy(tune_slice_batches=3, tune_yield_seconds=0.001)
        scheduler = RefreshScheduler.__new__(RefreshScheduler)
        scheduler.policy = policy
        throttle = scheduler._make_throttle()
        started = time.perf_counter()
        for _ in range(6):
            throttle()
        assert time.perf_counter() - started >= 0.002  # two yields
        assert RefreshScheduler._make_throttle(scheduler) is not throttle
        no_yield = LifecyclePolicy(tune_yield_seconds=0.0)
        scheduler.policy = no_yield
        assert scheduler._make_throttle() is None


# ----------------------------------------------------------------------
# Cold-train escalation
# ----------------------------------------------------------------------
class TestColdTrainEscalation:
    def test_synchronous_cold_train_swaps(self, store, tmp_path):
        with _make_service(store, tmp_path) as service:
            workload = make_random_workload(store.snapshot(), num_queries=10,
                                            seed=3, label=False)
            _append_growing(store, 30, seed=5)
            result = cold_train_and_swap(service, epochs=1)
            assert result.ok and result.done
            assert service.staleness() == 0
            assert service.model_version == result.entry.version
            entry = service.registry.entry("lifecycle")
            assert entry.metadata["cold_trained"] is True
            assert entry.metadata["escalated_from"] == "v1"
            # The swapped model carries the grown domains and keeps serving.
            assert service.table.column("city").num_distinct == 6
            assert np.isfinite(service.estimate_batch(workload.queries)).all()

    def test_cold_train_failure_is_reported_not_raised(self, store, tmp_path):
        with _make_service(store, tmp_path) as service:
            service.estimator.model = None  # no config to clone
            result = cold_train_and_swap(service, epochs=1)
            assert result.done and not result.ok
            assert isinstance(result.error, RuntimeError)

    def test_scheduler_escalates_on_domain_growth(self, store, tmp_path):
        with _make_service(store, tmp_path) as service:
            scheduler = RefreshScheduler(service, EAGER)
            workload = make_random_workload(store.snapshot(), num_queries=10,
                                            seed=3, label=False)
            _append_growing(store, 100, seed=5)
            assert scheduler.poll_once().details["action"] == "tune"
            started = scheduler.events.last("cold_train")
            assert started.details["status"] == "started"
            assert set(started.details["grown_columns"]) == {
                "age", "city", "score"}
            # While the cold train runs, serving never raises and further
            # polls only report (at most one tune in flight).
            assert np.isfinite(service.estimate_batch(workload.queries)).all()
            assert scheduler.quiesce(timeout=60.0)
            swapped = scheduler.events.last("cold_train")
            assert swapped.details["status"] == "swapped"
            assert service.staleness() == 0
            assert service.model_version == swapped.details["version"]
            assert np.isfinite(service.estimate_batch(workload.queries)).all()

    def test_escalation_disabled_surfaces_error_event(self, store, tmp_path):
        policy = dataclasses.replace(EAGER, cold_train_on_growth=False)
        with _make_service(store, tmp_path) as service:
            scheduler = RefreshScheduler(service, policy)
            _append_growing(store, 100, seed=5)
            scheduler.poll_once()  # must not raise
            assert scheduler.events.count("cold_train") == 0
            assert scheduler.events.last("error").details["stage"] == "refresh"


# ----------------------------------------------------------------------
# Compaction
# ----------------------------------------------------------------------
class TestCompaction:
    def test_scheduler_compacts_and_cold_trains(self, store, tmp_path):
        """Crossing the tombstone threshold fires compaction + escalation:
        chunks rewritten, cold train swaps in the background, nothing
        raises into serving."""
        with _make_service(store, tmp_path) as service:
            scheduler = RefreshScheduler(service, EAGER)  # threshold 0.30
            workload = make_random_workload(store.snapshot(), num_queries=10,
                                            seed=3, label=False)
            store.delete(np.arange(200))          # 200/400 = 0.5 dead
            event = scheduler.poll_once()
            assert event.kind == "compaction"
            assert event.details["dropped_rows"] == 200
            assert event.details["tombstone_fraction"] == pytest.approx(0.5)
            assert store.tombstone_fraction == 0.0
            assert store.physical_rows == store.num_rows == 200
            started = scheduler.events.last("cold_train")
            assert started.details == {"status": "started",
                                       "reason": "compaction"}
            # Serving keeps answering while the cold train runs.
            assert np.isfinite(service.estimate_batch(workload.queries)).all()
            assert scheduler.quiesce(timeout=60.0)
            swapped = scheduler.events.last("cold_train")
            assert swapped.details["status"] == "swapped"
            assert service.staleness() == 0
            assert service.data_version == store.data_version
            assert service.table.num_rows == 200
            assert np.isfinite(service.estimate_batch(workload.queries)).all()

    def test_compaction_respects_threshold_and_disable(self, store, tmp_path):
        with _make_service(store, tmp_path) as service:
            scheduler = RefreshScheduler(service, EAGER)
            store.delete(np.arange(80))           # 0.2 < 0.3: no compaction
            scheduler.poll_once()
            assert scheduler.events.count("compaction") == 0
            assert store.physical_rows == 400     # untouched
        disabled = dataclasses.replace(EAGER, compact_tombstone_fraction=None)
        with _make_service(store, tmp_path / "second") as service:
            scheduler = RefreshScheduler(service, disabled)
            store.delete(np.arange(0, store.num_rows, 2))
            scheduler.poll_once()
            assert scheduler.events.count("compaction") == 0

    def test_compaction_failure_is_contained(self, store, tmp_path,
                                             monkeypatch):
        with _make_service(store, tmp_path) as service:
            scheduler = RefreshScheduler(service, EAGER)
            store.delete(np.arange(200))
            monkeypatch.setattr(store, "compact_measured",
                                lambda: (_ for _ in ()).throw(
                                    RuntimeError("rewrite exploded")))
            event = scheduler.poll_once()        # must not raise
            assert event.kind == "error"
            assert event.details["stage"] == "compaction"
            assert scheduler.events.count("cold_train") == 0


# ----------------------------------------------------------------------
# Retention policy unit
# ----------------------------------------------------------------------
class TestRetentionPolicy:
    def test_apply_prunes_and_trims(self, store, tmp_path):
        policy = dataclasses.replace(EAGER, keep_model_versions=1)
        with _make_service(store, tmp_path) as service:
            for seed in (1, 2, 3):
                _append_in_domain(store, 60, seed=seed)
                service.refresh()
            report = RetentionPolicy(policy).apply(service)
            assert report.removed_anything
            assert service.registry.versions("lifecycle") == [service.model_version]
            # Store metadata for versions no snapshot references is gone.
            assert report.trimmed_store_versions > 0

    def test_apply_pins_the_served_data_version_in_the_store(self, store,
                                                             tmp_path):
        """The served data_version is a plain int (registry loads carry no
        Snapshot); retention must pin it so staleness stays exact."""
        import gc

        with _make_service(store, tmp_path) as service:
            assert service.data_version == 1
            _append_in_domain(store, 120, seed=1)   # store moves to v2
            gc.collect()                            # v1 has no live Snapshot
            RetentionPolicy(EAGER).apply(service)
            assert 1 in store.tracked_versions      # pinned by the service
            assert service.staleness() == 120       # still the exact delta

    def test_apply_protects_served_version(self, store, tmp_path):
        policy = dataclasses.replace(EAGER, keep_model_versions=1)
        with _make_service(store, tmp_path) as service:
            _append_in_domain(store, 60, seed=1)
            service.refresh()  # served becomes v2
            # A save the service does not serve becomes the newest version.
            service.registry.save(service.estimator.model, "lifecycle",
                                  version="v9")
            RetentionPolicy(policy).apply(service)
            versions = service.registry.versions("lifecycle")
            assert service.model_version in versions  # never pruned
            assert "v9" in versions                   # manifest latest


# ----------------------------------------------------------------------
# End-to-end acceptance
# ----------------------------------------------------------------------
ACCEPT_CONFIG = DuetConfig(hidden_sizes=(24, 24), epochs=2, batch_size=128,
                           expand_coefficient=2, lambda_query=0.0, seed=0)


def _skewed_append(store: ColumnStore, count: int, seed: int):
    """Append rows drawn only from the top quartile of every domain."""
    rng = np.random.default_rng(seed)
    snapshot = store.snapshot()
    batch = {}
    for name in snapshot.column_names:
        column = snapshot.column(name)
        start = (3 * column.num_distinct) // 4
        batch[name] = column.distinct_values[
            rng.integers(start, column.num_distinct, size=count)]
    return store.append(batch)


class TestEndToEndAcceptance:
    def test_skewed_appends_trigger_recovering_refresh(self, tmp_path):
        rng = np.random.default_rng(0)
        store = ColumnStore.from_table(Table.from_dict("lifecycle", {
            "age": rng.integers(18, 60, size=500),
            "city": rng.choice(["ams", "ber", "cdg", "dus", "lis"], size=500),
            "score": rng.integers(0, 12, size=500),
        }))
        policy = dataclasses.replace(EAGER, refresh_epochs=2)
        with _make_service(store, tmp_path, config=ACCEPT_CONFIG) as service:
            scheduler = RefreshScheduler(service, policy)

            # Skewed appends past the policy threshold.
            new_snapshot = _skewed_append(store, 250, seed=7)
            workload = make_random_workload(new_snapshot, num_queries=120,
                                            seed=11, label=False)
            truth = true_cardinalities(new_snapshot, workload.queries)

            # Hammer the service from worker threads across the swap: the
            # acceptance bar is zero failed estimate() calls.
            stop = threading.Event()
            failures: list[Exception] = []

            def hammer(seed: int) -> None:
                worker_rng = np.random.default_rng(seed)
                while not stop.is_set():
                    query = workload.queries[
                        int(worker_rng.integers(0, len(workload)))]
                    try:
                        assert service.estimate(query) >= 0.0
                    except Exception as error:  # noqa: BLE001
                        failures.append(error)

            threads = [threading.Thread(target=hammer, args=(index,), daemon=True)
                       for index in range(4)]
            for thread in threads:
                thread.start()
            try:
                event = scheduler.poll_once()  # automatic refresh
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=10.0)

            assert event.details["action"] == "tune"
            assert scheduler.events.count("refresh") == 1
            assert failures == []
            assert service.staleness() == 0

            refreshed = float(np.median(qerror(
                service.estimate_batch(workload.queries), truth)))

            # Freshly-tuned baseline: a cold model trained on the new
            # snapshot with the same architecture and budget.
            fresh = DuetModel(new_snapshot, ACCEPT_CONFIG)
            DuetTrainer(fresh, new_snapshot, config=ACCEPT_CONFIG).train()
            baseline = float(np.median(qerror(
                DuetEstimator(fresh).estimate_batch(workload.queries), truth)))
            assert refreshed <= 1.5 * baseline

    def test_skewed_deletes_trigger_recovering_refresh(self, tmp_path):
        """The delete acceptance bar: a skewed delete workload degrades the
        served model, the controller refreshes automatically (negative
        replay over the tombstoned rows), and the refreshed probe median
        lands within 1.5x of a model cold-trained on the live view — with
        zero failed requests across the swap."""
        rng = np.random.default_rng(0)
        store = ColumnStore.from_table(Table.from_dict("lifecycle", {
            "age": rng.integers(18, 60, size=500),
            "city": rng.choice(["ams", "ber", "cdg", "dus", "lis"], size=500),
            "score": rng.integers(0, 12, size=500),
        }))
        # Compaction is exercised separately; here the refresh path must
        # absorb a delete fraction that would otherwise cross its threshold.
        policy = dataclasses.replace(EAGER, refresh_epochs=2,
                                     compact_tombstone_fraction=None)
        with _make_service(store, tmp_path, config=ACCEPT_CONFIG) as service:
            scheduler = RefreshScheduler(service, policy)

            # Skewed deletes: wipe most of the lower half of `age`, shifting
            # the live distribution the served model no longer matches.
            base = store.snapshot()
            ages = base.column("age")
            low_half = ages.distinct_values[ages.codes] < np.median(
                ages.distinct_values)
            victims = np.flatnonzero(low_half)
            new_snapshot = store.delete(
                victims[rng.random(victims.size) < 0.8])
            assert service.staleness() >= policy.max_stale_rows

            workload = make_random_workload(new_snapshot, num_queries=120,
                                            seed=11, label=False)
            truth = true_cardinalities(new_snapshot, workload.queries)

            stop = threading.Event()
            failures: list[Exception] = []

            def hammer(seed: int) -> None:
                worker_rng = np.random.default_rng(seed)
                while not stop.is_set():
                    query = workload.queries[
                        int(worker_rng.integers(0, len(workload)))]
                    try:
                        assert service.estimate(query) >= 0.0
                    except Exception as error:  # noqa: BLE001
                        failures.append(error)

            threads = [threading.Thread(target=hammer, args=(index,), daemon=True)
                       for index in range(4)]
            for thread in threads:
                thread.start()
            try:
                event = scheduler.poll_once()  # automatic refresh
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=10.0)

            assert event.details["action"] == "tune"
            assert scheduler.events.count("refresh") == 1
            assert failures == []
            assert service.staleness() == 0
            assert service.table.num_rows == new_snapshot.num_rows

            refreshed = float(np.median(qerror(
                service.estimate_batch(workload.queries), truth)))

            # Baseline: a cold model trained on the live view with the same
            # architecture and budget.
            fresh = DuetModel(new_snapshot, ACCEPT_CONFIG)
            DuetTrainer(fresh, new_snapshot, config=ACCEPT_CONFIG).train()
            baseline = float(np.median(qerror(
                DuetEstimator(fresh).estimate_batch(workload.queries), truth)))
            assert refreshed <= 1.5 * baseline

    def test_domain_growth_escalates_without_raising(self, store, tmp_path):
        with _make_service(store, tmp_path) as service:
            scheduler = RefreshScheduler(service, EAGER)
            workload = make_random_workload(store.snapshot(), num_queries=20,
                                            seed=3, label=False)
            final = _append_growing(store, 100, seed=5)

            stop = threading.Event()
            failures: list[Exception] = []

            def hammer(seed: int) -> None:
                worker_rng = np.random.default_rng(seed)
                while not stop.is_set():
                    query = workload.queries[
                        int(worker_rng.integers(0, len(workload)))]
                    try:
                        service.estimate(query)
                    except Exception as error:  # noqa: BLE001
                        failures.append(error)

            threads = [threading.Thread(target=hammer, args=(index,), daemon=True)
                       for index in range(4)]
            for thread in threads:
                thread.start()
            try:
                scheduler.poll_once()             # escalates in background
                assert scheduler.quiesce(timeout=60.0)
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=10.0)

            assert failures == []
            assert scheduler.events.last("cold_train").details["status"] == "swapped"
            assert service.staleness() == 0
            assert service.data_version == final.data_version
            assert service.table.num_rows == final.num_rows
