"""Unit and property-based tests for the autograd Tensor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor, no_grad


def numerical_gradient(function, array, epsilon=1e-6):
    """Central-difference gradient of a scalar-valued function of an array."""
    gradient = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    grad_flat = gradient.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        upper = function(array)
        flat[index] = original - epsilon
        lower = function(array)
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2 * epsilon)
    return gradient


class TestBasicOps:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        b = Tensor([4.0, 5.0, 6.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        np.testing.assert_allclose(b.grad, np.ones(3))

    def test_mul_backward(self):
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        b = Tensor([4.0, 5.0, 6.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, b.data)
        np.testing.assert_allclose(b.grad, a.data)

    def test_div_backward(self):
        a = Tensor([2.0, 4.0], requires_grad=True)
        b = Tensor([4.0, 8.0], requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, 1.0 / b.data)
        np.testing.assert_allclose(b.grad, -a.data / b.data ** 2)

    def test_pow_backward(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        (a ** 3).sum().backward()
        np.testing.assert_allclose(a.grad, 3 * a.data ** 2)

    def test_scalar_broadcast(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]], requires_grad=True)
        (a * 2.0 + 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 2.0))

    def test_rsub_and_rdiv(self):
        a = Tensor([2.0, 4.0], requires_grad=True)
        out = (8.0 - a).sum() + (8.0 / a).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, -1.0 - 8.0 / a.data ** 2)

    def test_neg(self):
        a = Tensor([1.0, -2.0], requires_grad=True)
        (-a).sum().backward()
        np.testing.assert_allclose(a.grad, [-1.0, -1.0])


class TestBroadcasting:
    def test_bias_broadcast_grad_shape(self):
        x = Tensor(np.random.default_rng(0).normal(size=(5, 3)), requires_grad=True)
        bias = Tensor(np.zeros(3), requires_grad=True)
        (x + bias).sum().backward()
        assert bias.grad.shape == (3,)
        np.testing.assert_allclose(bias.grad, np.full(3, 5.0))

    def test_row_times_column(self):
        row = Tensor(np.ones((1, 4)), requires_grad=True)
        column = Tensor(np.ones((3, 1)), requires_grad=True)
        (row * column).sum().backward()
        np.testing.assert_allclose(row.grad, np.full((1, 4), 3.0))
        np.testing.assert_allclose(column.grad, np.full((3, 1), 4.0))


class TestMatmul:
    def test_matmul_matches_numerical(self):
        rng = np.random.default_rng(1)
        a_data = rng.normal(size=(4, 3))
        b_data = rng.normal(size=(3, 5))

        a = Tensor(a_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        (a @ b).sum().backward()

        grad_a = numerical_gradient(lambda arr: (arr @ b_data).sum(), a_data.copy())
        grad_b = numerical_gradient(lambda arr: (a_data @ arr).sum(), b_data.copy())
        np.testing.assert_allclose(a.grad, grad_a, atol=1e-5)
        np.testing.assert_allclose(b.grad, grad_b, atol=1e-5)

    def test_matrix_vector(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        v = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (a @ v).sum().backward()
        np.testing.assert_allclose(a.grad, np.tile([1.0, 2.0], (3, 1)))
        np.testing.assert_allclose(v.grad, np.full(2, 3.0))


class TestNonlinearities:
    @pytest.mark.parametrize("op", ["relu", "sigmoid", "tanh", "exp"])
    def test_matches_numerical(self, op):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(6,))
        tensor = Tensor(data.copy(), requires_grad=True)
        getattr(tensor, op)().sum().backward()

        def forward(arr):
            if op == "relu":
                return np.maximum(arr, 0).sum()
            if op == "sigmoid":
                return (1 / (1 + np.exp(-arr))).sum()
            if op == "tanh":
                return np.tanh(arr).sum()
            return np.exp(arr).sum()

        expected = numerical_gradient(forward, data.copy())
        np.testing.assert_allclose(tensor.grad, expected, atol=1e-5)

    def test_log_backward(self):
        a = Tensor([1.0, 2.0, 4.0], requires_grad=True)
        a.log().sum().backward()
        np.testing.assert_allclose(a.grad, 1.0 / a.data)

    def test_clip_gradient_masking(self):
        a = Tensor([-2.0, 0.5, 3.0], requires_grad=True)
        a.clip(0.0, 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self):
        a = Tensor(np.arange(12, dtype=float).reshape(3, 4), requires_grad=True)
        a.sum(axis=1, keepdims=True).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))

    def test_sum_axis_no_keepdims(self):
        a = Tensor(np.arange(12, dtype=float).reshape(3, 4), requires_grad=True)
        a.sum(axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))

    def test_mean(self):
        a = Tensor(np.ones((2, 5)), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 5), 0.1))

    def test_max_all(self):
        a = Tensor([1.0, 5.0, 3.0], requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_reshape_roundtrip(self):
        a = Tensor(np.arange(6, dtype=float), requires_grad=True)
        a.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(6))

    def test_transpose(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        a.transpose().sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_getitem_rows(self):
        a = Tensor(np.arange(12, dtype=float).reshape(4, 3), requires_grad=True)
        a[np.array([0, 2, 2])].sum().backward()
        expected = np.zeros((4, 3))
        expected[0] = 1
        expected[2] = 2
        np.testing.assert_allclose(a.grad, expected)

    def test_getitem_fancy_pairs(self):
        a = Tensor(np.arange(12, dtype=float).reshape(4, 3), requires_grad=True)
        rows = np.array([0, 1, 3])
        cols = np.array([2, 0, 1])
        a[rows, cols].sum().backward()
        expected = np.zeros((4, 3))
        expected[rows, cols] = 1
        np.testing.assert_allclose(a.grad, expected)

    def test_concat_backward(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        Tensor.concat([a, b], axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)))
        np.testing.assert_allclose(b.grad, np.ones((2, 3)))

    def test_stack_backward(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        Tensor.stack([a, b], axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        np.testing.assert_allclose(b.grad, np.ones(3))


class TestGraphBehaviour:
    def test_reused_tensor_accumulates(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        ((a * 2) + (a * 3)).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0, 5.0])

    def test_diamond_graph(self):
        a = Tensor([2.0], requires_grad=True)
        b = a * 3
        c = a * 4
        (b * c).sum().backward()
        # d/da (12 a^2) = 24 a
        np.testing.assert_allclose(a.grad, [48.0])

    def test_no_grad_blocks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2
        assert not out.requires_grad

    def test_detach(self):
        a = Tensor([1.0], requires_grad=True)
        assert not a.detach().requires_grad

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        a.zero_grad()
        assert a.grad is None


class TestPropertyBased:
    @given(hnp.arrays(np.float64, hnp.array_shapes(min_dims=1, max_dims=2, max_side=5),
                      elements=st.floats(-10, 10)))
    @settings(max_examples=50, deadline=None)
    def test_sum_gradient_is_ones(self, data):
        tensor = Tensor(data.copy(), requires_grad=True)
        tensor.sum().backward()
        np.testing.assert_allclose(tensor.grad, np.ones_like(data))

    @given(hnp.arrays(np.float64, st.integers(1, 8).map(lambda n: (n,)),
                      elements=st.floats(-5, 5)),
           hnp.arrays(np.float64, st.integers(1, 8).map(lambda n: (n,)),
                      elements=st.floats(-5, 5)))
    @settings(max_examples=50, deadline=None)
    def test_addition_is_commutative(self, left, right):
        size = min(left.size, right.size)
        left, right = left[:size], right[:size]
        forward = (Tensor(left) + Tensor(right)).numpy()
        backward = (Tensor(right) + Tensor(left)).numpy()
        np.testing.assert_allclose(forward, backward)

    @given(hnp.arrays(np.float64, (4, 3), elements=st.floats(-3, 3)))
    @settings(max_examples=30, deadline=None)
    def test_relu_output_nonnegative(self, data):
        assert (Tensor(data).relu().numpy() >= 0).all()


class TestGradModeThreadSafety:
    """``no_grad`` is per-thread: concurrent inference must not corrupt it."""

    def test_no_grad_is_thread_local(self):
        import threading

        from repro.nn import is_grad_enabled

        seen_inside = []

        def worker():
            with no_grad():
                seen_inside.append(is_grad_enabled())

        with no_grad():
            thread = threading.Thread(target=worker)
            # A sibling thread starts with gradients enabled regardless of
            # this thread's no_grad block...
            probe = []
            checker = threading.Thread(target=lambda: probe.append(is_grad_enabled()))
            checker.start(); checker.join()
            thread.start(); thread.join()
        assert probe == [True]
        assert seen_inside == [False]
        assert is_grad_enabled()

    def test_concurrent_no_grad_blocks_cannot_stick_disabled(self):
        import threading

        from repro.nn import is_grad_enabled

        def worker():
            for _ in range(200):
                with no_grad():
                    pass

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # The historical bug: a shared flag raced across threads and stayed
        # False, so freshly built models registered zero parameters.
        assert is_grad_enabled()
        assert Tensor(np.zeros(2), requires_grad=True).requires_grad
