"""Tests for the Duet model, MPSNs, estimator (Algorithm 3) and trainer."""

import numpy as np
import pytest

from repro.core import (
    DuetConfig,
    DuetEstimator,
    DuetModel,
    DuetTrainer,
    MPSNConfig,
    MergedMLPInference,
    build_mpsn,
)
from repro.core.mpsn import MLPMPSN, RecursiveMPSN, RNNMPSN
from repro.data import Table
from repro.nn import Tensor
from repro.workload import (
    Query,
    Workload,
    cardinality,
    make_inworkload,
    make_multi_predicate_workload,
    make_random_workload,
)


@pytest.fixture(scope="module")
def toy_table():
    rng = np.random.default_rng(0)
    a = rng.integers(0, 8, size=400)
    b = (a // 2 + rng.integers(0, 2, size=400)) % 4    # correlated with a
    c = rng.integers(0, 6, size=400)
    return Table("toy", [
        Table.from_dict("x", {"a": a}).column("a"),
        Table.from_dict("x", {"b": b}).column("b"),
        Table.from_dict("x", {"c": c}).column("c"),
    ])


@pytest.fixture(scope="module")
def small_config():
    return DuetConfig(hidden_sizes=(32, 32), epochs=2, batch_size=64,
                      expand_coefficient=2, seed=0)


@pytest.fixture(scope="module")
def trained_model(toy_table, small_config):
    model = DuetModel(toy_table, small_config)
    workload = make_inworkload(toy_table, num_queries=100, seed=42)
    trainer = DuetTrainer(model, toy_table, workload, small_config)
    trainer.train(epochs=2)
    return model


class TestDuetModel:
    def test_input_output_widths(self, toy_table, small_config):
        model = DuetModel(toy_table, small_config)
        expected_input = sum(encoder.predicate_width for encoder in model.codec.encoders)
        assert model.input_width == expected_input
        assert model.made.total_output == sum(toy_table.cardinalities)

    def test_forward_shape(self, toy_table, small_config):
        model = DuetModel(toy_table, small_config)
        values = np.full((5, 3, 1), -1, dtype=np.int64)
        ops = np.full((5, 3, 1), -1, dtype=np.int64)
        outputs = model.forward(values, ops)
        assert outputs.shape == (5, model.made.total_output)

    def test_two_dimensional_input_accepted(self, toy_table, small_config):
        model = DuetModel(toy_table, small_config)
        values = np.full((4, 3), -1, dtype=np.int64)
        ops = np.full((4, 3), -1, dtype=np.int64)
        assert model.forward(values, ops).shape[0] == 4

    def test_column_distribution_sums_to_one(self, toy_table, small_config):
        model = DuetModel(toy_table, small_config)
        values = np.full((3, 3, 1), -1, dtype=np.int64)
        ops = np.full((3, 3, 1), -1, dtype=np.int64)
        outputs = model.forward(values, ops)
        for column_index in range(3):
            distribution = model.column_distribution(outputs, column_index).numpy()
            np.testing.assert_allclose(distribution.sum(axis=1), np.ones(3), atol=1e-9)

    def test_selectivity_of_unconstrained_query_is_one(self, toy_table, small_config):
        model = DuetModel(toy_table, small_config)
        values = np.full((2, 3, 1), -1, dtype=np.int64)
        ops = np.full((2, 3, 1), -1, dtype=np.int64)
        outputs = model.forward(values, ops)
        masks = [np.ones((2, column.num_distinct)) for column in toy_table.columns]
        selectivity = model.selectivity_from_outputs(outputs, masks).numpy()
        np.testing.assert_allclose(selectivity, np.ones(2))

    def test_selectivity_in_unit_interval(self, trained_model, toy_table):
        codec = trained_model.codec
        queries = [Query.from_triples([("a", ">=", 4)]),
                   Query.from_triples([("b", "=", 1), ("c", "<=", 3)])]
        values, ops = codec.queries_to_code_arrays(queries)
        masks = codec.zero_out_masks(queries)
        outputs = trained_model.forward(values, ops)
        selectivity = trained_model.selectivity_from_outputs(outputs, masks).numpy()
        assert (selectivity >= 0).all() and (selectivity <= 1.0 + 1e-9).all()

    def test_embedding_columns_created_for_large_domains(self, small_config):
        rng = np.random.default_rng(1)
        table = Table.from_dict("big", {
            "large": rng.integers(0, 900, size=500),
            "small": rng.integers(0, 4, size=500),
        })
        config = DuetConfig(hidden_sizes=(16,), embedding_threshold=100, embedding_dim=8)
        model = DuetModel(table, config)
        assert len(model._embedding_columns) == 1
        values = np.full((2, 2, 1), -1, dtype=np.int64)
        ops = np.full((2, 2, 1), -1, dtype=np.int64)
        values[0, 0, 0] = 123
        ops[0, 0, 0] = 0
        assert model.forward(values, ops).shape[0] == 2

    def test_parameter_count_positive(self, toy_table, small_config):
        model = DuetModel(toy_table, small_config)
        assert model.num_parameters() > 0
        assert model.size_bytes() == model.num_parameters() * 4


class TestMPSN:
    def _encodings(self, batch=6, slots=2, width=9, seed=0):
        rng = np.random.default_rng(seed)
        encodings = Tensor(rng.normal(size=(batch, slots, width)))
        presence = np.ones((batch, slots))
        presence[:, 1] = rng.integers(0, 2, size=batch)
        return encodings, presence

    @pytest.mark.parametrize("kind", ["mlp", "rnn", "recursive"])
    def test_output_shape(self, kind):
        config = MPSNConfig(kind=kind, hidden_size=16, num_layers=2)
        mpsn = build_mpsn(9, 9, config, rng=np.random.default_rng(0))
        encodings, presence = self._encodings()
        assert mpsn(encodings, presence).shape == (6, 9)

    def test_factory_types(self):
        assert isinstance(build_mpsn(4, 4, MPSNConfig(kind="mlp")), MLPMPSN)
        assert isinstance(build_mpsn(4, 4, MPSNConfig(kind="rnn")), RNNMPSN)
        assert isinstance(build_mpsn(4, 4, MPSNConfig(kind="recursive")), RecursiveMPSN)

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            MPSNConfig(kind="transformer")

    def test_mlp_is_order_invariant(self):
        """The paper prefers the MLP MPSN because summing is order-irrelevant."""
        config = MPSNConfig(kind="mlp", hidden_size=16, num_layers=2)
        mpsn = build_mpsn(9, 9, config, rng=np.random.default_rng(0))
        encodings, _ = self._encodings(slots=2)
        presence = np.ones((6, 2))
        forward = mpsn(encodings, presence).numpy()
        swapped = Tensor(encodings.numpy()[:, ::-1, :].copy())
        backward = mpsn(swapped, presence).numpy()
        np.testing.assert_allclose(forward, backward, atol=1e-10)

    def test_absent_slots_do_not_change_output(self):
        config = MPSNConfig(kind="mlp", hidden_size=16, num_layers=2)
        mpsn = build_mpsn(9, 9, config, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        base = rng.normal(size=(4, 2, 9))
        modified = base.copy()
        modified[:, 1, :] = rng.normal(size=(4, 9))  # garbage in the absent slot
        presence = np.zeros((4, 2))
        presence[:, 0] = 1
        out_base = mpsn(Tensor(base), presence).numpy()
        out_modified = mpsn(Tensor(modified), presence).numpy()
        np.testing.assert_allclose(out_base, out_modified)

    def test_gradients_flow_through_mpsn(self):
        config = MPSNConfig(kind="mlp", hidden_size=8, num_layers=1)
        mpsn = build_mpsn(5, 5, config, rng=np.random.default_rng(0))
        encodings = Tensor(np.random.default_rng(2).normal(size=(3, 2, 5)))
        presence = np.ones((3, 2))
        mpsn(encodings, presence).sum().backward()
        assert all(parameter.grad is not None for parameter in mpsn.parameters())

    def test_merged_inference_matches_per_column(self):
        """The block-diagonal merged MLP must equal the per-column MPSNs."""
        config = MPSNConfig(kind="mlp", hidden_size=12, num_layers=2)
        rng = np.random.default_rng(3)
        widths = [7, 9, 5]
        mpsns = [build_mpsn(width, width, config, rng=rng) for width in widths]
        merged = MergedMLPInference(mpsns)
        batch, slots = 8, 2
        encodings = [rng.normal(size=(batch, slots, width)) for width in widths]
        presence = [np.ones((batch, slots)) for _ in widths]
        presence[1][:, 1] = 0
        merged_outputs = merged.forward(encodings, presence)
        for mpsn, encoding, pres, merged_output in zip(mpsns, encodings, presence,
                                                       merged_outputs):
            direct = mpsn(Tensor(encoding), pres).numpy()
            np.testing.assert_allclose(merged_output, direct, atol=1e-9)

    def test_merged_requires_mlp(self):
        config = MPSNConfig(kind="rnn")
        with pytest.raises(TypeError):
            MergedMLPInference([build_mpsn(4, 4, config)])

    def test_merged_requires_nonempty(self):
        with pytest.raises(ValueError):
            MergedMLPInference([])


class TestDuetEstimator:
    def test_estimates_are_deterministic(self, trained_model, toy_table):
        estimator = DuetEstimator(trained_model)
        query = Query.from_triples([("a", ">=", 3), ("b", "=", 1)])
        first = estimator.estimate(query)
        second = estimator.estimate(query)
        assert first == second
        assert estimator.is_deterministic

    def test_estimates_within_table_bounds(self, trained_model, toy_table):
        estimator = DuetEstimator(trained_model)
        workload = make_random_workload(toy_table, num_queries=50, seed=3)
        estimates = estimator.estimate_batch(workload.queries)
        assert (estimates >= 0).all()
        assert (estimates <= toy_table.num_rows).all()

    def test_unsatisfiable_query_estimates_near_zero(self, trained_model, toy_table):
        estimator = DuetEstimator(trained_model)
        # b = 99 does not exist in the domain.
        estimate = estimator.estimate(Query.from_triples([("a", "=", 2), ("b", "=", 99)]))
        assert estimate == pytest.approx(0.0, abs=1e-6)

    def test_breakdown_reports_phases(self, trained_model, toy_table):
        estimator = DuetEstimator(trained_model)
        workload = make_random_workload(toy_table, num_queries=10, seed=4)
        estimates, breakdown = estimator.estimate_batch_with_breakdown(workload.queries)
        assert estimates.shape == (10,)
        assert breakdown["encoding"] >= 0
        assert breakdown["inference"] >= 0

    def test_trained_model_beats_untrained_on_qerror(self, toy_table, small_config,
                                                     trained_model):
        workload = make_random_workload(toy_table, num_queries=100, seed=8)
        truth = np.maximum(workload.cardinalities, 1)

        def median_qerror(model):
            estimates = np.maximum(DuetEstimator(model).estimate_batch(workload.queries), 1)
            qerrors = np.maximum(estimates / truth, truth / estimates)
            return float(np.median(qerrors))

        untrained = median_qerror(DuetModel(toy_table, small_config))
        trained = median_qerror(trained_model)
        assert trained < untrained

    def test_single_column_accuracy_after_training(self, trained_model, toy_table):
        """Single-column range queries should be close to exact after training."""
        estimator = DuetEstimator(trained_model)
        column = toy_table.column("a")
        query = Query.from_triples([("a", "<=", column.value_of(4))])
        truth = cardinality(toy_table, query)
        estimate = estimator.estimate(query)
        qerror = max(estimate, truth) / max(min(estimate, truth), 1)
        assert qerror < 2.0


class TestDuetTrainer:
    def test_data_only_training_reduces_loss(self, toy_table):
        config = DuetConfig(hidden_sizes=(32,), epochs=3, batch_size=64,
                            expand_coefficient=2, lambda_query=0.0, seed=1)
        model = DuetModel(toy_table, config)
        trainer = DuetTrainer(model, toy_table, config=config)
        assert not trainer.hybrid
        history = trainer.train(epochs=3)
        assert history.data_losses[-1] < history.data_losses[0]
        assert all(stats.query_loss == 0.0 for stats in history.epochs)

    def test_hybrid_training_tracks_query_loss(self, toy_table, small_config):
        model = DuetModel(toy_table, small_config)
        workload = make_inworkload(toy_table, num_queries=80, seed=42)
        trainer = DuetTrainer(model, toy_table, workload, small_config)
        assert trainer.hybrid
        history = trainer.train(epochs=2)
        assert all(stats.query_loss > 0 for stats in history.epochs)
        assert all(stats.raw_qerror >= 1.0 for stats in history.epochs)

    def test_history_throughput_and_best_epoch(self, toy_table, small_config):
        model = DuetModel(toy_table, small_config)
        trainer = DuetTrainer(model, toy_table, config=small_config)
        evaluations = iter([5.0, 2.0, 3.0])
        history = trainer.train(epochs=3, evaluation_fn=lambda _model: next(evaluations))
        assert history.mean_throughput > 0
        assert history.best_epoch() == 1

    def test_best_epoch_requires_evaluations(self, toy_table, small_config):
        model = DuetModel(toy_table, small_config)
        trainer = DuetTrainer(model, toy_table, config=small_config)
        history = trainer.train(epochs=1)
        with pytest.raises(ValueError):
            history.best_epoch()

    def test_unlabeled_workload_is_labeled_automatically(self, toy_table, small_config):
        model = DuetModel(toy_table, small_config)
        workload = Workload("w", make_inworkload(toy_table, num_queries=20,
                                                 seed=1, label=False).queries)
        trainer = DuetTrainer(model, toy_table, workload, small_config)
        assert trainer.workload.is_labeled

    def test_finetune_on_queries_reduces_query_loss(self, toy_table, small_config):
        model = DuetModel(toy_table, small_config)
        workload = make_inworkload(toy_table, num_queries=60, seed=13)
        trainer = DuetTrainer(model, toy_table, config=small_config)
        trainer.train(epochs=1)
        losses = trainer.finetune_on_queries(workload, steps=30)
        assert np.mean(losses[-5:]) < np.mean(losses[:5])

    def test_multi_predicate_training_and_estimation(self, toy_table):
        config = DuetConfig(hidden_sizes=(32,), epochs=1, batch_size=64,
                            expand_coefficient=2, multi_predicate=True,
                            max_predicates_per_column=2,
                            mpsn=MPSNConfig(kind="mlp", hidden_size=16), seed=2)
        model = DuetModel(toy_table, config)
        workload = make_multi_predicate_workload(toy_table, num_queries=40, seed=3)
        trainer = DuetTrainer(model, toy_table, workload, config)
        history = trainer.train(epochs=1)
        assert history.data_losses[0] > 0
        estimator = DuetEstimator(model)
        query = Query.from_triples([("a", ">=", 2), ("a", "<=", 5), ("b", "=", 1)])
        estimate = estimator.estimate(query)
        assert 0 <= estimate <= toy_table.num_rows
