"""Concurrent refresh()/delete() vs estimate()/estimate_batch() under load.

The swap contract of the serving layer: requests racing a hot-swap never
fail, never see torn state (an estimate produced by half-old, half-new
model attributes), and the cache namespace always matches the served
``(model_version, data_version)`` identity whenever no swap is mid-flight.
Deletes extend the contract: tombstone bitmaps are immutable and replaced
atomically under the store lock, so no estimate is ever served against a
half-applied delete.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import DuetConfig, DuetModel, DuetTrainer, ServingConfig
from repro.data import ColumnStore, Table
from repro.serving import EstimationService, ModelRegistry
from repro.workload import make_random_workload

CONFIG = DuetConfig(hidden_sizes=(16, 16), epochs=1, batch_size=128,
                    expand_coefficient=1, lambda_query=0.0, seed=0)


@pytest.fixture()
def serving_stack(tmp_path):
    rng = np.random.default_rng(2)
    table = Table.from_dict("concurrent", {
        "a": rng.integers(0, 40, size=400),
        "b": rng.choice(["p", "q", "r", "s"], size=400),
    })
    store = ColumnStore.from_table(table)
    base = store.snapshot()
    model = DuetModel(base, CONFIG)
    DuetTrainer(model, base, config=CONFIG).train(1)
    registry = ModelRegistry(tmp_path / "registry")
    registry.save(model, dataset="concurrent")
    service = EstimationService.from_registry(
        registry, "concurrent", store=store,
        config=ServingConfig(max_wait_ms=0.2))
    workload = make_random_workload(base, num_queries=50, seed=7, label=False)
    yield service, store, workload
    service.close()


def _append_in_domain(store, count, seed):
    rng = np.random.default_rng(seed)
    snapshot = store.snapshot()
    return store.append({
        name: snapshot.column(name).distinct_values[
            rng.integers(0, snapshot.column(name).num_distinct, size=count)]
        for name in snapshot.column_names
    })


def _delete_random(store, count, seed):
    """Tombstone ``count`` random live rows (clamped to the live view)."""
    rng = np.random.default_rng(seed)
    live = store.num_rows
    count = min(count, max(live - 1, 0))
    if count == 0:
        return store.snapshot()
    return store.delete(rng.choice(live, size=count, replace=False))


class TestConcurrentRefresh:
    def test_no_torn_reads_across_repeated_swaps(self, serving_stack):
        """4 reader threads hammer the service while 3 refreshes swap."""
        service, store, workload = serving_stack
        stop = threading.Event()
        failures: list[BaseException] = []

        def reader(seed: int) -> None:
            rng = np.random.default_rng(seed)
            while not stop.is_set():
                try:
                    if rng.random() < 0.2:
                        batch = [workload.queries[int(index)] for index in
                                 rng.integers(0, len(workload), size=5)]
                        estimates = service.estimate_batch(batch)
                        assert np.isfinite(estimates).all()
                        assert (estimates >= 0.0).all()
                    else:
                        query = workload.queries[
                            int(rng.integers(0, len(workload)))]
                        estimate = service.estimate(query)
                        assert np.isfinite(estimate) and estimate >= 0.0
                except BaseException as error:  # noqa: BLE001
                    failures.append(error)

        threads = [threading.Thread(target=reader, args=(index,), daemon=True)
                   for index in range(4)]
        for thread in threads:
            thread.start()
        try:
            for round_seed in (31, 32, 33):
                _append_in_domain(store, 80, seed=round_seed)
                entry = service.refresh()
                assert entry is not None
                assert service.staleness() == 0
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=15.0)
        assert failures == []
        assert service.model_version == "v4"  # v1 + three refreshes

    def test_cache_namespace_tracks_served_identity(self, serving_stack):
        """A sampler thread checks the invariant while refreshes run.

        Under the refresh lock (i.e. whenever no swap is mid-flight) the key
        encoder's namespace must equal the served
        ``(dataset, model_version, data_version)`` triple — the property
        that makes a cache entry unservable after any swap.
        """
        service, store, workload = serving_stack
        stop = threading.Event()
        mismatches: list[tuple] = []
        samples = [0]

        def sampler() -> None:
            while not stop.is_set():
                with service._refresh_lock:
                    namespace = service._keys.namespace
                    expected = (service.dataset, service.model_version,
                                service.data_version)
                if namespace != expected:
                    mismatches.append((namespace, expected))
                samples[0] += 1

        thread = threading.Thread(target=sampler, daemon=True)
        thread.start()
        try:
            for round_seed in (41, 42):
                _append_in_domain(store, 80, seed=round_seed)
                service.refresh()
                service.estimate(workload.queries[0])
        finally:
            stop.set()
            thread.join(timeout=15.0)
        assert samples[0] > 0
        assert mismatches == []

    def test_swap_mid_request_never_caches_under_old_namespace(self, serving_stack):
        """A request that loses the race to a swap must not repopulate the
        flushed cache under its superseded key encoder."""
        service, store, workload = serving_stack
        query = workload.queries[0]
        stale_encoder = service._keys
        stale_key = stale_encoder.key(query)
        _append_in_domain(store, 80, seed=51)
        service.refresh()
        # Replay the racing request's tail exactly as estimate() runs it:
        # the key was computed from the pre-swap encoder, so the identity
        # re-check fails and the put is dropped.
        racing_estimate = 123.0
        if stale_key is not None and service._keys is stale_encoder:
            service.cache.put(stale_key, racing_estimate)
        assert service.cache.get(stale_key) is None
        # And fresh requests repopulate under the new namespace only.
        service.estimate(query)
        assert service.cache.get(service._keys.key(query)) is not None
        assert service.cache.get(stale_key) is None

    def test_threaded_deletes_with_estimates_and_refreshes(self, serving_stack):
        """Deletes, appends, estimate()/estimate_batch() and refresh() race.

        The delete contract under concurrency: tombstone bitmaps are
        immutable (a delete publishes replacement bitmaps under the store
        lock), so no estimate is ever computed against a half-applied
        delete — readers either see the snapshot from before the delete or
        the one from after, and every estimate stays finite and
        non-negative.  A sampler thread simultaneously checks the cache
        namespace invariant across the delete-triggered swaps.
        """
        service, store, workload = serving_stack
        stop = threading.Event()
        failures: list[BaseException] = []
        mismatches: list[tuple] = []
        samples = [0]

        def reader(seed: int) -> None:
            rng = np.random.default_rng(seed)
            while not stop.is_set():
                try:
                    if rng.random() < 0.3:
                        batch = [workload.queries[int(index)] for index in
                                 rng.integers(0, len(workload), size=4)]
                        estimates = service.estimate_batch(batch)
                        assert np.isfinite(estimates).all()
                        assert (estimates >= 0.0).all()
                    else:
                        query = workload.queries[
                            int(rng.integers(0, len(workload)))]
                        estimate = service.estimate(query)
                        assert np.isfinite(estimate) and estimate >= 0.0
                except BaseException as error:  # noqa: BLE001
                    failures.append(error)

        def mutator() -> None:
            seed = 100
            while not stop.is_set():
                try:
                    seed += 1
                    if seed % 3 == 0:
                        _append_in_domain(store, 30, seed=seed)
                    else:
                        _delete_random(store, 25, seed=seed)
                except BaseException as error:  # noqa: BLE001
                    failures.append(error)

        def sampler() -> None:
            while not stop.is_set():
                with service._refresh_lock:
                    namespace = service._keys.namespace
                    expected = (service.dataset, service.model_version,
                                service.data_version)
                if namespace != expected:
                    mismatches.append((namespace, expected))
                samples[0] += 1

        threads = [threading.Thread(target=reader, args=(index,), daemon=True)
                   for index in range(3)]
        threads.append(threading.Thread(target=mutator, daemon=True))
        threads.append(threading.Thread(target=sampler, daemon=True))
        for thread in threads:
            thread.start()
        try:
            refreshed = 0
            deadline = time.time() + 60.0
            while refreshed < 3 and time.time() < deadline:
                if service.staleness() == 0:
                    # The mutator hasn't churned yet; don't burn the loop on
                    # fast-path no-ops before its thread gets scheduled.
                    time.sleep(0.005)
                    continue
                if service.refresh() is not None:
                    refreshed += 1
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30.0)
        assert failures == []
        assert refreshed >= 3          # delete churn alone must trigger tunes
        assert samples[0] > 0
        assert mismatches == []
        # After quiescing the mutator, one more refresh settles staleness.
        service.refresh()
        assert service.staleness() == 0
        assert service.table.num_rows == store.num_rows

    def test_concurrent_refresh_calls_serialise(self, serving_stack):
        """Two simultaneous refresh() calls: one tunes, the other no-ops."""
        service, store, workload = serving_stack
        _append_in_domain(store, 80, seed=61)
        results = []
        barrier = threading.Barrier(2)

        def refresher() -> None:
            barrier.wait()
            results.append(service.refresh())

        threads = [threading.Thread(target=refresher, daemon=True)
                   for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        entries = [entry for entry in results if entry is not None]
        assert len(results) == 2
        # Exactly one thread performed the tune; the loser saw a fresh
        # store (fast path) or re-checked under the lock and no-opped.
        assert len(entries) == 1
        assert service.staleness() == 0
        assert service.model_version == entries[0].version
