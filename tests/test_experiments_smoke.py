"""Smoke tests for the experiment drivers at micro scale.

The benchmark suite runs the drivers at their realistic (smoke) scale; these
tests run them at a *micro* scale so that the experiment code paths are
exercised by ``pytest tests/`` in a few seconds.
"""

import numpy as np
import pytest

from repro.eval import experiments as E


@pytest.fixture(scope="module")
def micro():
    """Tiny experiment sizes: every driver finishes in a few seconds."""
    return E.SmokeScale(
        dataset_scale={"dmv": 0.0002, "kddcup98": 0.012, "census": 0.022},
        kdd_columns=6,
        num_test_queries=30,
        num_train_queries=40,
        epochs=1,
        hidden_sizes=(24,),
    )


class TestFigureDrivers:
    def test_figure3(self, micro):
        result = E.figure3_loss_mapping("census", micro, epochs=1)
        assert len(result.data_loss) == 1
        assert result.mapped_query_loss[0] == pytest.approx(
            np.log2(result.raw_qerror[0] + 1.0))
        assert "Figure 3" in result.render()

    def test_figure5(self, micro):
        result = E.figure5_lambda_study((1e-2, 1e-1), "census", micro)
        assert len(result.max_qerror) == 2
        assert result.best_lambda in (1e-2, 1e-1)

    def test_figure6(self, micro):
        result = E.figure6_scalability((2, 4), "kddcup98", queries_per_point=2,
                                       naru_samples=20, scale=micro)
        assert set(result.latencies_ms) == {"duet", "naru", "uae"}
        assert all(len(series) == 2 for series in result.latencies_ms.values())
        assert all(value > 0 for series in result.latencies_ms.values() for value in series)

    def test_figure6_rejects_too_many_columns(self, micro):
        with pytest.raises(ValueError):
            E.figure6_scalability((2, 400), "kddcup98", scale=micro)

    def test_figure7(self, micro):
        result = E.figure7_estimation_cost("census", micro, naru_samples=20)
        assert {"duet", "duet-d", "naru", "uae", "mscn", "deepdb"} <= set(result.per_query_ms)
        assert "Figure 7" in result.render()


class TestTableDrivers:
    def test_table1(self, micro):
        result = E.table1_mpsn_comparison(("mlp",), "census", micro)
        assert len(result.rows) == 1
        assert result.rows[0].name == "mlp"
        assert result.rows[0].max_qerror >= 1.0

    def test_table2_small_subset(self, micro):
        result = E.table2_accuracy("census", ("indep", "duet-d"), micro,
                                   naru_samples=20, epochs=1)
        assert set(result.in_workload) == {"indep", "duet-d"}
        assert result.sizes_mb["duet-d"] > 0
        assert "Table II" in result.render()

    def test_table2_unknown_estimator(self, micro):
        with pytest.raises(KeyError):
            E.table2_accuracy("census", ("nonexistent",), micro)

    def test_table3(self, micro):
        result = E.table3_training_throughput("census", micro, naru_samples=20)
        assert set(result.tuples_per_second) == {"naru", "uae", "duet-d", "duet"}
        # The UAE activation proxy must exceed Duet's: that is the paper's
        # memory argument and the invariant the Table III bench asserts.
        assert result.peak_activation_elements["uae"] > result.peak_activation_elements["duet"]

    def test_convergence_validates_kind(self, micro):
        with pytest.raises(ValueError):
            E.convergence_study("weird-workload", "census", scale=micro)


class TestAblationDrivers:
    def test_hybrid_ablation(self, micro):
        result = E.ablation_hybrid_training("census", micro)
        assert [row[0] for row in result.rows] == ["duet-d", "duet"]

    def test_expand_coefficient_ablation(self, micro):
        result = E.ablation_expand_coefficient("census", (1, 2), micro)
        assert [row[0] for row in result.rows] == [1, 2]

    def test_loss_mapping_ablation(self, micro):
        result = E.ablation_loss_mapping("census", micro)
        assert len(result.rows) == 2
        assert "Ablation" in result.render()
