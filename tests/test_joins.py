"""Tests for the join substrate and join-query estimation with Duet."""

import numpy as np
import pytest

from repro.core import DuetConfig, DuetEstimator, DuetModel, DuetTrainer
from repro.data import JoinSpec, Table, join_row_multiplicities, join_tables
from repro.workload import Query, cardinality, make_random_workload


@pytest.fixture(scope="module")
def orders_and_customers():
    rng = np.random.default_rng(0)
    customers = Table.from_dict("customers", {
        "customer_id": np.arange(50),
        "region": rng.integers(0, 5, size=50),
        "segment": rng.integers(0, 3, size=50),
    })
    orders = Table.from_dict("orders", {
        "order_id": np.arange(400),
        "customer_id": rng.integers(0, 50, size=400),
        "amount_bucket": rng.integers(0, 10, size=400),
        "status": rng.integers(0, 4, size=400),
    })
    return orders, customers


class TestJoinTables:
    def test_primary_foreign_key_join_size(self, orders_and_customers):
        orders, customers = orders_and_customers
        joined = join_tables(orders, customers, "customer_id", "customer_id")
        # Every order matches exactly one customer.
        assert joined.num_rows == orders.num_rows
        assert joined.num_columns == orders.num_columns + customers.num_columns

    def test_column_names_are_prefixed(self, orders_and_customers):
        orders, customers = orders_and_customers
        joined = join_tables(orders, customers, "customer_id", "customer_id")
        assert "orders.amount_bucket" in joined.column_names
        assert "customers.region" in joined.column_names

    def test_join_keys_agree_on_every_row(self, orders_and_customers):
        orders, customers = orders_and_customers
        joined = join_tables(orders, customers, "customer_id", "customer_id")
        left = joined.column("orders.customer_id")
        right = joined.column("customers.customer_id")
        left_values = left.distinct_values[left.codes]
        right_values = right.distinct_values[right.codes]
        np.testing.assert_array_equal(left_values, right_values)

    def test_join_matches_bruteforce_counts(self):
        left = Table.from_dict("l", {"k": [1, 1, 2, 3], "x": [10, 11, 12, 13]})
        right = Table.from_dict("r", {"k": [1, 2, 2, 5], "y": [7, 8, 9, 6]})
        joined = join_tables(left, right, "k", "k")
        # key 1: 2x1 matches; key 2: 1x2 matches; total 4 rows.
        assert joined.num_rows == 4

    def test_empty_join_rejected(self):
        left = Table.from_dict("l", {"k": [1, 2]})
        right = Table.from_dict("r", {"k": [3, 4]})
        with pytest.raises(ValueError):
            join_tables(left, right, "k", "k")

    def test_max_rows_sampling(self, orders_and_customers):
        orders, customers = orders_and_customers
        joined = join_tables(orders, customers, "customer_id", "customer_id",
                             max_rows=100, rng=np.random.default_rng(1))
        assert joined.num_rows == 100

    def test_multiplicities(self):
        left = Table.from_dict("l", {"k": [1, 2, 3]})
        right = Table.from_dict("r", {"k": [1, 1, 3]})
        np.testing.assert_array_equal(join_row_multiplicities(left, right, "k", "k"),
                                      [2, 0, 1])

    def test_join_spec_validation(self, orders_and_customers):
        orders, customers = orders_and_customers
        with pytest.raises(KeyError):
            JoinSpec(orders, customers, "nope", "customer_id")
        with pytest.raises(KeyError):
            JoinSpec(orders, customers, "customer_id", "nope")

    def test_join_spec_materialise(self, orders_and_customers):
        orders, customers = orders_and_customers
        spec = JoinSpec(orders, customers, "customer_id", "customer_id")
        joined = spec.materialise(name="orders_customers")
        assert joined.name == "orders_customers"


class TestJoinQueryEstimation:
    def test_duet_estimates_join_queries(self, orders_and_customers):
        """NeuroCard-style workflow: train Duet on the joined relation and
        estimate join-query cardinalities with predicates on both sides."""
        orders, customers = orders_and_customers
        joined = join_tables(orders, customers, "customer_id", "customer_id")
        config = DuetConfig(hidden_sizes=(32, 32), epochs=3, batch_size=128,
                            expand_coefficient=2, lambda_query=0.0, seed=0)
        model = DuetModel(joined, config)
        DuetTrainer(model, joined, config=config).train()
        estimator = DuetEstimator(model)

        query = Query.from_triples([
            ("customers.region", "=", 1),
            ("orders.amount_bucket", "<=", 4),
        ])
        truth = cardinality(joined, query)
        estimate = estimator.estimate(query)
        qerror = max(estimate, truth) / max(min(estimate, truth), 1.0)
        assert qerror < 5.0

    def test_workload_on_join_result(self, orders_and_customers):
        orders, customers = orders_and_customers
        joined = join_tables(orders, customers, "customer_id", "customer_id")
        workload = make_random_workload(joined, num_queries=30, seed=3)
        assert (workload.cardinalities >= 1).all()
        assert (workload.cardinalities <= joined.num_rows).all()
