"""Tests of the online estimation service (:mod:`repro.serving`).

Covers the satellite checklist: cache-key canonicalisation (predicate order,
operator aliases), micro-batch coalescing under concurrent threads, and the
registry save -> load -> identical-estimates round trip, plus service-level
end-to-end behaviour and stats.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import DuetConfig, DuetEstimator, DuetModel, ServingConfig
from repro.data import Table
from repro.eval import evaluate_service, run_load_test
from repro.serving import (
    EstimateCache,
    EstimationService,
    MicroBatcher,
    ModelRegistry,
    QueryKeyEncoder,
    TableSchema,
)
from repro.workload import Query, make_random_workload


@pytest.fixture(scope="module")
def table() -> Table:
    rng = np.random.default_rng(0)
    return Table.from_dict("tiny", {
        "age": rng.integers(18, 66, size=400),
        "city": rng.choice(["ams", "ber", "cdg", "dus"], size=400),
        "score": rng.integers(0, 10, size=400),
    })


@pytest.fixture(scope="module")
def estimator(table) -> DuetEstimator:
    # Untrained weights are fine: the serving layer only needs a
    # deterministic model, not an accurate one.
    return DuetEstimator(DuetModel(table, DuetConfig(hidden_sizes=(16, 16), seed=0)))


# ----------------------------------------------------------------------
# Cache keys
# ----------------------------------------------------------------------
class TestQueryKeyEncoder:
    def test_predicate_order_is_canonicalised(self, table):
        keys = QueryKeyEncoder(table)
        forward = Query.from_triples([("age", ">=", 30), ("score", "<=", 5)])
        backward = Query.from_triples([("score", "<=", 5), ("age", ">=", 30)])
        assert keys.key(forward) == keys.key(backward)

    def test_operator_aliases_share_a_key(self, table):
        keys = QueryKeyEncoder(table)
        # On an integer-coded domain, "> 29" and ">= 30" select the same codes.
        strict = Query.from_triples([("age", ">", 29)])
        inclusive = Query.from_triples([("age", ">=", 30)])
        assert keys.key(strict) == keys.key(inclusive)
        below = Query.from_triples([("age", "<", 30)])
        at_most = Query.from_triples([("age", "<=", 29)])
        assert keys.key(below) == keys.key(at_most)

    def test_distinct_queries_get_distinct_keys(self, table):
        keys = QueryKeyEncoder(table)
        assert (keys.key(Query.from_triples([("age", ">=", 30)]))
                != keys.key(Query.from_triples([("age", ">=", 31)])))
        assert (keys.key(Query.from_triples([("age", "=", 30)]))
                != keys.key(Query.from_triples([("score", "=", 3)])))

    def test_unconstraining_predicates_are_dropped(self, table):
        keys = QueryKeyEncoder(table)
        lowest = int(table.column("age").distinct_values.min())
        padded = Query.from_triples([("age", ">=", lowest), ("score", "=", 3)])
        bare = Query.from_triples([("score", "=", 3)])
        assert keys.key(padded) == keys.key(bare)

    def test_same_column_intervals_intersect(self, table):
        keys = QueryKeyEncoder(table)
        two_sided = Query.from_triples([("age", ">=", 30), ("age", "<=", 40)])
        reordered = Query.from_triples([("age", "<=", 40), ("age", ">=", 30)])
        assert keys.key(two_sided) == keys.key(reordered)
        assert keys.key(two_sided) != keys.key(Query.from_triples([("age", ">=", 30)]))


class TestEstimateCache:
    def test_lru_eviction(self):
        cache = EstimateCache(capacity=2)
        assert cache.get("a") is None
        cache.put("a", 1.0)
        cache.put("b", 2.0)
        assert cache.get("a") == 1.0       # refreshes "a"; "b" is now LRU
        cache.put("c", 3.0)                 # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1.0 and cache.get("c") == 3.0
        assert len(cache) == 2 and "b" not in cache

    def test_zero_capacity_disables_caching(self):
        cache = EstimateCache(capacity=0)
        cache.put("a", 1.0)
        assert cache.get("a") is None
        assert len(cache) == 0


# ----------------------------------------------------------------------
# Micro-batching
# ----------------------------------------------------------------------
class TestMicroBatcher:
    def test_coalesces_concurrent_requests(self, table):
        observed_batches = []

        def runner(queries):
            observed_batches.append(len(queries))
            time.sleep(0.005)  # keep a pass in flight so the queue fills
            return [float(query.predicates[0].value) for query in queries]

        queries = [Query.from_triples([("age", "=", value)]) for value in range(40)]
        with MicroBatcher(runner, max_batch_size=16, max_wait_ms=5.0) as batcher:
            barrier = threading.Barrier(8)
            results = {}

            def client(worker):
                barrier.wait()
                for query in queries[worker::8]:
                    results[query.predicates[0].value] = batcher.estimate(query)

            threads = [threading.Thread(target=client, args=(worker,))
                       for worker in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = batcher.stats()

        # Every request got its own answer back, in spite of coalescing.
        assert results == {value: float(value) for value in range(40)}
        assert stats.num_requests == 40
        assert stats.num_batches == len(observed_batches)
        assert stats.max_batch_size > 1          # coalescing actually happened
        assert stats.num_batches < 40            # fewer passes than requests
        assert max(observed_batches) <= 16       # cap respected

    def test_runner_errors_propagate_to_futures(self):
        def runner(queries):
            raise RuntimeError("model exploded")

        with MicroBatcher(runner, max_batch_size=4, max_wait_ms=0.0) as batcher:
            future = batcher.submit(Query.from_triples([("age", "=", 1)]))
            with pytest.raises(RuntimeError, match="model exploded"):
                future.result(timeout=5)

    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(lambda queries: [0.0] * len(queries))
        batcher.close()
        with pytest.raises(RuntimeError):
            batcher.submit(Query.from_triples([("age", "=", 1)]))

    def test_shape_mismatch_is_reported(self):
        with MicroBatcher(lambda queries: [1.0, 2.0, 3.0],
                          max_batch_size=1) as batcher:
            future = batcher.submit(Query.from_triples([("age", "=", 1)]))
            with pytest.raises(ValueError, match="runner returned shape"):
                future.result(timeout=5)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestModelRegistry:
    def test_save_load_identical_estimates(self, tmp_path, table, estimator):
        registry = ModelRegistry(tmp_path)
        registry.save(estimator.model, dataset="tiny")
        reloaded = registry.load_estimator("tiny")
        workload = make_random_workload(table, num_queries=60, seed=5)
        assert np.array_equal(estimator.estimate_batch(workload.queries),
                              reloaded.estimate_batch(workload.queries))

    def test_schema_table_refuses_data_access(self, tmp_path, table, estimator):
        registry = ModelRegistry(tmp_path)
        registry.save(estimator.model, dataset="tiny")
        reloaded = registry.load_estimator("tiny")
        workload = make_random_workload(table, num_queries=5, seed=59, label=False)
        # Ground truth against the schema-only table must fail loudly at
        # every entry point, not crash with a broadcast error or mislabel.
        with pytest.raises(ValueError, match="schema-only stand-in"):
            workload.label(reloaded.table)
        with pytest.raises(RuntimeError, match="carries no tuples"):
            reloaded.table.code_matrix()
        with pytest.raises(RuntimeError, match="carries no tuples"):
            reloaded.table.sample_rows(3)

    def test_schema_table_preserves_domains_and_row_count(self, tmp_path, table):
        schema = TableSchema.from_table(table)
        path = schema.save(tmp_path / "schema")
        assert path.exists() and path.name.endswith(".npz")
        rebuilt = TableSchema.load(path).to_table()
        assert rebuilt.num_rows == table.num_rows
        assert rebuilt.column_names == table.column_names
        for original, restored in zip(table.columns, rebuilt.columns):
            assert np.array_equal(original.distinct_values, restored.distinct_values)

    def test_versioning_and_manifest(self, tmp_path, estimator):
        registry = ModelRegistry(tmp_path)
        first = registry.save(estimator.model, dataset="tiny",
                              metadata={"note": "first"})
        second = registry.save(estimator.model, dataset="tiny")
        assert (first.version, second.version) == ("v1", "v2")
        assert registry.versions("tiny") == ["v1", "v2"]
        assert registry.latest_version("tiny") == "v2"
        assert registry.entry("tiny", "v1").metadata == {"note": "first"}
        assert "tiny" in registry and "other" not in registry
        pinned = registry.save(estimator.model, dataset="tiny", version="golden")
        assert registry.latest_version("tiny") == "golden"
        assert pinned.num_parameters == estimator.model.num_parameters()

    def test_unknown_entries_raise(self, tmp_path, estimator):
        registry = ModelRegistry(tmp_path)
        with pytest.raises(KeyError):
            registry.latest_version("tiny")
        registry.save(estimator.model, dataset="tiny")
        with pytest.raises(KeyError):
            registry.entry("tiny", "v9")


# ----------------------------------------------------------------------
# Service end-to-end
# ----------------------------------------------------------------------
class TestEstimationService:
    def test_concurrent_estimates_match_the_estimator(self, table, estimator):
        workload = make_random_workload(table, num_queries=64, seed=11)
        expected = estimator.estimate_batch(workload.queries)
        with EstimationService(estimator, ServingConfig(max_wait_ms=1.0)) as service:
            results = np.empty(len(workload))

            def client(indices):
                for index in indices:
                    results[index] = service.estimate(workload.queries[index])

            threads = [threading.Thread(target=client,
                                        args=(range(start, len(workload), 4),))
                       for start in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        # Micro-batches group queries differently than the reference batch,
        # which perturbs BLAS summation order: equality up to float noise.
        np.testing.assert_allclose(results, expected, rtol=1e-9)

    def test_cache_hits_skip_the_model(self, table, estimator):
        query = Query.from_triples([("age", ">=", 30)])
        with EstimationService(estimator, ServingConfig()) as service:
            first = service.estimate(query)
            passes_after_first = service.snapshot().num_batches
            second = service.estimate(query)
            snapshot = service.snapshot()
        assert first == second
        assert snapshot.num_batches == passes_after_first  # no extra forward pass
        assert snapshot.cache_hits == 1 and snapshot.cache_misses == 1

    def test_naive_mode_runs_one_pass_per_request(self, table, estimator):
        workload = make_random_workload(table, num_queries=10, seed=23)
        with EstimationService(
                estimator,
                ServingConfig(micro_batching=False, cache_capacity=0)) as service:
            for query in workload.queries:
                service.estimate(query)
            snapshot = service.snapshot()
        assert snapshot.num_batches == len(workload)
        assert snapshot.mean_batch_size == 1.0

    def test_estimate_batch_uses_cache(self, table, estimator):
        workload = make_random_workload(table, num_queries=20, seed=29)
        with EstimationService(estimator, ServingConfig()) as service:
            first = service.estimate_batch(workload.queries)
            passes = service.snapshot().num_batches
            second = service.estimate_batch(workload.queries)
            assert service.snapshot().num_batches == passes  # all cached
        assert np.array_equal(first, second)

    def test_evaluate_service_reports_load_and_accuracy(self, table, estimator):
        workload = make_random_workload(table, num_queries=30, seed=41)
        with EstimationService(estimator, ServingConfig(max_wait_ms=0.5)) as service:
            result = evaluate_service(service, workload, concurrency=4,
                                      num_requests=200, table=table)
        assert result.report.num_requests == 200
        assert result.report.errors == 0
        assert result.report.qps > 0
        assert result.summary.count == len(workload)
        assert result.report.p50_ms <= result.report.p99_ms
        row = result.as_table_row()
        assert row[0] == estimator.name

    def test_evaluate_service_rejects_schema_only_labeling(self, tmp_path, table,
                                                           estimator):
        registry = ModelRegistry(tmp_path)
        registry.save(estimator.model, dataset="tiny")
        unlabeled = make_random_workload(table, num_queries=10, seed=53, label=False)
        with EstimationService.from_registry(registry, "tiny") as service:
            # The service's own table is a data-less schema stand-in: asking
            # it to label ground truth must fail loudly, not mislabel.
            with pytest.raises(ValueError, match="schema stand-in"):
                evaluate_service(service, unlabeled, concurrency=2, num_requests=20)
            # Passing the data table (or a labelled workload) works.
            result = evaluate_service(service, unlabeled, concurrency=2,
                                      num_requests=20, table=table)
        assert result.summary.count == len(unlabeled)

    def test_from_registry_round_trip(self, tmp_path, table, estimator):
        registry = ModelRegistry(tmp_path)
        registry.save(estimator.model, dataset="tiny")
        workload = make_random_workload(table, num_queries=25, seed=47)
        with EstimationService.from_registry(registry, "tiny") as service:
            report = run_load_test(service, workload, concurrency=4,
                                   num_requests=100, seed=1)
            served = service.estimate_batch(workload.queries)
        assert report.errors == 0
        # Some entries were cached during the load test under different
        # batch compositions, so compare up to float noise here; the strict
        # bit-for-bit check lives in TestModelRegistry.
        np.testing.assert_allclose(served, estimator.estimate_batch(workload.queries),
                                   rtol=1e-9)


# ----------------------------------------------------------------------
# Registry retention
# ----------------------------------------------------------------------
class TestRegistryPrune:
    def test_prunes_to_newest_versions(self, tmp_path, estimator):
        registry = ModelRegistry(tmp_path)
        for _ in range(5):
            registry.save(estimator.model, dataset="tiny")
        removed = registry.prune("tiny", keep=2)
        assert removed == ["v3", "v2", "v1"]
        assert registry.versions("tiny") == ["v4", "v5"]
        assert registry.latest_version("tiny") == "v5"
        for version in removed:
            assert not (tmp_path / "tiny" / version).exists()
        # Survivors still load bit-for-bit.
        registry.load_estimator("tiny", "v4")

    def test_never_deletes_latest_even_with_keep_one(self, tmp_path, estimator):
        registry = ModelRegistry(tmp_path)
        registry.save(estimator.model, dataset="tiny")
        registry.save(estimator.model, dataset="tiny")
        registry.prune("tiny", keep=1)
        assert registry.versions("tiny") == ["v2"]
        assert registry.latest_version("tiny") == "v2"

    def test_protect_keeps_the_served_version(self, tmp_path, estimator):
        registry = ModelRegistry(tmp_path)
        for _ in range(4):
            registry.save(estimator.model, dataset="tiny")
        removed = registry.prune("tiny", keep=1, protect=("v2",))
        assert "v2" not in removed
        assert registry.versions("tiny") == ["v2", "v4"]
        # Unknown protected names are ignored rather than invented.
        assert registry.prune("tiny", keep=1, protect=("v99",)) == ["v2"]

    def test_prune_is_a_noop_when_nothing_to_remove(self, tmp_path, estimator):
        registry = ModelRegistry(tmp_path)
        registry.save(estimator.model, dataset="tiny")
        assert registry.prune("tiny", keep=3) == []
        assert registry.prune("unknown-dataset", keep=1) == []

    def test_prune_rejects_keep_below_one(self, tmp_path, estimator):
        registry = ModelRegistry(tmp_path)
        registry.save(estimator.model, dataset="tiny")
        with pytest.raises(ValueError, match="at least one"):
            registry.prune("tiny", keep=0)

    def test_prune_refuses_inconsistent_manifest(self, tmp_path, estimator):
        registry = ModelRegistry(tmp_path)
        registry.save(estimator.model, dataset="tiny")
        latest = registry.save(estimator.model, dataset="tiny")
        latest.model_path.unlink()  # manifest now lies about v2
        with pytest.raises(RuntimeError, match="refusing to prune"):
            registry.prune("tiny", keep=1)
        # Nothing was deleted by the aborted prune.
        assert registry.versions("tiny") == ["v1", "v2"]
        assert (tmp_path / "tiny" / "v1").exists()
