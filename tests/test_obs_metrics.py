"""Tests of the metrics substrate (:mod:`repro.obs.metrics`).

The registry is shared by every plane of the system, so the contract is
exercised hard: exact totals under an 8-thread hammer, get-or-create
conflict detection, in-place reset that keeps bound children valid, and —
line by line — that the Prometheus text exposition and the JSON snapshot
carry identical numbers (one source of truth, two renderings).
"""

import json
import math
import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    parse_exposition,
)


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
class TestCounter:
    def test_inc_and_value(self):
        counter = MetricsRegistry().counter("repro_things_total", "Things.")
        cell = counter.labels()
        cell.inc()
        cell.inc(2.5)
        assert cell.value == 3.5
        assert counter.total() == 3.5

    def test_labeled_children_are_independent(self):
        counter = MetricsRegistry().counter("repro_requests_total",
                                            labels=("cache",))
        counter.inc(cache="hit")
        counter.inc(3, cache="miss")
        assert counter.value(cache="hit") == 1.0
        assert counter.value(cache="miss") == 3.0
        assert counter.value(cache="never") == 0.0
        assert counter.total() == 4.0

    def test_bound_cell_shares_state_with_keyword_form(self):
        counter = MetricsRegistry().counter("repro_requests_total",
                                            labels=("cache",))
        bound = counter.labels(cache="hit")
        counter.inc(cache="hit")
        bound.inc()
        assert bound.value == 2.0 and counter.value(cache="hit") == 2.0

    def test_counters_only_go_up(self):
        counter = MetricsRegistry().counter("repro_things_total")
        with pytest.raises(ValueError):
            counter.labels().inc(-1)

    def test_wrong_labels_rejected(self):
        counter = MetricsRegistry().counter("repro_requests_total",
                                            labels=("cache",))
        with pytest.raises(ValueError):
            counter.inc(color="red")
        with pytest.raises(ValueError):
            counter.inc()  # missing the declared label


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("repro_depth")
        cell = gauge.labels()
        cell.set(10)
        cell.inc(5)
        cell.dec(2)
        assert cell.value == 13.0

    def test_callback_gauge_evaluates_at_read(self):
        box = {"value": 1.0}
        gauge = MetricsRegistry().gauge("repro_live", fn=lambda: box["value"])
        assert gauge.value() == 1.0
        box["value"] = 7.0
        assert gauge.value() == 7.0

    def test_callback_errors_read_as_nan_not_raise(self):
        def explode():
            raise RuntimeError("collection-time failure")

        gauge = MetricsRegistry().gauge("repro_flaky", fn=explode)
        assert math.isnan(gauge.value())


class TestHistogram:
    def test_bucketing_is_cumulative_le(self):
        histogram = MetricsRegistry().histogram(
            "repro_latency_seconds", buckets=(0.001, 0.01, 0.1))
        cell = histogram.labels()
        for value in (0.0005, 0.001, 0.05, 5.0):  # le is inclusive
            cell.observe(value)
        counts, total, count = cell.state()
        assert counts == [2, 0, 1, 1]  # raw per-bucket, +Inf overflow last
        assert count == 4 and total == pytest.approx(5.0515)

    def test_buckets_must_increase(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("repro_bad_seconds", buckets=(0.1, 0.1))
        with pytest.raises(ValueError):
            registry.histogram("repro_empty_seconds", buckets=())


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_things_total", "Things.")
        second = registry.counter("repro_things_total")
        assert first is second

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_things_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_things_total")

    def test_label_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_requests_total", labels=("cache",))
        with pytest.raises(ValueError, match="labels"):
            registry.counter("repro_requests_total", labels=("mode",))

    def test_bucket_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("repro_latency_seconds", buckets=(0.1, 1.0))
        with pytest.raises(ValueError, match="buckets"):
            registry.histogram("repro_latency_seconds", buckets=(0.5, 1.0))
        # Re-registering without explicit buckets keeps the original ones.
        assert registry.histogram("repro_latency_seconds",
                                  buckets=(0.1, 1.0)).buckets == (0.1, 1.0)

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("9starts_with_digit")
        with pytest.raises(ValueError):
            registry.counter("repro_ok_total", labels=("bad-label",))

    def test_reset_zeroes_in_place_keeping_bound_cells(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_requests_total", labels=("cache",))
        bound = counter.labels(cache="hit")
        bound.inc(5)
        counter._reset()
        assert bound.value == 0.0
        bound.inc()  # the pre-reset binding still feeds the instrument
        assert counter.value(cache="hit") == 1.0


# ----------------------------------------------------------------------
# Concurrency: exact totals under contention
# ----------------------------------------------------------------------
class TestConcurrency:
    THREADS = 8
    PER_THREAD = 5_000

    def test_hammered_counter_loses_nothing(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_requests_total", labels=("cache",))
        barrier = threading.Barrier(self.THREADS)

        def hammer(index: int) -> None:
            # Half the threads bind once, half go through the keyword path.
            bound = counter.labels(cache="hit") if index % 2 == 0 else None
            barrier.wait()
            for _ in range(self.PER_THREAD):
                if bound is not None:
                    bound.inc()
                else:
                    counter.inc(cache="miss")

        threads = [threading.Thread(target=hammer, args=(index,))
                   for index in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        expected_each = (self.THREADS // 2) * self.PER_THREAD
        assert counter.value(cache="hit") == expected_each
        assert counter.value(cache="miss") == expected_each
        assert counter.total() == self.THREADS * self.PER_THREAD

    def test_hammered_histogram_keeps_exact_count_and_sum(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_latency_seconds",
                                       buckets=(0.25, 0.75))
        cell = histogram.labels()
        barrier = threading.Barrier(self.THREADS)

        def hammer() -> None:
            barrier.wait()
            for index in range(self.PER_THREAD):
                cell.observe(0.5 if index % 2 == 0 else 1.0)

        threads = [threading.Thread(target=hammer)
                   for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        counts, total, count = cell.state()
        expected = self.THREADS * self.PER_THREAD
        assert count == expected
        assert counts == [0, expected // 2, expected // 2]
        assert total == pytest.approx(expected * 0.75)

    def test_concurrent_get_or_create_yields_one_instrument(self):
        registry = MetricsRegistry()
        results = [None] * self.THREADS
        barrier = threading.Barrier(self.THREADS)

        def create(index: int) -> None:
            barrier.wait()
            results[index] = registry.counter("repro_shared_total")

        threads = [threading.Thread(target=create, args=(index,))
                   for index in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(result is results[0] for result in results)


# ----------------------------------------------------------------------
# Exposition <-> snapshot parity
# ----------------------------------------------------------------------
def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    requests = registry.counter("repro_requests_total", "Requests served.",
                                labels=("cache",))
    requests.inc(3, cache="hit")
    requests.inc(cache="miss")
    registry.gauge("repro_depth", "Queue depth.").labels().set(4.25)
    registry.gauge("repro_live", "Callback.", fn=lambda: 2.5)
    latency = registry.histogram("repro_latency_seconds", "Latency.",
                                 buckets=(0.001, 0.01, 0.1))
    for value in (0.0004, 0.002, 0.002, 0.05, 3.0):
        latency.observe(value)
    return registry


class TestExposition:
    def test_text_format_shape(self):
        text = _populated_registry().exposition()
        assert "# HELP repro_requests_total Requests served." in text
        assert "# TYPE repro_requests_total counter" in text
        assert '\nrepro_requests_total{cache="hit"} 3.0\n' in text
        assert "# TYPE repro_latency_seconds histogram" in text
        assert 'repro_latency_seconds_bucket{le="+Inf"} 5' in text
        assert text.endswith("\n")

    def test_every_exposition_line_matches_the_json_snapshot(self):
        registry = _populated_registry()
        snapshot = json.loads(json.dumps(registry.snapshot()))  # JSON-safe
        parsed = parse_exposition(registry.exposition())
        assert parsed  # non-empty

        matched = 0
        for name, entry in snapshot.items():
            for sample in entry["samples"]:
                labels = tuple(sorted(
                    (key, str(value))
                    for key, value in sample["labels"].items()))
                if entry["type"] == "histogram":
                    for bound, cumulative in sample["buckets"]:
                        le = "+Inf" if bound == "+Inf" else repr(float(bound))
                        key = (f"{name}_bucket",
                               tuple(sorted(labels + (("le", le),))))
                        assert parsed[key] == cumulative
                        matched += 1
                    assert parsed[(f"{name}_sum", labels)] == sample["sum"]
                    assert parsed[(f"{name}_count", labels)] == sample["count"]
                    matched += 2
                else:
                    assert parsed[(name, labels)] == sample["value"]
                    matched += 1
        # Both renderings carry exactly the same series, nothing extra.
        assert matched == len(parsed)

    def test_label_values_are_escaped_and_round_trip(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_odd_total", labels=("detail",))
        nasty = 'quote " backslash \\ newline \n end'
        counter.inc(detail=nasty)
        parsed = parse_exposition(registry.exposition())
        assert parsed[("repro_odd_total",
                       (("detail", nasty),))] == 1.0

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
        assert len(set(DEFAULT_LATENCY_BUCKETS)) == len(DEFAULT_LATENCY_BUCKETS)
