"""Tests for predicate encoding, query canonicalisation, and Algorithm 1."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DuetConfig, QueryCodec, VirtualTableSampler, binary_width
from repro.core.encoding import ColumnPredicateEncoder, resolve_value_strategy
from repro.data import Table, make_census
from repro.workload import Operator, Query, cardinality


@pytest.fixture(scope="module")
def toy_table():
    return Table.from_dict("toy", {
        "a": [0, 1, 2, 3, 4, 5, 6, 7] * 4,
        "b": ["p", "q", "r", "p", "q", "r", "p", "q"] * 4,
        "c": list(range(16)) * 2,
    })


class TestBinaryWidth:
    @pytest.mark.parametrize("ndv,width", [(1, 1), (2, 1), (3, 2), (4, 2), (5, 3),
                                           (256, 8), (257, 9), (2774, 12)])
    def test_widths(self, ndv, width):
        assert binary_width(ndv) == width


class TestStrategyResolution:
    def test_small_domain_keeps_configured_strategy(self):
        config = DuetConfig(value_encoding="onehot", embedding_threshold=100)
        assert resolve_value_strategy(50, config) == "onehot"

    def test_large_domain_falls_back_to_embedding(self):
        config = DuetConfig(value_encoding="binary", embedding_threshold=100)
        assert resolve_value_strategy(101, config) == "embedding"

    def test_explicit_embedding(self):
        config = DuetConfig(value_encoding="embedding")
        assert resolve_value_strategy(5, config) == "embedding"

    def test_invalid_encoding_rejected(self):
        with pytest.raises(ValueError):
            DuetConfig(value_encoding="hex")


class TestColumnPredicateEncoder:
    def test_binary_encoding_bits(self):
        encoder = ColumnPredicateEncoder(0, 8, DuetConfig(value_encoding="binary"))
        assert encoder.value_width == 3
        features = encoder.encode_value_features(np.array([5]))
        np.testing.assert_array_equal(features, [[1, 0, 1]])  # 5 = 0b101, LSB first

    def test_onehot_encoding(self):
        encoder = ColumnPredicateEncoder(0, 4, DuetConfig(value_encoding="onehot"))
        features = encoder.encode_value_features(np.array([2]))
        np.testing.assert_array_equal(features, [[0, 0, 1, 0]])

    def test_wildcard_encodes_to_zeros(self):
        encoder = ColumnPredicateEncoder(0, 8, DuetConfig())
        encoded = encoder.encode(np.array([-1]), np.array([-1]))
        np.testing.assert_array_equal(encoded, np.zeros((1, encoder.predicate_width)))

    def test_presence_bit_disambiguates_code_zero(self):
        """Code 0 with a predicate must differ from the wildcard encoding."""
        encoder = ColumnPredicateEncoder(0, 8, DuetConfig())
        with_predicate = encoder.encode(np.array([0]), np.array([Operator.EQ.index]))
        wildcard = encoder.encode(np.array([-1]), np.array([-1]))
        assert not np.array_equal(with_predicate, wildcard)

    def test_operator_one_hot(self):
        encoder = ColumnPredicateEncoder(0, 8, DuetConfig())
        features = encoder.encode_operator_features(np.array([Operator.GE.index]))
        assert features[0, 0] == 1  # presence
        assert features[0, 1 + Operator.GE.index] == 1
        assert features.sum() == 2

    def test_embedding_column_rejects_static_value_encoding(self):
        encoder = ColumnPredicateEncoder(0, 10_000, DuetConfig(embedding_threshold=100))
        assert encoder.needs_embedding
        with pytest.raises(RuntimeError):
            encoder.encode_value_features(np.array([3]))

    def test_predicate_width(self):
        config = DuetConfig(value_encoding="binary")
        encoder = ColumnPredicateEncoder(0, 8, config)
        assert encoder.predicate_width == 6 + 3


class TestQueryCodec:
    def test_arrays_shape(self, toy_table):
        codec = QueryCodec(toy_table, DuetConfig())
        queries = [Query.from_triples([("a", ">=", 3)]),
                   Query.from_triples([("b", "=", "q"), ("c", "<", 5)])]
        values, ops = codec.queries_to_code_arrays(queries)
        assert values.shape == (2, 3, 1)
        assert ops.shape == (2, 3, 1)

    def test_unconstrained_columns_are_wildcards(self, toy_table):
        codec = QueryCodec(toy_table, DuetConfig())
        values, ops = codec.queries_to_code_arrays([Query.from_triples([("a", ">=", 3)])])
        assert ops[0, 1, 0] == -1 and ops[0, 2, 0] == -1
        assert values[0, 1, 0] == -1

    def test_canonical_equality(self, toy_table):
        codec = QueryCodec(toy_table, DuetConfig())
        canonical = codec.canonicalize(Query.from_triples([("a", "=", 3)]).predicates[0])
        assert canonical.op_index == Operator.EQ.index
        assert canonical.code == 3

    def test_canonical_range_with_absent_literal(self):
        table = Table.from_dict("t", {"a": [10, 20, 40, 50]})
        codec = QueryCodec(table, DuetConfig())
        canonical = codec.canonicalize(Query.from_triples([("a", ">", 30)]).predicates[0])
        # "> 30" selects codes {2, 3}; canonical form is ">= code 2".
        assert canonical.op_index == Operator.GE.index
        assert canonical.code == 2

    def test_non_selective_predicate_becomes_wildcard(self, toy_table):
        codec = QueryCodec(toy_table, DuetConfig())
        canonical = codec.canonicalize(Query.from_triples([("a", ">=", 0)]).predicates[0])
        assert canonical is None

    def test_unsatisfiable_predicate_kept_with_empty_mask(self, toy_table):
        codec = QueryCodec(toy_table, DuetConfig())
        query = Query.from_triples([("b", "=", "zzz")])
        canonical = codec.canonicalize(query.predicates[0])
        assert canonical is not None
        masks = codec.zero_out_masks([query])
        assert masks[1][0].sum() == 0

    def test_zero_out_masks_match_executor_semantics(self, toy_table):
        codec = QueryCodec(toy_table, DuetConfig())
        query = Query.from_triples([("a", ">=", 2), ("a", "<=", 5)])
        # Multi-predicate masks require multi_predicate mode for the arrays,
        # but the zero-out masks themselves are always defined.
        masks = codec.zero_out_masks([query])
        np.testing.assert_array_equal(masks[0][0], [0, 0, 1, 1, 1, 1, 0, 0])

    def test_too_many_predicates_rejected_in_single_mode(self, toy_table):
        codec = QueryCodec(toy_table, DuetConfig(multi_predicate=False))
        query = Query.from_triples([("a", ">=", 2), ("a", "<=", 5)])
        with pytest.raises(ValueError):
            codec.queries_to_code_arrays([query])

    def test_multi_predicate_mode_accepts_two_per_column(self, toy_table):
        codec = QueryCodec(toy_table, DuetConfig(multi_predicate=True,
                                                 max_predicates_per_column=2))
        query = Query.from_triples([("a", ">=", 2), ("a", "<=", 5)])
        values, ops = codec.queries_to_code_arrays([query])
        assert values.shape == (1, 3, 2)
        assert (ops[0, 0] >= 0).sum() == 2

    def test_unconstrained_mask_is_none_sentinel(self, toy_table):
        """Columns no query constrains use the None sentinel (factor == 1)
        instead of a dense all-ones array."""
        codec = QueryCodec(toy_table, DuetConfig())
        masks = codec.zero_out_masks([Query.from_triples([("a", "=", 1)])])
        assert masks[1] is None
        assert masks[2] is None
        np.testing.assert_array_equal(masks[0].shape,
                                      (1, toy_table.column("a").num_distinct))


class TestVirtualTableSampler:
    def _sampler(self, config=None, cards=(8, 3, 16)):
        return VirtualTableSampler(list(cards), config or DuetConfig(), seed=0)

    def test_batch_shapes(self):
        config = DuetConfig(expand_coefficient=4)
        sampler = self._sampler(config)
        tuples = np.random.default_rng(0).integers(0, 3, size=(10, 3))
        tuples[:, 0] = np.random.default_rng(1).integers(0, 8, size=10)
        tuples[:, 2] = np.random.default_rng(2).integers(0, 16, size=10)
        batch = sampler.sample_batch(tuples)
        assert batch.labels.shape == (40, 3)
        assert batch.values.shape == (40, 3, 1)
        assert batch.ops.shape == (40, 3, 1)

    def test_anchor_satisfies_every_sampled_predicate(self):
        """The core invariant of Algorithm 1."""
        sampler = self._sampler()
        rng = np.random.default_rng(3)
        tuples = np.stack([rng.integers(0, 8, 200), rng.integers(0, 3, 200),
                           rng.integers(0, 16, 200)], axis=1)
        batch = sampler.sample_batch(tuples)
        assert sampler.verify_batch(batch)

    def test_wildcards_present_when_configured(self):
        sampler = self._sampler(DuetConfig(wildcard_probability=0.3))
        tuples = np.zeros((100, 3), dtype=np.int64)
        batch = sampler.sample_batch(tuples)
        assert (batch.ops == -1).any()

    def test_no_wildcards_when_probability_zero(self):
        sampler = self._sampler(DuetConfig(wildcard_probability=0.0))
        rng = np.random.default_rng(4)
        tuples = np.stack([rng.integers(1, 7, 100), rng.integers(1, 2, 100),
                           rng.integers(1, 15, 100)], axis=1)
        batch = sampler.sample_batch(tuples)
        # Anchors away from the domain edges make every operator feasible.
        assert (batch.ops[:, 0, 0] >= 0).all()
        assert (batch.ops[:, 2, 0] >= 0).all()

    def test_all_operators_get_sampled(self):
        sampler = self._sampler()
        rng = np.random.default_rng(5)
        tuples = np.stack([rng.integers(0, 8, 500), rng.integers(0, 3, 500),
                           rng.integers(0, 16, 500)], axis=1)
        batch = sampler.sample_batch(tuples)
        seen = set(np.unique(batch.ops))
        assert {0, 1, 2, 3, 4} <= seen

    def test_multi_predicate_slots(self):
        config = DuetConfig(multi_predicate=True, max_predicates_per_column=2)
        sampler = self._sampler(config)
        rng = np.random.default_rng(6)
        tuples = np.stack([rng.integers(0, 8, 100), rng.integers(0, 3, 100),
                           rng.integers(0, 16, 100)], axis=1)
        batch = sampler.sample_batch(tuples)
        assert batch.values.shape[2] == 2
        assert (batch.ops[:, :, 1] >= 0).any()
        assert sampler.verify_batch(batch)

    def test_invalid_tuple_shape(self):
        sampler = self._sampler()
        with pytest.raises(ValueError):
            sampler.sample_batch(np.zeros((5, 2), dtype=np.int64))

    def test_invalid_cardinalities(self):
        with pytest.raises(ValueError):
            VirtualTableSampler([4, 0], DuetConfig())

    @given(st.integers(2, 30), st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_sampled_literals_stay_in_domain(self, ndv, mu):
        config = DuetConfig(expand_coefficient=mu)
        sampler = VirtualTableSampler([ndv], config, seed=1)
        rng = np.random.default_rng(0)
        tuples = rng.integers(0, ndv, size=(40, 1))
        batch = sampler.sample_batch(tuples)
        present = batch.values[batch.values >= 0]
        assert present.size == 0 or (present < ndv).all()
        assert sampler.verify_batch(batch)


class TestCodecAgainstExecutor:
    def test_masks_reproduce_true_cardinality_when_applied_to_frequencies(self):
        """Applying zero-out masks to exact per-column frequencies must equal
        the independence-assumption estimate, which for single-column queries
        is the exact answer."""
        table = make_census(scale=0.05, seed=11)
        codec = QueryCodec(table, DuetConfig())
        column = table.column("age")
        value = column.value_of(min(30, column.num_distinct - 1))
        query = Query.from_triples([("age", "<=", value)])
        masks = codec.zero_out_masks([query])
        frequencies = column.frequencies()
        estimate = (frequencies * masks[table.column_index("age")][0]).sum() * table.num_rows
        assert estimate == pytest.approx(cardinality(table, query))
