"""Compiled-vs-tape equivalence: the lowered plans must reproduce the
autograd path across every model configuration, within float64 round-off.

The tape path is the equivalence oracle (acceptance bound: 1e-6 relative in
float64; measured agreement is ~1e-15).  float32 plans get a looser, still
tight, bound.  Also covers compile-option persistence through the registry
and the serving layer's compiled runner.
"""

import numpy as np
import pytest

from repro.core import (
    DuetConfig,
    DuetEstimator,
    DuetModel,
    MPSNConfig,
    MergedMLPInference,
    ServingConfig,
    build_mpsn,
)
from repro.data import make_census
from repro.nn import PlanOptions, Tensor
from repro.serving import EstimationService, ModelRegistry
from repro.workload import make_multi_predicate_workload, make_random_workload

RELATIVE_TOLERANCE = 1e-6  # acceptance bound; observed agreement is ~1e-15


@pytest.fixture(scope="module")
def table():
    return make_census(scale=0.04, seed=0)


def _workload(table, config, num_queries=80, seed=3):
    if config.multi_predicate:
        return make_multi_predicate_workload(table, num_queries=num_queries, seed=seed)
    return make_random_workload(table, num_queries=num_queries, seed=seed)


CONFIGS = {
    "plain": DuetConfig(hidden_sizes=(48, 48), seed=0),
    "residual": DuetConfig(hidden_sizes=(48, 48), residual=True, seed=0),
    "onehot": DuetConfig(hidden_sizes=(32,), value_encoding="onehot", seed=0),
    "embedding": DuetConfig(hidden_sizes=(48,), embedding_threshold=8,
                            embedding_dim=8, seed=0),
    "mpsn-mlp": DuetConfig(hidden_sizes=(48,), multi_predicate=True,
                           max_predicates_per_column=2,
                           mpsn=MPSNConfig(kind="mlp", hidden_size=16), seed=0),
    "mpsn-rnn": DuetConfig(hidden_sizes=(48,), multi_predicate=True,
                           max_predicates_per_column=2,
                           mpsn=MPSNConfig(kind="rnn", hidden_size=16), seed=0),
    "mpsn-recursive": DuetConfig(hidden_sizes=(48,), multi_predicate=True,
                                 max_predicates_per_column=2,
                                 mpsn=MPSNConfig(kind="recursive", hidden_size=16),
                                 seed=0),
    "embedding+mpsn": DuetConfig(hidden_sizes=(48,), multi_predicate=True,
                                 max_predicates_per_column=2,
                                 embedding_threshold=8, embedding_dim=8,
                                 mpsn=MPSNConfig(kind="mlp", hidden_size=16), seed=0),
}


class TestCompiledEquivalence:
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_float64_matches_tape(self, table, name):
        config = CONFIGS[name]
        model = DuetModel(table, config)
        estimator = DuetEstimator(model)
        queries = _workload(table, config).queries
        tape, _ = estimator.estimate_batch_with_breakdown(queries, compiled=False)
        compiled, _ = estimator.estimate_batch_with_breakdown(queries, compiled=True)
        np.testing.assert_allclose(compiled, tape, rtol=RELATIVE_TOLERANCE,
                                   atol=RELATIVE_TOLERANCE)

    @pytest.mark.parametrize("name", ["plain", "residual", "embedding", "mpsn-mlp"])
    def test_float32_within_single_precision(self, table, name):
        config = CONFIGS[name]
        model = DuetModel(table, config)
        estimator = DuetEstimator(model).compile(PlanOptions(dtype="float32"))
        queries = _workload(table, config).queries
        tape, _ = estimator.estimate_batch_with_breakdown(queries, compiled=False)
        compiled, _ = estimator.estimate_batch_with_breakdown(queries, compiled=True)
        # float32 resolution, far below the model's own estimation error:
        # relative to the estimate itself, with a one-row absolute floor.
        np.testing.assert_allclose(compiled, tape, rtol=5e-4, atol=5e-4)

    def test_compile_is_sticky_and_refreshable(self, table):
        model = DuetModel(table, CONFIGS["plain"])
        estimator = DuetEstimator(model)
        assert not estimator.compiled
        estimator.compile()
        assert estimator.compiled
        assert estimator.compile_options == PlanOptions()
        estimator.compile(PlanOptions(dtype="float32"))
        assert estimator.compile_options == PlanOptions(dtype="float32")

    def test_empty_batch_matches_tape(self, table):
        model = DuetModel(table, CONFIGS["plain"])
        estimator = DuetEstimator(model)
        tape, _ = estimator.estimate_batch_with_breakdown([], compiled=False)
        compiled, _ = estimator.estimate_batch_with_breakdown([], compiled=True)
        assert tape.shape == compiled.shape == (0,)

    def test_compiled_is_deterministic(self, table):
        model = DuetModel(table, CONFIGS["plain"])
        estimator = DuetEstimator(model).compile()
        queries = _workload(table, CONFIGS["plain"]).queries
        first = estimator.estimate_batch(queries)
        second = estimator.estimate_batch(queries)
        np.testing.assert_array_equal(first, second)

    def test_stale_plan_refreshes_on_recompile(self, table):
        """compile() snapshots weights; training then recompiling refreshes."""
        model = DuetModel(table, CONFIGS["plain"])
        estimator = DuetEstimator(model).compile()
        queries = _workload(table, CONFIGS["plain"], num_queries=16).queries
        before = estimator.estimate_batch(queries)
        for parameter in model.parameters():
            parameter.data += 0.05  # stand-in for a training step
        stale = estimator.estimate_batch(queries)
        np.testing.assert_array_equal(stale, before)  # still the old snapshot
        estimator.compile()
        refreshed = estimator.estimate_batch(queries)
        tape, _ = estimator.estimate_batch_with_breakdown(queries, compiled=False)
        np.testing.assert_allclose(refreshed, tape, rtol=RELATIVE_TOLERANCE,
                                   atol=RELATIVE_TOLERANCE)


class TestMergedMPSNPlan:
    def test_merged_plan_obeys_dtype_option(self):
        config = MPSNConfig(kind="mlp", hidden_size=12, num_layers=2)
        rng = np.random.default_rng(3)
        mpsns = [build_mpsn(width, width, config, rng=rng) for width in (7, 5)]
        merged = MergedMLPInference(mpsns, PlanOptions(dtype="float32"))
        assert merged.plan.dtype is np.float32
        encodings = [rng.normal(size=(4, 2, width)) for width in (7, 5)]
        presence = [np.ones((4, 2)) for _ in range(2)]
        outputs = merged.forward(encodings, presence)
        for mpsn, encoding, output in zip(mpsns, encodings, outputs):
            direct = mpsn(Tensor(encoding), np.ones((4, 2))).numpy()
            np.testing.assert_allclose(output, direct, rtol=1e-3, atol=1e-3)


class TestRegistryCompileOptions:
    def test_round_trip_of_compile_options(self, tmp_path, table):
        model = DuetModel(table, CONFIGS["plain"])
        registry = ModelRegistry(tmp_path)
        registry.save(model, dataset="census",
                      compile_options=PlanOptions(dtype="float32"))
        assert registry.compile_options("census") == PlanOptions(dtype="float32")
        reloaded = registry.load_estimator("census")
        assert reloaded.compiled
        assert reloaded.compile_options == PlanOptions(dtype="float32")
        queries = _workload(table, CONFIGS["plain"]).queries
        tape = DuetEstimator(model).estimate_batch(queries)
        np.testing.assert_allclose(reloaded.estimate_batch(queries), tape,
                                   rtol=5e-4, atol=5e-4)

    def test_save_without_options_stays_uncompiled(self, tmp_path, table):
        model = DuetModel(table, CONFIGS["plain"])
        registry = ModelRegistry(tmp_path)
        registry.save(model, dataset="census")
        assert registry.compile_options("census") is None
        reloaded = registry.load_estimator("census")
        assert not reloaded.compiled
        # The tape-path reload therefore stays bit-for-bit with the original.
        queries = _workload(table, CONFIGS["plain"]).queries
        np.testing.assert_array_equal(reloaded.estimate_batch(queries),
                                      DuetEstimator(model).estimate_batch(queries))


class TestServingCompiledRunner:
    def test_service_runs_compiled_without_mutating_estimator(self, table):
        model = DuetModel(table, CONFIGS["plain"])
        estimator = DuetEstimator(model)
        queries = _workload(table, CONFIGS["plain"], num_queries=30).queries
        tape = estimator.estimate_batch(queries)
        with EstimationService(estimator, ServingConfig(cache_capacity=0)) as service:
            served = service.estimate_batch(queries)
        assert not estimator.compiled  # the estimator object is untouched
        np.testing.assert_allclose(served, tape, rtol=1e-9, atol=1e-9)

    def test_service_float32_dtype(self, table):
        model = DuetModel(table, CONFIGS["plain"])
        estimator = DuetEstimator(model)
        queries = _workload(table, CONFIGS["plain"], num_queries=30).queries
        config = ServingConfig(cache_capacity=0, inference_dtype="float32")
        with EstimationService(estimator, config) as service:
            served = service.estimate_batch(queries)
        np.testing.assert_allclose(served, estimator.estimate_batch(queries),
                                   rtol=5e-4, atol=5e-4)

    def test_compiled_can_be_disabled(self, table):
        model = DuetModel(table, CONFIGS["plain"])
        estimator = DuetEstimator(model)
        queries = _workload(table, CONFIGS["plain"], num_queries=20).queries
        config = ServingConfig(cache_capacity=0, micro_batching=False, compiled=False)
        with EstimationService(estimator, config) as service:
            served = service.estimate_batch(queries)
        np.testing.assert_array_equal(served, estimator.estimate_batch(queries))

    def test_compiled_false_pins_tape_for_registry_loads(self, tmp_path, table):
        """compiled=False serves the tape even when the estimator itself was
        compiled on load — bit-for-bit with an uncompiled reference."""
        model = DuetModel(table, CONFIGS["plain"])
        registry = ModelRegistry(tmp_path)
        registry.save(model, dataset="census",
                      compile_options=PlanOptions(dtype="float32"))
        reloaded = registry.load_estimator("census")
        assert reloaded.compiled
        queries = _workload(table, CONFIGS["plain"], num_queries=20).queries
        config = ServingConfig(cache_capacity=0, micro_batching=False, compiled=False)
        with EstimationService(reloaded, config) as service:
            served = service.estimate_batch(queries)
        reference = DuetEstimator(model).estimate_batch(queries)
        np.testing.assert_array_equal(served, reference)

    def test_service_reuses_matching_estimator_plan(self, table):
        """timed_batch_runner shares the estimator's plan when options match
        (no second weight snapshot per service)."""
        model = DuetModel(table, CONFIGS["plain"])
        estimator = DuetEstimator(model).compile(PlanOptions(dtype="float32"))
        runner = estimator.timed_batch_runner(PlanOptions(dtype="float32"))
        assert runner.__closure__ is not None
        shared = [cell.cell_contents for cell in runner.__closure__
                  if cell.cell_contents is estimator._compiled]
        assert shared, "matching options should reuse the estimator's plan"
        other = estimator.timed_batch_runner(PlanOptions(dtype="float64"))
        assert not [cell.cell_contents for cell in other.__closure__
                    if cell.cell_contents is estimator._compiled]

    def test_service_defers_to_persisted_compile_options(self, tmp_path, table):
        """Default ServingConfig serves a registry-loaded estimator through
        its persisted plan (same dtype, same snapshot — not a float64 one)."""
        model = DuetModel(table, CONFIGS["plain"])
        registry = ModelRegistry(tmp_path)
        registry.save(model, dataset="census",
                      compile_options=PlanOptions(dtype="float32"))
        reloaded = registry.load_estimator("census")
        config = ServingConfig(cache_capacity=0, micro_batching=False)
        with EstimationService(reloaded, config) as service:
            runner_cells = [cell.cell_contents
                            for cell in service._timed_runner.__closure__]
            assert reloaded._compiled in runner_cells  # shared, float32 plan
            queries = _workload(table, CONFIGS["plain"], num_queries=10).queries
            served = service.estimate_batch(queries)
        np.testing.assert_allclose(
            served, DuetEstimator(model).estimate_batch(queries),
            rtol=5e-4, atol=5e-4)

    def test_invalid_inference_dtype_rejected(self):
        with pytest.raises(ValueError):
            ServingConfig(inference_dtype="float16")


class TestBaselineCompilation:
    def test_naru_compiled_progressive_sampling_close_to_tape(self, table):
        from repro.baselines import NaruEstimator

        queries = make_random_workload(table, num_queries=5, seed=5).queries
        tape = NaruEstimator(table, hidden_sizes=(32,), num_samples=50, seed=0)
        compiled = NaruEstimator(table, hidden_sizes=(32,), num_samples=50, seed=0)
        compiled.compile()
        assert compiled.compiled and not tape.compiled
        for query in queries:
            # Same seed stream + numerically identical forward up to
            # round-off: the sampled paths coincide and estimates agree.
            np.testing.assert_allclose(compiled.estimate(query),
                                       tape.estimate(query), rtol=1e-6, atol=1e-6)

    def test_mscn_compiled_matches_tape(self, table):
        from repro.baselines import MSCNEstimator

        workload = make_random_workload(table, num_queries=60, seed=6)
        estimator = MSCNEstimator(table, epochs=2, seed=0).fit(workload)
        queries = make_random_workload(table, num_queries=40, seed=7).queries
        tape = estimator.estimate_batch(queries)
        estimator.compile()
        np.testing.assert_allclose(estimator.estimate_batch(queries), tape,
                                   rtol=1e-6, atol=1e-6)
