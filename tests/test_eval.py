"""Tests for metrics, reporting, the evaluation harness, and experiment drivers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import IndependenceEstimator, SamplingEstimator
from repro.data import Table
from repro.eval import (
    SmokeScale,
    cumulative_distribution,
    evaluate_estimator,
    figure4_workload_distribution,
    format_series,
    format_table,
    qerror,
    summarize_qerrors,
    train_duet,
)
from repro.eval.harness import EvaluationResult
from repro.workload import make_inworkload, make_random_workload


@pytest.fixture(scope="module")
def table():
    rng = np.random.default_rng(0)
    a = rng.integers(0, 10, size=500)
    b = (a + rng.integers(0, 2, size=500)) % 10
    return Table.from_dict("eval_toy", {"a": a, "b": b})


@pytest.fixture(scope="module")
def workload(table):
    return make_random_workload(table, num_queries=40, seed=3)


class TestQError:
    def test_exact_estimate_is_one(self):
        np.testing.assert_allclose(qerror(np.array([5.0, 10.0]), np.array([5, 10])), 1.0)

    def test_symmetry(self):
        over = qerror(np.array([100.0]), np.array([10.0]))
        under = qerror(np.array([10.0]), np.array([100.0]))
        np.testing.assert_allclose(over, under)

    def test_floor_prevents_infinity(self):
        values = qerror(np.array([0.0]), np.array([0.0]))
        np.testing.assert_allclose(values, 1.0)

    def test_summary_statistics(self):
        values = np.array([1.0, 1.0, 2.0, 4.0, 100.0])
        summary = summarize_qerrors(values)
        assert summary.median == pytest.approx(2.0)
        assert summary.maximum == pytest.approx(100.0)
        assert summary.mean == pytest.approx(values.mean())
        assert summary.count == 5
        assert len(summary.as_row()) == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_qerrors(np.array([]))

    @given(st.lists(st.floats(1.0, 1e6), min_size=1, max_size=50),
           st.lists(st.floats(1.0, 1e6), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_qerror_always_at_least_one(self, estimates, actuals):
        size = min(len(estimates), len(actuals))
        values = qerror(np.array(estimates[:size]), np.array(actuals[:size]))
        assert (values >= 1.0).all()


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["alpha", 1.5], ["b", 123456.0]],
                            title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "alpha" in text
        assert all(len(line) == len(lines[1]) or True for line in lines)

    def test_format_series(self):
        text = format_series("x", [1, 2], {"series_a": [0.1, 0.2], "series_b": [3.0, 4.0]})
        assert "series_a" in text and "series_b" in text

    def test_cdf_monotonic(self):
        rng = np.random.default_rng(0)
        points, quantiles = cumulative_distribution(rng.exponential(size=500), num_points=20)
        assert np.all(np.diff(points) >= 0)
        assert quantiles[0] == 0.0 and quantiles[-1] == 1.0

    def test_cdf_empty_rejected(self):
        with pytest.raises(ValueError):
            cumulative_distribution(np.array([]))


class TestHarness:
    def test_evaluate_sampling_estimator(self, table, workload):
        result = evaluate_estimator(SamplingEstimator(table, sample_fraction=1.0), workload)
        assert isinstance(result, EvaluationResult)
        # Full sample is exact, so every Q-Error is 1.
        np.testing.assert_allclose(result.qerrors, 1.0)
        assert result.per_query_ms > 0
        assert result.summary.count == len(workload)

    def test_evaluate_labels_workload_if_needed(self, table):
        workload = make_random_workload(table, num_queries=10, seed=5, label=False)
        result = evaluate_estimator(IndependenceEstimator(table), workload)
        assert workload.is_labeled
        assert result.summary.count == 10

    def test_result_table_row(self, table, workload):
        result = evaluate_estimator(IndependenceEstimator(table), workload)
        row = result.as_table_row()
        assert row[0] == "indep"
        assert len(row) == 8

    def test_train_duet_hybrid_and_data_only(self, table):
        train_queries = make_inworkload(table, num_queries=50, seed=42)
        config_kwargs = dict(hidden_sizes=(32,), epochs=1, batch_size=128,
                             expand_coefficient=1, seed=0)
        scale_config = SmokeScale().duet_config(**config_kwargs)
        hybrid = train_duet(table, train_queries, scale_config, epochs=1)
        assert hybrid.hybrid
        data_only = train_duet(table, None, SmokeScale().duet_config(
            lambda_query=0.0, **config_kwargs), epochs=1)
        assert not data_only.hybrid
        assert len(hybrid.history.epochs) == 1

    def test_trained_duet_estimator_usable(self, table, workload):
        trained = train_duet(table, None, SmokeScale().duet_config(
            hidden_sizes=(32,), epochs=1, lambda_query=0.0, expand_coefficient=1), epochs=1)
        result = evaluate_estimator(trained.estimator, workload, table)
        assert result.summary.maximum >= 1.0


class TestSmokeScale:
    def test_dataset_builders(self):
        scale = SmokeScale()
        census = scale.dataset("census")
        assert census.num_columns == 14
        kdd = scale.dataset("kddcup98")
        assert kdd.num_columns == scale.kdd_columns

    def test_duet_config_overrides(self):
        config = SmokeScale().duet_config(lambda_query=0.5)
        assert config.lambda_query == 0.5
        assert config.hidden_sizes == SmokeScale().hidden_sizes


class TestExperimentDrivers:
    """Smoke tests for the cheap experiment drivers (the heavier ones are
    exercised by the benchmark suite)."""

    def test_figure4_distributions_differ(self):
        scale = SmokeScale(dataset_scale={"dmv": 0.0008, "kddcup98": 0.02, "census": 0.03},
                           num_test_queries=80)
        result = figure4_workload_distribution("census", scale)
        assert result.rand_q_median != result.in_q_median
        text = result.render()
        assert "Figure 4" in text

    def test_figure4_render_contains_both_series(self):
        scale = SmokeScale(num_test_queries=50)
        result = figure4_workload_distribution("census", scale)
        assert "Rand-Q" in result.render() and "In-Q" in result.render()
