"""Failure-injection and edge-case tests.

A production-quality estimator library must fail loudly and predictably on
bad inputs (unknown columns, corrupted checkpoints, impossible predicates,
degenerate tables) rather than silently producing garbage estimates.
"""

import numpy as np
import pytest

from repro import nn
from repro.baselines import (
    DeepDBEstimator,
    IndependenceEstimator,
    MHistEstimator,
    MSCNEstimator,
    NaruEstimator,
    SamplingEstimator,
)
from repro.core import DuetConfig, DuetEstimator, DuetModel, DuetTrainer
from repro.core.virtual_table import VirtualTableSampler
from repro.data import Table
from repro.workload import Operator, Predicate, Query, Workload, make_random_workload


@pytest.fixture(scope="module")
def tiny_table():
    rng = np.random.default_rng(0)
    return Table.from_dict("tiny", {
        "a": rng.integers(0, 5, size=200),
        "b": rng.integers(0, 3, size=200),
    })


@pytest.fixture(scope="module")
def tiny_model(tiny_table):
    config = DuetConfig(hidden_sizes=(16,), epochs=1, batch_size=64,
                        expand_coefficient=1, seed=0)
    model = DuetModel(tiny_table, config)
    DuetTrainer(model, tiny_table, config=config).train(epochs=1)
    return model


class TestBadQueries:
    def test_unknown_column_rejected_by_every_estimator(self, tiny_table, tiny_model):
        bad = Query.from_triples([("missing", "=", 1)])
        estimators = [
            DuetEstimator(tiny_model),
            SamplingEstimator(tiny_table, sample_fraction=0.5),
            IndependenceEstimator(tiny_table),
            MHistEstimator(tiny_table, num_buckets=10),
            DeepDBEstimator(tiny_table, min_instances=32),
        ]
        for estimator in estimators:
            with pytest.raises(KeyError):
                estimator.estimate(bad)

    def test_empty_query_rejected(self, tiny_table):
        with pytest.raises(ValueError):
            IndependenceEstimator(tiny_table).estimate(Query([]))

    def test_value_outside_domain_gives_zero_not_crash(self, tiny_table, tiny_model):
        query = Query.from_triples([("a", "=", 999)])
        assert DuetEstimator(tiny_model).estimate(query) == pytest.approx(0.0, abs=1e-6)
        assert IndependenceEstimator(tiny_table).estimate(query) == 0.0

    def test_contradictory_predicates_give_zero(self, tiny_table, tiny_model):
        query = Query.from_triples([("a", ">=", 4), ("a", "<=", 1)])
        assert IndependenceEstimator(tiny_table).estimate(query) == 0.0
        assert MHistEstimator(tiny_table, num_buckets=10).estimate(query) == 0.0

    def test_string_literal_on_numeric_column_is_contained(self, tiny_table):
        """A type-mismatched literal must either raise or produce a well-formed
        mask — never crash later or emit an out-of-range code interval."""
        column = tiny_table.column("a")
        predicate = Predicate("a", Operator.GE, "not-a-number")
        try:
            mask = predicate.valid_value_mask(column)
        except (TypeError, ValueError):
            return
        assert mask.shape == (column.num_distinct,)
        assert mask.dtype == bool


class TestCorruptedState:
    def test_loading_wrong_architecture_fails(self, tiny_table, tiny_model, tmp_path):
        path = tmp_path / "model.npz"
        nn.save_module(tiny_model, path)
        other_config = DuetConfig(hidden_sizes=(8, 8), seed=0)
        other = DuetModel(tiny_table, other_config)
        with pytest.raises((KeyError, ValueError)):
            nn.load_module(other, path)

    def test_loading_missing_file_fails(self, tiny_model, tmp_path):
        with pytest.raises(FileNotFoundError):
            nn.load_module(tiny_model, tmp_path / "does_not_exist.npz")

    def test_state_dict_with_wrong_shapes_rejected(self, tiny_model):
        state = tiny_model.state_dict()
        first_key = next(iter(state))
        state[first_key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            tiny_model.load_state_dict(state)


class TestDegenerateData:
    def test_single_distinct_value_columns(self):
        table = Table.from_dict("const", {"a": [1] * 100, "b": [2] * 100})
        config = DuetConfig(hidden_sizes=(8,), epochs=1, batch_size=32,
                            expand_coefficient=1, seed=0)
        model = DuetModel(table, config)
        DuetTrainer(model, table, config=config).train(epochs=1)
        estimate = DuetEstimator(model).estimate(Query.from_triples([("a", "=", 1)]))
        assert estimate == pytest.approx(table.num_rows, rel=0.2)

    def test_two_row_table(self):
        table = Table.from_dict("mini", {"a": [1, 2], "b": [3, 4]})
        estimator = IndependenceEstimator(table)
        assert estimator.estimate(Query.from_triples([("a", "=", 1)])) == pytest.approx(1.0)

    def test_sampler_handles_boundary_anchor_values(self):
        """Anchors at the domain edges make some operators infeasible; the
        sampler must fall back to wildcards, never emit invalid literals."""
        config = DuetConfig(expand_coefficient=1, wildcard_probability=0.0)
        sampler = VirtualTableSampler([2, 2], config, seed=0)
        anchors = np.array([[0, 1]] * 50, dtype=np.int64)
        batch = sampler.sample_batch(anchors)
        assert sampler.verify_batch(batch)
        present = batch.values[batch.values >= 0]
        assert present.size == 0 or ((present >= 0) & (present < 2)).all()

    def test_mscn_on_workload_with_single_query(self, tiny_table):
        workload = Workload("one", [Query.from_triples([("a", "=", 1)])]).label(tiny_table)
        estimator = MSCNEstimator(tiny_table, epochs=2, seed=0).fit(workload)
        assert estimator.estimate(workload.queries[0]) >= 0

    def test_naru_estimate_on_unconstrained_like_query(self, tiny_table):
        """A query whose predicates select the whole domain should estimate
        close to the full table size."""
        naru = NaruEstimator(tiny_table, hidden_sizes=(16,), num_samples=20, seed=0)
        naru.fit(epochs=1)
        query = Query.from_triples([("a", ">=", 0)])
        assert naru.estimate(query) == pytest.approx(tiny_table.num_rows, rel=0.05)


class TestTrainerRobustness:
    def test_training_with_empty_workload_falls_back_to_data_only(self, tiny_table):
        config = DuetConfig(hidden_sizes=(16,), epochs=1, batch_size=64,
                            expand_coefficient=1, seed=0)
        model = DuetModel(tiny_table, config)
        trainer = DuetTrainer(model, tiny_table, None, config)
        assert not trainer.hybrid
        history = trainer.train(epochs=1)
        assert history.epochs[0].query_loss == 0.0

    def test_lambda_zero_disables_hybrid_even_with_workload(self, tiny_table):
        config = DuetConfig(hidden_sizes=(16,), epochs=1, batch_size=64,
                            expand_coefficient=1, lambda_query=0.0, seed=0)
        workload = make_random_workload(tiny_table, num_queries=10, seed=0)
        trainer = DuetTrainer(DuetModel(tiny_table, config), tiny_table, workload, config)
        assert not trainer.hybrid

    def test_gradient_clipping_keeps_parameters_finite(self, tiny_table):
        config = DuetConfig(hidden_sizes=(16,), epochs=1, batch_size=64,
                            expand_coefficient=1, learning_rate=1.0, grad_clip=1.0, seed=0)
        model = DuetModel(tiny_table, config)
        workload = make_random_workload(tiny_table, num_queries=20, seed=0)
        DuetTrainer(model, tiny_table, workload, config).train(epochs=1)
        for parameter in model.parameters():
            assert np.isfinite(parameter.data).all()

    def test_invalid_config_values_rejected(self):
        with pytest.raises(ValueError):
            DuetConfig(expand_coefficient=0)
        with pytest.raises(ValueError):
            DuetConfig(wildcard_probability=1.5)
        with pytest.raises(ValueError):
            DuetConfig(lambda_query=-0.1)
        with pytest.raises(ValueError):
            DuetConfig(hidden_sizes=())
        with pytest.raises(ValueError):
            DuetConfig(batch_size=0)
