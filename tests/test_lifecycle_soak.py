"""Slow soak test of the autonomous lifecycle (opt-in via --run-slow).

Exercises the full async path the unit tests drive synchronously: a running
scheduler daemon, concurrent load from run_soak, timed appends (skewed then
domain-growing) and timed deletes (staleness refresh, then
compaction-triggering churn), and the acceptance bar — zero failed requests
while the controller refreshes, compacts, and cold-trains on its own.
"""

import numpy as np
import pytest

from repro.core import (
    DuetConfig,
    DuetModel,
    DuetTrainer,
    LifecyclePolicy,
    ServingConfig,
)
from repro.data import ColumnStore, Table
from repro.eval import run_soak
from repro.lifecycle import FaultInjector, FaultSpec, RefreshScheduler
from repro.serving import EstimationService, ModelRegistry
from repro.workload import make_random_workload

pytestmark = pytest.mark.slow

CONFIG = DuetConfig(hidden_sizes=(24, 24), epochs=2, batch_size=128,
                    expand_coefficient=1, lambda_query=0.0, seed=0)


def _skewed_batch(store, fraction, seed):
    rng = np.random.default_rng(seed)
    snapshot = store.snapshot()
    count = int(snapshot.num_rows * fraction)
    batch = {}
    for name in snapshot.column_names:
        column = snapshot.column(name)
        start = (3 * column.num_distinct) // 4
        batch[name] = column.distinct_values[
            rng.integers(start, column.num_distinct, size=count)]
    return batch


def _delete_fraction(store, fraction, seed):
    """Tombstone a random ``fraction`` of the current live rows."""
    rng = np.random.default_rng(seed)
    live = store.num_rows
    count = min(int(live * fraction), max(live - 1, 0))
    if count == 0:
        return store.snapshot()
    return store.delete(rng.choice(live, size=count, replace=False))


def test_soak_with_running_scheduler(tmp_path):
    rng = np.random.default_rng(0)
    store = ColumnStore.from_table(Table.from_dict("soak", {
        "age": rng.integers(18, 60, size=600),
        "city": rng.choice(["ams", "ber", "cdg", "dus", "lis"], size=600),
        "score": rng.integers(0, 12, size=600),
    }))
    base = store.snapshot()
    model = DuetModel(base, CONFIG)
    DuetTrainer(model, base, config=CONFIG).train()
    registry = ModelRegistry(tmp_path / "registry")
    registry.save(model, dataset="soak")

    policy = LifecyclePolicy(poll_interval_seconds=0.1, max_stale_rows=None,
                             max_stale_fraction=0.2, probe_sample_rate=0.2,
                             debounce_polls=1, cooldown_seconds=0.5,
                             refresh_epochs=1, cold_train_epochs=1,
                             keep_model_versions=2)
    with EstimationService.from_registry(
            registry, "soak", store=store,
            config=ServingConfig(max_wait_ms=0.2)) as service:
        workload = make_random_workload(base, num_queries=150, seed=11,
                                        label=False)
        with RefreshScheduler(service, policy) as scheduler:
            scheduler.monitor.seed_probes(workload.queries[:32])
            report = run_soak(
                service, workload, duration_seconds=8.0, concurrency=4,
                appends=[
                    (0.5, lambda: store.append(_skewed_batch(store, 0.5, 7))),
                    (3.0, lambda: store.append(
                        {"age": np.arange(200, 450), "city": ["new"] * 250,
                         "score": np.arange(100, 350)})),
                ],
                scheduler=scheduler, seed=0)
            assert scheduler.quiesce(timeout=120.0)
            # The soak report is cut at the load deadline; the escalation
            # may land during quiesce, so count swaps from the event log.
            swaps = [event for event in scheduler.events.events("cold_train")
                     if event.details.get("status") == "swapped"]

        assert report.errors == 0
        assert report.appends_applied == 2
        assert report.num_requests > 0
        assert report.refreshes >= 1            # skewed append absorbed
        assert len(swaps) >= 1                  # domain growth escalated
        assert service.staleness() == 0
        # Retention held: at most keep_model_versions survive.
        assert len(registry.versions("soak")) <= 2
        assert service.model_version in registry.versions("soak")


def test_churn_soak_with_timed_deletes(tmp_path):
    """Delete-heavy churn under live traffic: the controller must refresh
    on delete staleness, compact once the tombstone fraction crosses the
    policy threshold, cold-train on the compacted view, and never fail a
    request while doing any of it."""
    rng = np.random.default_rng(1)
    store = ColumnStore.from_table(Table.from_dict("churn", {
        "age": rng.integers(18, 60, size=800),
        "city": rng.choice(["ams", "ber", "cdg", "dus", "lis"], size=800),
        "score": rng.integers(0, 12, size=800),
    }))
    base = store.snapshot()
    model = DuetModel(base, CONFIG)
    DuetTrainer(model, base, config=CONFIG).train()
    registry = ModelRegistry(tmp_path / "registry")
    registry.save(model, dataset="churn")

    policy = LifecyclePolicy(poll_interval_seconds=0.1, max_stale_rows=None,
                             max_stale_fraction=0.15, probe_sample_rate=0.2,
                             debounce_polls=1, cooldown_seconds=0.5,
                             refresh_epochs=1, cold_train_epochs=1,
                             keep_model_versions=2,
                             compact_tombstone_fraction=0.35)
    with EstimationService.from_registry(
            registry, "churn", store=store,
            config=ServingConfig(max_wait_ms=0.2)) as service:
        workload = make_random_workload(base, num_queries=150, seed=5,
                                        label=False)
        with RefreshScheduler(service, policy) as scheduler:
            scheduler.monitor.seed_probes(workload.queries[:32])
            report = run_soak(
                service, workload, duration_seconds=8.0, concurrency=4,
                appends=[
                    (1.0, lambda: store.append(_skewed_batch(store, 0.2, 3))),
                ],
                deletes=[
                    # First wave drives a delete-staleness refresh; the
                    # second pushes the tombstone fraction past 0.35 and
                    # must end in compaction + cold train.
                    (0.5, lambda: _delete_fraction(store, 0.2, 7)),
                    (3.5, lambda: _delete_fraction(store, 0.35, 8)),
                ],
                scheduler=scheduler, seed=0)
            assert scheduler.quiesce(timeout=120.0)
            swaps = [event for event in scheduler.events.events("cold_train")
                     if event.details.get("status") == "swapped"]

    assert report.errors == 0
    assert report.appends_applied == 1
    assert report.deletes_applied == 2 and report.delete_errors == 0
    assert report.num_requests > 0
    assert report.refreshes + len(swaps) >= 1   # churn absorbed autonomously
    assert scheduler.events.count("compaction") >= 1
    assert len(swaps) >= 1                      # compaction escalated
    assert store.tombstone_fraction == 0.0      # dead rows reclaimed
    assert service.staleness() == 0


def test_chaos_soak_with_fault_injection(tmp_path):
    """Chaos mode: a seeded fault plan hits the trainer, the registry, and
    the store while traffic and mutations run.  The acceptance bar stays
    the same as every other soak — zero failed estimate requests — plus:
    faults demonstrably fired, and the registry state left behind passes a
    cold-start recover()."""
    rng = np.random.default_rng(2)
    store = ColumnStore.from_table(Table.from_dict("chaos", {
        "age": rng.integers(18, 60, size=600),
        "city": rng.choice(["ams", "ber", "cdg", "dus", "lis"], size=600),
        "score": rng.integers(0, 12, size=600),
    }))
    base = store.snapshot()
    model = DuetModel(base, CONFIG)
    DuetTrainer(model, base, config=CONFIG).train()
    registry = ModelRegistry(tmp_path / "registry")
    registry.save(model, dataset="chaos")

    policy = LifecyclePolicy(poll_interval_seconds=0.1, max_stale_rows=None,
                             max_stale_fraction=0.2, probe_sample_rate=0.2,
                             debounce_polls=1, cooldown_seconds=0.3,
                             refresh_epochs=1, cold_train_epochs=1,
                             keep_model_versions=2,
                             failure_backoff_seconds=0.2,
                             failure_backoff_max_seconds=0.5,
                             breaker_failure_threshold=None)
    faults = FaultInjector([
        FaultSpec(site="trainer.step", kind="raise"),
        FaultSpec(site="registry.save", kind="io_error"),
        FaultSpec(site="trainer.step", kind="stall", stall_seconds=0.02,
                  times=3, after=50),
    ], seed=3)
    with EstimationService.from_registry(
            registry, "chaos", store=store,
            config=ServingConfig(max_wait_ms=0.2)) as service:
        workload = make_random_workload(base, num_queries=150, seed=7,
                                        label=False)
        with RefreshScheduler(service, policy) as scheduler:
            scheduler.monitor.seed_probes(workload.queries[:32])
            report = run_soak(
                service, workload, duration_seconds=8.0, concurrency=4,
                appends=[
                    (0.5, lambda: store.append(_skewed_batch(store, 0.3, 9))),
                    (3.0, lambda: store.append(_skewed_batch(store, 0.3, 10))),
                ],
                scheduler=scheduler, faults=faults, seed=0)
            assert scheduler.quiesce(timeout=120.0)

        # Chaos must not reach the serving path.
        assert report.errors == 0
        assert report.num_requests > 0
        # The plan demonstrably fired and landed in the report.
        assert report.fault_counts == faults.counts()
        assert sum(report.fault_counts.values()) >= 1
        # run_soak disarmed the seams on the way out.
        assert store.fault_hook is None and registry.fault_hook is None
        # Despite injected tune failures, the controller eventually
        # recovered: the service still serves and registry state is sane.
        assert ModelRegistry(registry.root).recover().clean
        assert registry.load_estimator("chaos") is not None
        assert service.model_version in registry.versions("chaos")
