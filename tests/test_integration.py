"""End-to-end integration tests crossing subsystem boundaries.

These tests exercise realistic flows: dataset -> workload -> training ->
estimation -> evaluation, model persistence, determinism guarantees, and the
comparisons that the paper's narrative depends on.
"""

import numpy as np
import pytest

from repro import nn
from repro.baselines import IndependenceEstimator, NaruEstimator
from repro.core import DuetConfig, DuetEstimator, DuetModel
from repro.data import make_census, make_kddcup98
from repro.eval import evaluate_estimator, qerror, train_duet
from repro.workload import Query, Workload, cardinality, make_inworkload, make_random_workload


@pytest.fixture(scope="module")
def census():
    return make_census(scale=0.03, seed=5)


@pytest.fixture(scope="module")
def census_config():
    return DuetConfig(hidden_sizes=(48, 48), epochs=3, batch_size=128,
                      expand_coefficient=2, lambda_query=0.1, seed=0)


@pytest.fixture(scope="module")
def trained(census, census_config):
    workload = make_inworkload(census, num_queries=200, seed=42)
    return train_duet(census, workload, census_config)


class TestEndToEnd:
    def test_training_history_is_complete(self, trained, census_config):
        assert len(trained.history.epochs) == census_config.epochs
        assert trained.hybrid

    def test_duet_beats_untrained_model(self, census, census_config, trained):
        test_queries = make_random_workload(census, num_queries=100, seed=9)
        untrained = DuetEstimator(DuetModel(census, census_config))
        trained_result = evaluate_estimator(trained.estimator, test_queries, census)
        untrained_result = evaluate_estimator(untrained, test_queries, census)
        assert trained_result.summary.median < untrained_result.summary.median

    def test_duet_competitive_with_independence_on_correlated_columns(self, census, trained):
        """On correlated column pairs Duet should not be much worse than the
        independence baseline and usually better (the reason learned
        estimators exist)."""
        queries = []
        education = census.column("education")
        marital = census.column("marital_status")
        for education_code in range(0, education.num_distinct, 4):
            queries.append(Query.from_triples([
                ("education", "<=", education.value_of(education_code)),
                ("marital_status", "=", marital.value_of(0)),
            ]))
        workload = Workload("corr", queries).label(census)
        duet_result = evaluate_estimator(trained.estimator, workload, census)
        indep_result = evaluate_estimator(IndependenceEstimator(census), workload, census)
        assert duet_result.summary.mean <= indep_result.summary.mean * 3

    def test_estimates_reproducible_across_calls_and_batching(self, trained, census):
        queries = make_random_workload(census, num_queries=20, seed=10, label=False).queries
        one_by_one = np.array([trained.estimator.estimate(query) for query in queries])
        batched = trained.estimator.estimate_batch(queries)
        np.testing.assert_allclose(one_by_one, batched, rtol=1e-10)

    def test_model_save_load_preserves_estimates(self, trained, census, census_config,
                                                 tmp_path):
        path = tmp_path / "duet.npz"
        nn.save_module(trained.model, path, metadata={"dataset": census.name})
        clone = DuetModel(census, census_config)
        metadata = nn.load_module(clone, path)
        assert metadata["dataset"] == census.name
        queries = make_random_workload(census, num_queries=10, seed=11, label=False).queries
        np.testing.assert_allclose(DuetEstimator(clone).estimate_batch(queries),
                                   trained.estimator.estimate_batch(queries), rtol=1e-10)

    def test_same_seed_reproduces_training(self, census, census_config):
        workload = make_inworkload(census, num_queries=100, seed=42)
        first = train_duet(census, workload, census_config, epochs=1, seed=3)
        second = train_duet(census, workload, census_config, epochs=1, seed=3)
        queries = make_random_workload(census, num_queries=10, seed=12, label=False).queries
        np.testing.assert_allclose(first.estimator.estimate_batch(queries),
                                   second.estimator.estimate_batch(queries), rtol=1e-9)

    def test_duet_vs_naru_inference_cost_on_wide_table(self):
        """Integration version of the Figure 6 claim on a small wide table."""
        table = make_kddcup98(scale=0.015, num_columns=12, seed=3)
        config = DuetConfig(hidden_sizes=(32,), epochs=1, batch_size=128,
                            expand_coefficient=1, lambda_query=0.0, seed=0)
        duet = train_duet(table, None, config, epochs=1).estimator
        naru = NaruEstimator(table, hidden_sizes=(32,), num_samples=50, seed=0).fit(epochs=1)
        workload = make_random_workload(table, num_queries=10, seed=4,
                                        max_predicates=12, label=False)
        wide_queries = [query for query in workload if len(query.columns) >= 8]
        if not wide_queries:
            wide_queries = workload.queries
        duet_result = evaluate_estimator(duet, Workload("w", wide_queries).label(table), table)
        naru_result = evaluate_estimator(naru, Workload("w", wide_queries).label(table), table)
        assert duet_result.per_query_ms < naru_result.per_query_ms

    def test_single_column_estimates_track_truth(self, trained, census):
        """After training, single-column queries should be well estimated
        (they are directly visible in the learned conditionals)."""
        age = census.column("age")
        errors = []
        for code in range(0, age.num_distinct, 7):
            query = Query.from_triples([("age", "<=", age.value_of(code))])
            truth = cardinality(census, query)
            estimate = trained.estimator.estimate(query)
            errors.append(qerror(np.array([estimate]), np.array([truth]))[0])
        assert np.median(errors) < 2.5


class TestCrossSubsystemConsistency:
    def test_workload_labels_consistent_with_executor(self, census):
        workload = make_random_workload(census, num_queries=30, seed=13)
        recomputed = np.array([cardinality(census, query) for query in workload])
        np.testing.assert_array_equal(workload.cardinalities, recomputed)

    def test_estimator_interface_contract(self, trained, census):
        estimator = trained.estimator
        query = Query.from_triples([("age", ">=", 10)])
        assert 0 <= estimator.estimate_selectivity(query) <= 1
        assert estimator.size_bytes() > 0
        assert estimator.table is census

    def test_query_on_unknown_column_raises_through_estimator(self, trained):
        with pytest.raises(KeyError):
            trained.estimator.estimate(Query.from_triples([("not_a_column", "=", 1)]))
