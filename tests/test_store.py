"""Tests of the mutable data lifecycle substrate (:mod:`repro.data.store`).

Covers the chunked column store: append fast path vs dictionary growth with
stable code remapping, snapshot immutability across later appends, version
bookkeeping, deltas, dtype promotion, streaming CSV ingest, and the
zero-row / domain-growth / out-of-range edge cases the lifecycle exposes.
"""

import numpy as np
import pytest

from repro.data import Column, ColumnStore, Snapshot, Table, load_csv
from repro.workload import (
    Query,
    cardinality,
    execute,
    make_random_workload,
    true_cardinalities,
    true_cardinalities_delta,
)


@pytest.fixture()
def base_table() -> Table:
    rng = np.random.default_rng(1)
    return Table.from_dict("base", {
        "a": rng.integers(0, 30, size=300),
        "b": rng.choice(["x", "y", "z"], size=300),
    })


# ----------------------------------------------------------------------
# ColumnStore basics
# ----------------------------------------------------------------------
class TestColumnStore:
    def test_from_table_round_trips(self, base_table):
        store = ColumnStore.from_table(base_table)
        snapshot = store.snapshot()
        assert isinstance(snapshot, Snapshot)
        assert snapshot.data_version == 1 and store.data_version == 1
        assert snapshot.store is store
        np.testing.assert_array_equal(snapshot.code_matrix(),
                                      base_table.code_matrix())
        assert snapshot.column_names == base_table.column_names

    def test_snapshots_are_cached_per_version(self, base_table):
        store = ColumnStore.from_table(base_table)
        assert store.snapshot() is store.snapshot()
        store.append({"a": [1], "b": ["x"]})
        assert store.snapshot().data_version == 2

    def test_fast_path_append_preserves_domains(self, base_table):
        store = ColumnStore.from_table(base_table)
        before = store.snapshot()
        after = store.append({"a": [5, 7], "b": ["x", "z"]})
        assert after.data_version == 2
        assert after.num_rows == base_table.num_rows + 2
        for name in after.column_names:
            np.testing.assert_array_equal(after.column(name).distinct_values,
                                          before.column(name).distinct_values)
        # Appended rows decode back to the raw values that went in.
        assert after.row(after.num_rows - 2) == [5, "x"]
        assert after.row(after.num_rows - 1) == [7, "z"]

    def test_growth_append_remaps_codes_stably(self):
        store = ColumnStore.from_dict("t", {"a": [10, 30, 30, 50]})
        first = store.snapshot()
        # 20 lands in the middle of the domain: codes of 30/50 must shift.
        second = store.append({"a": [20, 20, 60]})
        assert list(second.column("a").distinct_values) == [10, 20, 30, 50, 60]
        # Every original row still decodes to its original raw value.
        for row in range(first.num_rows):
            assert second.row(row) == first.row(row)
        assert [second.row(index)[0] for index in range(4, 7)] == [20, 20, 60]

    def test_snapshot_immutability_across_growth(self, base_table):
        store = ColumnStore.from_table(base_table)
        old = store.snapshot()
        old_codes = old.column("a").codes.copy()
        old_domain = old.column("a").distinct_values.copy()
        store.append({"a": [-5, 1000], "b": ["new", "w"]})
        np.testing.assert_array_equal(old.column("a").codes, old_codes)
        np.testing.assert_array_equal(old.column("a").distinct_values, old_domain)
        # And the old snapshot still answers queries identically.
        query = Query.from_triples([("a", ">=", 10)])
        assert cardinality(old, query) == int(
            (base_table.column("a").distinct_values[base_table.column("a").codes]
             >= 10).sum())

    def test_empty_store_and_zero_row_append(self):
        store = ColumnStore("empty", ["a", "b"])
        snapshot = store.snapshot()
        assert snapshot.num_rows == 0 and snapshot.data_version == 0
        # Appending zero rows is a no-op, not a version bump.
        assert store.append({"a": [], "b": []}).data_version == 0
        grown = store.append({"a": [1, 2], "b": ["u", "v"]})
        assert grown.data_version == 1 and grown.num_rows == 2

    def test_append_validates_columns_and_lengths(self, base_table):
        store = ColumnStore.from_table(base_table)
        with pytest.raises(KeyError, match="missing"):
            store.append({"a": [1]})
        with pytest.raises(KeyError, match="unknown"):
            store.append({"a": [1], "b": ["x"], "c": [2]})
        with pytest.raises(ValueError, match="differing lengths"):
            store.append({"a": [1, 2], "b": ["x"]})

    def test_dtype_promotion_to_strings_remaps(self):
        store = ColumnStore.from_dict("t", {"a": [2, 10, 9]})
        promoted = store.append({"a": ["zeta", "2"]})
        domain = promoted.column("a").distinct_values
        assert domain.dtype.kind == "U"
        # Lexicographic order now applies ("10" < "2" < "9" < "zeta").
        assert list(domain) == ["10", "2", "9", "zeta"]
        decoded = [promoted.row(index)[0] for index in range(promoted.num_rows)]
        assert decoded == ["2", "10", "9", "zeta", "2"]

    def test_rows_since_tracks_staleness(self, base_table):
        store = ColumnStore.from_table(base_table)
        assert store.rows_since(1) == 0
        store.append({"a": [1, 2, 3], "b": ["x", "y", "z"]})
        assert store.rows_since(1) == 3
        assert store.rows_since(store.data_version) == 0
        # Unknown versions degrade to "everything is new".
        assert store.rows_since(99) == store.num_rows


# ----------------------------------------------------------------------
# Deltas and delta-aware labeling
# ----------------------------------------------------------------------
class TestTableDelta:
    def test_delta_contains_only_appended_rows(self, base_table):
        store = ColumnStore.from_table(base_table)
        base = store.snapshot()
        store.append({"a": [3, 4], "b": ["x", "y"]})
        store.append({"a": [5], "b": ["z"]})
        delta = store.delta(base)
        assert delta.base_version == 1 and delta.new_version == 3
        assert delta.base_rows == base.num_rows
        assert delta.appended_rows == 3
        assert not delta.domains_grew
        decoded = [delta.appended.row(index) for index in range(3)]
        assert decoded == [[3, "x"], [4, "y"], [5, "z"]]

    def test_delta_flags_grown_columns(self, base_table):
        store = ColumnStore.from_table(base_table)
        base = store.snapshot()
        store.append({"a": [10_000], "b": ["x"]})
        delta = store.delta(base)
        assert delta.grown_columns == ("a",)
        assert delta.domains_grew and not delta.promoted_columns

    def test_delta_labeling_matches_full_rescan(self, base_table):
        store = ColumnStore.from_table(base_table)
        base = store.snapshot()
        workload = make_random_workload(base, num_queries=80, seed=9, label=False)
        base_counts = true_cardinalities(base, workload.queries)
        rng = np.random.default_rng(5)
        # Mix of in-domain values and domain growth.
        store.append({"a": rng.integers(-10, 50, size=40),
                      "b": rng.choice(["x", "y", "z", "w"], size=40)})
        new = store.snapshot()
        delta = store.delta(base)
        counts = true_cardinalities_delta(delta, workload.queries, base_counts)
        np.testing.assert_array_equal(counts,
                                      true_cardinalities(new, workload.queries))

    def test_delta_labeling_zero_append_is_identity(self, base_table):
        store = ColumnStore.from_table(base_table)
        base = store.snapshot()
        workload = make_random_workload(base, num_queries=10, seed=3, label=False)
        base_counts = true_cardinalities(base, workload.queries)
        counts = true_cardinalities_delta(store.delta(base), workload.queries,
                                          base_counts)
        np.testing.assert_array_equal(counts, base_counts)

    def test_delta_against_empty_base_never_flags_promotion(self, base_table):
        """Version 0 recorded placeholder dtypes; a string column must not
        read as 'promoted' against it — counts over an empty base are
        trivially reusable."""
        store = ColumnStore.from_table(base_table)  # column "b" is strings
        delta = store.delta(0)
        assert delta.promoted_columns == ()
        queries = [Query.from_triples([("b", "=", "x")])]
        counts = true_cardinalities_delta(delta, queries,
                                          np.zeros(1, dtype=np.int64))
        np.testing.assert_array_equal(
            counts, true_cardinalities(store.snapshot(), queries))

    def test_delta_labeling_rejects_promotion_and_bad_shapes(self):
        store = ColumnStore.from_dict("t", {"a": [1, 2, 3]})
        base = store.snapshot()
        queries = [Query.from_triples([("a", ">=", 2)])]
        base_counts = true_cardinalities(base, queries)
        with pytest.raises(ValueError, match="shape"):
            true_cardinalities_delta(store.delta(base), queries,
                                     np.array([1, 2], dtype=np.int64))
        store.append({"a": ["text"]})
        with pytest.raises(ValueError, match="dtype"):
            true_cardinalities_delta(store.delta(base), queries, base_counts)


# ----------------------------------------------------------------------
# Lifecycle edge cases: zero rows, out-of-range codes
# ----------------------------------------------------------------------
class TestEdgeCases:
    def test_zero_row_table_executes_queries(self):
        columns = [Column("a", np.array([1, 2, 3]), np.empty(0, dtype=np.int64)),
                   Column("b", np.array(["x", "y"]), np.empty(0, dtype=np.int64))]
        table = Table("empty", columns)
        assert table.num_rows == 0
        query = Query.from_triples([("a", ">=", 2), ("b", "=", "x")])
        assert execute(table, query).shape == (0,)
        assert cardinality(table, query) == 0
        counts = true_cardinalities(table, [query, Query.from_triples(
            [("a", "=", 99)])])
        np.testing.assert_array_equal(counts, [0, 0])

    def test_from_codes_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="codes out of range"):
            Column.from_codes("c", [0, 3], num_distinct=3)
        with pytest.raises(ValueError, match="codes out of range"):
            Column.from_codes("c", [-1, 0], num_distinct=2)
        with pytest.raises(ValueError, match="codes out of range"):
            Column.from_codes("c", [0, 5], distinct_values=np.array([1, 2, 3]))

    def test_from_codes_empty_is_allowed(self):
        column = Column.from_codes("c", [], num_distinct=4)
        assert column.num_rows == 0 and column.num_distinct == 4


# ----------------------------------------------------------------------
# Streaming CSV ingest
# ----------------------------------------------------------------------
class TestStreamingLoadCsv:
    @pytest.fixture()
    def csv_path(self, tmp_path):
        path = tmp_path / "data.csv"
        rows = [f"{i % 13},cat{i % 5},{i % 7}" for i in range(180)]
        # The tail turns the third column non-numeric: the streaming path
        # must promote earlier (numeric-coerced) chunks to strings.
        rows += [f"{i % 11},cat{i % 3},tok{i % 4}" for i in range(120)]
        path.write_text("num,cat,mixed\n" + "\n".join(rows) + "\n")
        return path

    def test_multi_chunk_load_matches_whole_file(self, csv_path):
        whole = load_csv(csv_path, chunk_rows=10**9)
        streamed = load_csv(csv_path, chunk_rows=37)
        assert streamed.num_rows == whole.num_rows == 300
        assert streamed.data_version > 1  # several chunks were appended
        for name in whole.column_names:
            np.testing.assert_array_equal(
                whole.column(name).distinct_values.astype(str),
                streamed.column(name).distinct_values.astype(str))
            np.testing.assert_array_equal(whole.column(name).codes,
                                          streamed.column(name).codes)

    def test_peak_buffer_is_bounded_by_chunk_rows(self, csv_path, monkeypatch):
        import repro.data.csv_loader as loader
        chunk_sizes = []
        original = loader._iter_chunks

        def spying_iter(*args, **kwargs):
            for buffers in original(*args, **kwargs):
                chunk_sizes.append(len(buffers[0]))
                yield buffers

        monkeypatch.setattr(loader, "_iter_chunks", spying_iter)
        load_csv(csv_path, chunk_rows=50)
        assert max(chunk_sizes) <= 50 and len(chunk_sizes) >= 12  # two passes

    def test_chunking_cannot_rewrite_tokens(self, tmp_path):
        """A late non-numeric value must not leak numeric reformatting.

        '007' in an early chunk would read back as '7' if the chunk were
        coerced to integers before the type decision was global.
        """
        path = tmp_path / "lossy.csv"
        tokens = ["007", "01.50", "1e3"] * 20 + ["abc"]
        path.write_text("t\n" + "\n".join(tokens) + "\n")
        whole = load_csv(path, chunk_rows=10**9)
        streamed = load_csv(path, chunk_rows=7)
        np.testing.assert_array_equal(streamed.column("t").distinct_values,
                                      whole.column("t").distinct_values)
        np.testing.assert_array_equal(streamed.column("t").codes,
                                      whole.column("t").codes)
        assert set(streamed.column("t").distinct_values) == {
            "007", "01.50", "1e3", "abc"}

    def test_usecols_and_max_rows_still_work(self, csv_path):
        snapshot = load_csv(csv_path, usecols=["cat"], max_rows=90, chunk_rows=40)
        assert snapshot.column_names == ["cat"]
        assert snapshot.num_rows == 90

    def test_empty_file_raises(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("a,b\n")
        with pytest.raises(ValueError, match="no data rows"):
            load_csv(empty)


# ----------------------------------------------------------------------
# Bounded version history
# ----------------------------------------------------------------------
class TestBoundedVersionHistory:
    def _grow(self, store, rounds=3):
        """A few in-domain appends, each publishing one version."""
        rng = np.random.default_rng(9)
        for _ in range(rounds):
            snapshot = store.snapshot()
            store.append({
                name: snapshot.column(name).distinct_values[
                    rng.integers(0, snapshot.column(name).num_distinct, size=20)]
                for name in snapshot.column_names})

    def test_trim_drops_unreachable_versions(self, base_table):
        import gc

        store = ColumnStore.from_table(base_table)
        self._grow(store, rounds=3)
        assert store.tracked_versions == [0, 1, 2, 3, 4]
        gc.collect()  # drop the snapshots _grow created
        trimmed = store.trim_versions()
        # No snapshot is live: everything strictly between the empty store
        # and the current version goes.
        assert trimmed == 3
        assert store.tracked_versions == [0, 4]

    def test_live_snapshots_pin_their_versions(self, base_table):
        import gc

        store = ColumnStore.from_table(base_table)
        self._grow(store, rounds=1)
        held = store.snapshot()          # version 2 stays reachable
        self._grow(store, rounds=2)
        gc.collect()
        assert store.oldest_live_version() == 2
        trimmed = store.trim_versions()
        assert trimmed == 1              # only version 1
        assert store.tracked_versions == [0, 2, 3, 4]
        # The pinned version still answers exact deltas and staleness.
        assert store.rows_since(held.data_version) == 40
        delta = store.delta(held)
        assert delta.base_version == 2
        assert delta.appended_rows == 40

    def test_old_snapshots_keep_working_after_trim(self, base_table):
        import gc

        store = ColumnStore.from_table(base_table)
        held = store.snapshot()
        counts_before = true_cardinalities(
            held, make_random_workload(held, num_queries=25, seed=4,
                                       label=False).queries)
        self._grow(store, rounds=2)
        # Growth append forces a copy-on-remap of every chunk.
        store.append({"a": [999], "b": ["zz"]})
        gc.collect()
        store.trim_versions()
        # The held snapshot's tuples and domains are untouched by both the
        # remap and the metadata trim.
        workload = make_random_workload(held, num_queries=25, seed=4,
                                        label=False)
        np.testing.assert_array_equal(
            true_cardinalities(held, workload.queries), counts_before)
        assert held.num_rows == base_table.num_rows

    def test_trimmed_version_degrades_to_everything_new(self, base_table):
        import gc

        store = ColumnStore.from_table(base_table)
        self._grow(store, rounds=2)
        gc.collect()
        store.trim_versions()
        # Version 1's metadata is gone: staleness and deltas fall back to
        # the documented unknown-base behaviour instead of failing.
        assert store.rows_since(1) == store.num_rows
        delta = store.delta(1)
        assert delta.base_version == 0
        assert delta.appended_rows == store.num_rows

    def test_trim_respects_explicit_bound(self, base_table):
        import gc

        store = ColumnStore.from_table(base_table)
        self._grow(store, rounds=3)
        gc.collect()
        assert store.trim_versions(before=3) == 2      # versions 1 and 2
        assert store.tracked_versions == [0, 3, 4]

    def test_current_version_is_never_trimmed(self, base_table):
        store = ColumnStore.from_table(base_table)
        assert store.trim_versions() == 0
        assert store.tracked_versions == [0, 1]
