"""Tests for all baseline estimators (traditional, query-driven, data-driven, hybrid)."""

import numpy as np
import pytest

from repro.baselines import (
    DeepDBEstimator,
    IndependenceEstimator,
    MHistEstimator,
    MSCNEstimator,
    NaruEstimator,
    SamplingEstimator,
    UAEEstimator,
)
from repro.data import Table
from repro.workload import Query, cardinality, make_inworkload, make_random_workload


@pytest.fixture(scope="module")
def table():
    """Small correlated table shared by all baseline tests."""
    rng = np.random.default_rng(0)
    a = rng.integers(0, 10, size=600)
    b = (a + rng.integers(0, 3, size=600)) % 10   # correlated with a
    c = rng.integers(0, 4, size=600)              # independent
    return Table.from_dict("corr", {"a": a, "b": b, "c": c})


@pytest.fixture(scope="module")
def workload(table):
    return make_random_workload(table, num_queries=60, seed=7)


def qerror(estimate, actual):
    estimate = max(float(estimate), 1.0)
    actual = max(float(actual), 1.0)
    return max(estimate / actual, actual / estimate)


class TestSampling:
    def test_full_sample_is_exact(self, table, workload):
        estimator = SamplingEstimator(table, sample_fraction=1.0)
        for query, truth in zip(workload.queries[:20], workload.cardinalities[:20]):
            assert estimator.estimate(query) == pytest.approx(truth)

    def test_partial_sample_roughly_right(self, table):
        estimator = SamplingEstimator(table, sample_fraction=0.3, seed=1)
        query = Query.from_triples([("a", "<=", 5)])
        truth = cardinality(table, query)
        assert qerror(estimator.estimate(query), truth) < 2.0

    def test_invalid_fraction(self, table):
        with pytest.raises(ValueError):
            SamplingEstimator(table, sample_fraction=0.0)

    def test_size_scales_with_fraction(self, table):
        small = SamplingEstimator(table, sample_fraction=0.01)
        large = SamplingEstimator(table, sample_fraction=0.5)
        assert small.size_bytes() < large.size_bytes()


class TestIndependence:
    def test_single_column_exact(self, table):
        estimator = IndependenceEstimator(table)
        query = Query.from_triples([("a", ">=", 4)])
        assert estimator.estimate(query) == pytest.approx(cardinality(table, query))

    def test_independent_columns_nearly_exact(self, table):
        estimator = IndependenceEstimator(table)
        query = Query.from_triples([("a", "<=", 4), ("c", "=", 1)])
        truth = cardinality(table, query)
        assert qerror(estimator.estimate(query), truth) < 1.6

    def test_unsatisfiable_predicate(self, table):
        estimator = IndependenceEstimator(table)
        assert estimator.estimate(Query.from_triples([("a", "=", 99)])) == 0.0

    def test_multiple_predicates_same_column(self, table):
        estimator = IndependenceEstimator(table)
        query = Query.from_triples([("a", ">=", 2), ("a", "<=", 5)])
        assert estimator.estimate(query) == pytest.approx(cardinality(table, query))


class TestMHist:
    def test_single_bucket_equals_independence_over_full_range(self, table):
        estimator = MHistEstimator(table, num_buckets=1)
        query = Query.from_triples([("a", "<=", 9)])
        # One bucket spanning everything assumes uniformity: estimate = |T|.
        assert estimator.estimate(query) == pytest.approx(table.num_rows)

    def test_more_buckets_improve_single_column_accuracy(self, table):
        query = Query.from_triples([("a", "=", 3)])
        truth = cardinality(table, query)
        coarse = MHistEstimator(table, num_buckets=2).estimate(query)
        fine = MHistEstimator(table, num_buckets=300).estimate(query)
        assert qerror(fine, truth) <= qerror(coarse, truth)

    def test_reasonable_on_workload(self, table, workload):
        estimator = MHistEstimator(table, num_buckets=200)
        errors = [qerror(estimator.estimate(query), truth)
                  for query, truth in zip(workload.queries, workload.cardinalities)]
        assert np.median(errors) < 10.0

    def test_invalid_bucket_count(self, table):
        with pytest.raises(ValueError):
            MHistEstimator(table, num_buckets=0)

    def test_size_grows_with_buckets(self, table):
        assert (MHistEstimator(table, num_buckets=50).size_bytes()
                < MHistEstimator(table, num_buckets=200).size_bytes())


class TestMSCN:
    def test_training_reduces_loss(self, table, workload):
        estimator = MSCNEstimator(table, epochs=20, seed=0)
        estimator.fit(workload)
        assert estimator.training_losses[-1] < estimator.training_losses[0]

    def test_in_workload_accuracy_better_than_random_guess(self, table, workload):
        estimator = MSCNEstimator(table, epochs=30, seed=0).fit(workload)
        errors = [qerror(estimate, truth) for estimate, truth in
                  zip(estimator.estimate_batch(workload.queries), workload.cardinalities)]
        assert np.median(errors) < 5.0

    def test_estimates_bounded(self, table, workload):
        estimator = MSCNEstimator(table, epochs=5, seed=0).fit(workload)
        estimates = estimator.estimate_batch(workload.queries)
        assert (estimates >= 0).all()
        assert (estimates <= table.num_rows).all()

    def test_featurize_shapes(self, table):
        estimator = MSCNEstimator(table)
        queries = [Query.from_triples([("a", "=", 1)]),
                   Query.from_triples([("a", ">=", 2), ("b", "<", 5), ("c", "=", 0)])]
        features, presence = estimator.featurize(queries)
        assert features.shape == (2, 3, table.num_columns + 6)
        assert presence.sum() == 4


class TestDeepDB:
    def test_structure_contains_nodes(self, table):
        estimator = DeepDBEstimator(table, min_instances=64)
        assert estimator.num_nodes() >= table.num_columns

    def test_single_column_close_to_exact(self, table):
        estimator = DeepDBEstimator(table, min_instances=64)
        query = Query.from_triples([("a", "<=", 4)])
        assert qerror(estimator.estimate(query), cardinality(table, query)) < 1.5

    def test_workload_accuracy_better_than_independence_on_correlated_pair(self, table):
        """DeepDB should beat the independence assumption on correlated columns."""
        deepdb = DeepDBEstimator(table, min_instances=64, independence_threshold=0.05)
        indep = IndependenceEstimator(table)
        query = Query.from_triples([("a", "<=", 2), ("b", "<=", 2)])
        truth = cardinality(table, query)
        assert qerror(deepdb.estimate(query), truth) <= qerror(indep.estimate(query), truth)

    def test_estimates_bounded(self, table, workload):
        estimator = DeepDBEstimator(table, min_instances=64)
        estimates = estimator.estimate_batch(workload.queries)
        assert (estimates >= 0).all()
        assert (estimates <= table.num_rows).all()

    def test_invalid_min_instances(self, table):
        with pytest.raises(ValueError):
            DeepDBEstimator(table, min_instances=1)


class TestNaru:
    @pytest.fixture(scope="class")
    def trained(self, table):
        estimator = NaruEstimator(table, hidden_sizes=(32, 32), num_samples=100,
                                  batch_size=128, seed=0)
        estimator.fit(epochs=3)
        return estimator

    def test_training_reduces_loss(self, trained):
        assert trained.training_losses[-1] < trained.training_losses[0]

    def test_single_column_accuracy(self, trained, table):
        query = Query.from_triples([("a", "<=", 4)])
        truth = cardinality(table, query)
        assert qerror(trained.estimate(query), truth) < 2.5

    def test_workload_median_qerror_reasonable(self, trained, table, workload):
        errors = [qerror(estimate, truth) for estimate, truth in
                  zip(trained.estimate_batch(workload.queries[:30]),
                      workload.cardinalities[:30])]
        assert np.median(errors) < 5.0

    def test_not_deterministic_flag(self, trained):
        assert not trained.is_deterministic

    def test_breakdown_has_sampling_and_inference(self, trained, table):
        query = Query.from_triples([("a", "<=", 4), ("b", ">=", 2)])
        _, breakdown = trained.estimate_with_breakdown(query)
        assert breakdown["inference"] > 0
        assert breakdown["sampling"] > 0

    def test_inference_cost_grows_with_constrained_columns(self, trained, table):
        """The O(n) behaviour the paper criticises: more predicates, more passes."""
        one = Query.from_triples([("a", "<=", 8)])
        three = Query.from_triples([("a", "<=", 8), ("b", "<=", 8), ("c", "<=", 3)])
        _, breakdown_one = trained.estimate_with_breakdown(one)
        _, breakdown_three = trained.estimate_with_breakdown(three)
        assert breakdown_three["inference"] > breakdown_one["inference"]


class TestUAE:
    def test_hybrid_fit_tracks_query_loss(self, table):
        workload = make_inworkload(table, num_queries=30, seed=11)
        estimator = UAEEstimator(table, hidden_sizes=(32,), num_samples=50,
                                 num_training_samples=4, query_batch_size=4,
                                 batch_size=256, seed=0)
        estimator.fit(epochs=1, workload=workload)
        assert len(estimator.query_losses) == 1
        assert estimator.query_losses[0] > 0

    def test_requires_workload_for_query_loss(self, table):
        estimator = UAEEstimator(table, hidden_sizes=(32,), seed=0)
        with pytest.raises(RuntimeError):
            estimator._query_loss()

    def test_fit_without_workload_falls_back_to_naru(self, table):
        estimator = UAEEstimator(table, hidden_sizes=(32,), batch_size=256, seed=0)
        estimator.fit(epochs=1)
        assert len(estimator.training_losses) == 1
        assert not estimator.query_losses

    def test_invalid_training_samples(self, table):
        with pytest.raises(ValueError):
            UAEEstimator(table, num_training_samples=0)

    def test_estimates_after_hybrid_training_reasonable(self, table):
        workload = make_inworkload(table, num_queries=30, seed=12)
        estimator = UAEEstimator(table, hidden_sizes=(32, 32), num_samples=100,
                                 num_training_samples=4, query_batch_size=4,
                                 batch_size=128, seed=0)
        estimator.fit(epochs=2, workload=workload)
        query = Query.from_triples([("a", "<=", 4)])
        truth = cardinality(table, query)
        assert qerror(estimator.estimate(query), truth) < 3.0


class TestNonNegativeContract:
    """The interface guarantees ``estimate >= 0`` for every estimator."""

    def test_negative_overrides_are_clamped(self, table):
        from repro.core import CardinalityEstimator

        class BrokenEstimator(CardinalityEstimator):
            name = "broken"

            def estimate(self, query):
                return -42.0

            def estimate_batch(self, queries):
                return np.full(len(queries), -7.5)

        broken = BrokenEstimator(table)
        query = Query.from_triples([("a", "=", 3)])
        assert broken.estimate(query) == 0.0
        assert np.array_equal(broken.estimate_batch([query, query]), np.zeros(2))
        assert broken.estimate_selectivity(query) == 0.0

    def test_default_estimate_batch_clamps_too(self, table):
        from repro.core import CardinalityEstimator

        class LoopedEstimator(CardinalityEstimator):
            name = "looped"

            def estimate(self, query):
                return -1.0

        # Clamping applies in estimate() before the base batch loop runs,
        # and the base loop clamps again on its own.
        looped = LoopedEstimator(table)
        query = Query.from_triples([("a", "=", 3)])
        assert np.array_equal(looped.estimate_batch([query] * 3), np.zeros(3))

    @pytest.mark.parametrize("build", [
        lambda table: SamplingEstimator(table, sample_fraction=0.05, seed=0),
        lambda table: IndependenceEstimator(table),
        lambda table: MHistEstimator(table, num_buckets=8),
    ])
    def test_baselines_never_negative_on_workload(self, table, workload, build):
        estimator = build(table)
        estimates = estimator.estimate_batch(workload.queries)
        assert np.all(estimates >= 0.0)
        assert all(estimator.estimate(query) >= 0.0 for query in workload.queries)
