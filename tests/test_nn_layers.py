"""Tests for layers, functional ops, MADE, optimisers, and serialisation."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn import Tensor


class TestLinear:
    def test_forward_shape(self):
        layer = nn.Linear(4, 7, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 7)

    def test_gradient_flows_to_parameters(self):
        layer = nn.Linear(4, 2, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((3, 4)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        np.testing.assert_allclose(layer.bias.grad, np.full(2, 3.0))

    def test_no_bias(self):
        layer = nn.Linear(4, 2, bias=False)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1


class TestMaskedLinear:
    def test_mask_zeroes_connections(self):
        layer = nn.MaskedLinear(3, 2, rng=np.random.default_rng(0))
        mask = np.zeros((3, 2))
        mask[0, 0] = 1
        layer.set_mask(mask)
        inputs = np.eye(3)
        out = layer(Tensor(inputs)).numpy() - layer.bias.numpy()
        # Only input 0 -> output 0 is connected.
        assert abs(out[1, 0]) < 1e-12
        assert abs(out[2, 0]) < 1e-12
        assert abs(out[0, 1]) < 1e-12

    def test_bad_mask_shape_rejected(self):
        layer = nn.MaskedLinear(3, 2)
        with pytest.raises(ValueError):
            layer.set_mask(np.ones((2, 3)))


class TestEmbedding:
    def test_lookup_shape(self):
        emb = nn.Embedding(10, 4, rng=np.random.default_rng(0))
        out = emb(np.array([1, 2, 3]))
        assert out.shape == (3, 4)

    def test_gradient_accumulates_on_repeated_index(self):
        emb = nn.Embedding(5, 2, rng=np.random.default_rng(0))
        out = emb(np.array([1, 1, 2]))
        out.sum().backward()
        np.testing.assert_allclose(emb.weight.grad[1], [2.0, 2.0])
        np.testing.assert_allclose(emb.weight.grad[2], [1.0, 1.0])
        np.testing.assert_allclose(emb.weight.grad[0], [0.0, 0.0])

    def test_out_of_range_raises(self):
        emb = nn.Embedding(5, 2)
        with pytest.raises(IndexError):
            emb(np.array([5]))


class TestSequentialAndModule:
    def test_parameter_discovery(self):
        model = nn.Sequential(nn.Linear(3, 4), nn.ReLU(), nn.Linear(4, 2))
        names = [name for name, _ in model.named_parameters()]
        assert len(names) == 4
        assert model.num_parameters() == 3 * 4 + 4 + 4 * 2 + 2

    def test_forward_chain(self):
        model = nn.Sequential(nn.Linear(3, 4), nn.ReLU(), nn.Linear(4, 2))
        out = model(Tensor(np.ones((5, 3))))
        assert out.shape == (5, 2)

    def test_state_dict_roundtrip(self):
        model = nn.Sequential(nn.Linear(3, 4), nn.ReLU(), nn.Linear(4, 2))
        clone = nn.Sequential(nn.Linear(3, 4), nn.ReLU(), nn.Linear(4, 2))
        clone.load_state_dict(model.state_dict())
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3)))
        np.testing.assert_allclose(model(x).numpy(), clone(x).numpy())

    def test_state_dict_mismatch_raises(self):
        model = nn.Linear(3, 4)
        with pytest.raises(KeyError):
            model.load_state_dict({"bogus": np.zeros(1)})

    def test_size_bytes(self):
        model = nn.Linear(10, 10)
        assert model.size_bytes() == (100 + 10) * 4


class TestLSTM:
    def test_cell_shapes(self):
        cell = nn.LSTMCell(3, 5, rng=np.random.default_rng(0))
        hidden, cell_state = cell(Tensor(np.ones((2, 3))))
        assert hidden.shape == (2, 5)
        assert cell_state.shape == (2, 5)

    def test_sequence_output_length(self):
        lstm = nn.LSTM(3, 5, num_layers=2, rng=np.random.default_rng(0))
        sequence = [Tensor(np.ones((2, 3))) for _ in range(4)]
        outputs = lstm(sequence)
        assert len(outputs) == 4
        assert outputs[-1].shape == (2, 5)

    def test_gradients_reach_first_step(self):
        lstm = nn.LSTM(2, 3, rng=np.random.default_rng(0))
        sequence = [Tensor(np.ones((1, 2)), requires_grad=True) for _ in range(3)]
        outputs = lstm(sequence)
        outputs[-1].sum().backward()
        assert sequence[0].grad is not None


class TestFunctional:
    def test_softmax_sums_to_one(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(4, 6)))
        probs = F.softmax(logits).numpy()
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(4), atol=1e-10)
        assert (probs >= 0).all()

    def test_log_softmax_stability_large_values(self):
        logits = Tensor(np.array([[1000.0, 1000.0, 1000.0]]))
        out = F.log_softmax(logits).numpy()
        np.testing.assert_allclose(out, np.log(np.ones((1, 3)) / 3), atol=1e-8)

    def test_cross_entropy_matches_manual(self):
        logits = Tensor(np.array([[2.0, 0.0, -1.0], [0.0, 3.0, 0.0]]), requires_grad=True)
        targets = np.array([0, 1])
        loss = F.cross_entropy(logits, targets)
        manual = -np.log(np.exp([2.0, 3.0]) / np.array(
            [np.exp([2.0, 0.0, -1.0]).sum(), np.exp([0.0, 3.0, 0.0]).sum()]))
        np.testing.assert_allclose(loss.item(), manual.mean(), atol=1e-10)

    def test_cross_entropy_gradient_is_softmax_minus_onehot(self):
        logits = Tensor(np.array([[1.0, 2.0, 3.0]]), requires_grad=True)
        F.cross_entropy(logits, np.array([2])).backward()
        probs = np.exp([1.0, 2.0, 3.0]) / np.exp([1.0, 2.0, 3.0]).sum()
        expected = probs.copy()
        expected[2] -= 1
        np.testing.assert_allclose(logits.grad[0], expected, atol=1e-10)

    def test_mse(self):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = F.mse_loss(pred, np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)

    def test_binary_cross_entropy_bounds(self):
        probs = Tensor(np.array([0.0, 1.0]))
        loss = F.binary_cross_entropy(probs, np.array([0.0, 1.0]))
        assert np.isfinite(loss.item())

    def test_gumbel_softmax_is_distribution(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(5, 4)))
        sample = F.gumbel_softmax(logits, temperature=0.5,
                                  rng=np.random.default_rng(1)).numpy()
        np.testing.assert_allclose(sample.sum(axis=1), np.ones(5), atol=1e-8)

    def test_gumbel_softmax_bad_temperature(self):
        with pytest.raises(ValueError):
            F.gumbel_softmax(Tensor(np.zeros((1, 2))), temperature=0.0)

    def test_qerror_symmetric(self):
        estimate = Tensor(np.array([10.0, 2.0]))
        actual = np.array([2.0, 10.0])
        q = F.qerror(estimate, actual).numpy()
        np.testing.assert_allclose(q, [5.0, 5.0])

    def test_qerror_floor(self):
        q = F.qerror(Tensor(np.array([0.0])), np.array([0.0])).numpy()
        np.testing.assert_allclose(q, [1.0])

    def test_mapped_qerror_compresses(self):
        estimate = Tensor(np.array([1e6]))
        actual = np.array([1.0])
        mapped = F.mapped_qerror_loss(estimate, actual).item()
        assert mapped == pytest.approx(np.log2(1e6 + 1))

    def test_qerror_gradient_flows(self):
        estimate = Tensor(np.array([10.0]), requires_grad=True)
        F.mapped_qerror_loss(estimate, np.array([2.0])).backward()
        assert estimate.grad is not None
        assert estimate.grad[0] > 0


class TestMADE:
    def test_output_shape(self):
        made = nn.MADE(input_bins=[3, 4, 2], output_bins=[5, 6, 4], hidden_sizes=[16, 16])
        out = made(Tensor(np.ones((7, 9))))
        assert out.shape == (7, 15)

    def test_column_logits_slicing(self):
        made = nn.MADE(input_bins=[3, 4], output_bins=[5, 6], hidden_sizes=[8])
        out = made(Tensor(np.ones((2, 7))))
        assert made.column_logits(out, 0).shape == (2, 5)
        assert made.column_logits(out, 1).shape == (2, 6)

    def test_autoregressive_property_by_perturbation(self):
        """Output block i must not change when inputs of columns >= i change."""
        made = nn.MADE(input_bins=[2, 3, 2], output_bins=[3, 4, 3],
                       hidden_sizes=[24, 24], seed=3)
        rng = np.random.default_rng(0)
        base = rng.normal(size=(1, 7))
        base_out = made(Tensor(base)).numpy()
        for column in range(3):
            block = made.blocks[column]
            perturbed = base.copy()
            perturbed[:, block.input_start:] += rng.normal(size=(1, 7 - block.input_start))
            out = made(Tensor(perturbed)).numpy()
            np.testing.assert_allclose(
                out[:, block.output_start:block.output_end],
                base_out[:, block.output_start:block.output_end],
                err_msg=f"output for column {column} depends on columns >= {column}")

    def test_first_column_unconditional(self):
        made = nn.MADE(input_bins=[2, 2], output_bins=[3, 3], hidden_sizes=[8])
        a = made(Tensor(np.zeros((1, 4)))).numpy()[:, :3]
        b = made(Tensor(np.ones((1, 4)) * 5)).numpy()[:, :3]
        np.testing.assert_allclose(a, b)

    def test_residual_variant_runs(self):
        made = nn.MADE(input_bins=[2, 3], output_bins=[4, 5],
                       hidden_sizes=[16, 16, 16], residual=True)
        out = made(Tensor(np.ones((2, 5))))
        assert out.shape == (2, 9)

    def test_residual_preserves_autoregressive_property(self):
        made = nn.MADE(input_bins=[2, 2, 2], output_bins=[3, 3, 3],
                       hidden_sizes=[12, 12, 12], residual=True, seed=5)
        base = np.zeros((1, 6))
        perturbed = base.copy()
        perturbed[0, 2:] = 9.0
        np.testing.assert_allclose(
            made(Tensor(base)).numpy()[:, :3],
            made(Tensor(perturbed)).numpy()[:, :3])

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            nn.MADE(input_bins=[2], output_bins=[2, 3], hidden_sizes=[4])
        with pytest.raises(ValueError):
            nn.MADE(input_bins=[], output_bins=[], hidden_sizes=[4])
        with pytest.raises(ValueError):
            nn.MADE(input_bins=[0], output_bins=[2], hidden_sizes=[4])

    def test_wrong_input_width_raises(self):
        made = nn.MADE(input_bins=[2, 2], output_bins=[2, 2], hidden_sizes=[4])
        with pytest.raises(ValueError):
            made(Tensor(np.ones((1, 5))))

    def test_training_reduces_loss_on_toy_distribution(self):
        """MADE should learn a strongly dependent two-column distribution."""
        rng = np.random.default_rng(0)
        n = 512
        col0 = rng.integers(0, 3, size=n)
        col1 = (col0 + 1) % 3  # deterministic dependency
        onehot = np.zeros((n, 6))
        onehot[np.arange(n), col0] = 1
        onehot[np.arange(n), 3 + col1] = 1

        made = nn.MADE(input_bins=[3, 3], output_bins=[3, 3], hidden_sizes=[32], seed=0)
        optimizer = nn.Adam(made.parameters(), lr=5e-3)
        losses = []
        for _ in range(60):
            out = made(Tensor(onehot))
            loss = (F.cross_entropy(made.column_logits(out, 0), col0)
                    + F.cross_entropy(made.column_logits(out, 1), col1))
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        # col0 is uniform over 3 values (entropy ln 3 ~= 1.10) and col1 is a
        # deterministic function of col0 (entropy 0), so the optimum is ~1.10.
        assert losses[-1] < losses[0] * 0.6
        assert losses[-1] < 1.25


class TestOptimisers:
    def _quadratic_problem(self):
        target = np.array([3.0, -2.0])
        parameter = Tensor(np.zeros(2), requires_grad=True)
        return parameter, target

    def test_sgd_converges(self):
        parameter, target = self._quadratic_problem()
        optimizer = nn.SGD([parameter], lr=0.1)
        for _ in range(200):
            loss = ((parameter - Tensor(target)) ** 2).sum()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(parameter.data, target, atol=1e-3)

    def test_sgd_momentum_converges(self):
        parameter, target = self._quadratic_problem()
        optimizer = nn.SGD([parameter], lr=0.05, momentum=0.9)
        for _ in range(200):
            loss = ((parameter - Tensor(target)) ** 2).sum()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(parameter.data, target, atol=1e-2)

    def test_adam_converges(self):
        parameter, target = self._quadratic_problem()
        optimizer = nn.Adam([parameter], lr=0.1)
        for _ in range(300):
            loss = ((parameter - Tensor(target)) ** 2).sum()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(parameter.data, target, atol=1e-2)

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)

    def test_invalid_lr_rejected(self):
        parameter = Tensor(np.zeros(1), requires_grad=True)
        with pytest.raises(ValueError):
            nn.Adam([parameter], lr=0.0)

    def test_clip_grad_norm(self):
        parameter = Tensor(np.zeros(4), requires_grad=True)
        parameter.grad = np.full(4, 10.0)
        norm_before = nn.clip_grad_norm([parameter], max_norm=1.0)
        assert norm_before == pytest.approx(20.0)
        assert np.linalg.norm(parameter.grad) == pytest.approx(1.0)


class TestSerialization:
    def test_save_and_load_roundtrip(self, tmp_path):
        model = nn.Sequential(nn.Linear(3, 4), nn.ReLU(), nn.Linear(4, 2))
        path = tmp_path / "model.npz"
        nn.save_module(model, path, metadata={"dataset": "census"})

        clone = nn.Sequential(nn.Linear(3, 4), nn.ReLU(), nn.Linear(4, 2))
        metadata = nn.load_module(clone, path)
        assert metadata == {"dataset": "census"}
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3)))
        np.testing.assert_allclose(model(x).numpy(), clone(x).numpy())

    def test_roundtrip_without_npz_suffix(self, tmp_path):
        model = nn.Sequential(nn.Linear(3, 4), nn.ReLU(), nn.Linear(4, 2))
        for filename in ("model", "model.v1", "checkpoint.backup"):
            metadata = {"dataset": "census", "epoch": 7, "note": filename}
            returned = nn.save_module(model, tmp_path / filename, metadata=metadata)
            # save_module must return the file numpy actually wrote.
            assert returned.exists()
            assert returned.name == filename + ".npz"

            clone = nn.Sequential(nn.Linear(3, 4), nn.ReLU(), nn.Linear(4, 2))
            # Loading works through the returned path and the original one.
            assert nn.load_module(clone, returned) == metadata
            assert nn.load_module(clone, tmp_path / filename) == metadata
            x = Tensor(np.random.default_rng(1).normal(size=(2, 3)))
            np.testing.assert_allclose(model(x).numpy(), clone(x).numpy())

    def test_suffixed_path_is_not_doubled(self, tmp_path):
        model = nn.Sequential(nn.Linear(2, 2))
        returned = nn.save_module(model, tmp_path / "weights.npz")
        assert returned == tmp_path / "weights.npz"
        assert returned.exists()
        assert not (tmp_path / "weights.npz.npz").exists()
