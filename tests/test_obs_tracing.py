"""Tests of request tracing (:mod:`repro.obs.tracing`) and its serving wiring.

The acceptance bar from the observability issue lives here: a traced
cache-miss request through the full service (cache -> batcher -> compiled
plan) must yield a span tree with at least four distinct stages whose
top-level spans sum to within 20% of the recorded request latency.
"""

import threading

import numpy as np
import pytest

from repro.core import (
    DuetConfig,
    DuetEstimator,
    DuetModel,
    ObsConfig,
    ServingConfig,
)
from repro.data import Table
from repro.obs import Span, Trace, Tracer
from repro.serving import EstimationService
from repro.workload import Query


@pytest.fixture(scope="module")
def table() -> Table:
    rng = np.random.default_rng(0)
    return Table.from_dict("tiny", {
        "age": rng.integers(18, 66, size=400),
        "city": rng.choice(["ams", "ber", "cdg", "dus"], size=400),
        "score": rng.integers(0, 10, size=400),
    })


def make_service(table, **config_kwargs) -> EstimationService:
    # Untrained weights are fine: tracing measures the path, not accuracy.
    estimator = DuetEstimator(
        DuetModel(table, DuetConfig(hidden_sizes=(16, 16), seed=0)))
    return EstimationService(estimator, config=ServingConfig(**config_kwargs))


# ----------------------------------------------------------------------
# Tracer / Trace primitives
# ----------------------------------------------------------------------
class TestTracer:
    def test_rate_zero_samples_nothing(self):
        tracer = Tracer(sample_rate=0.0)
        assert not tracer.enabled
        assert all(tracer.maybe_trace() is None for _ in range(100))
        assert tracer.traces_started == 0

    def test_rate_one_samples_everything(self):
        tracer = Tracer(sample_rate=1.0)
        traces = [tracer.maybe_trace(detail=index) for index in range(10)]
        assert all(isinstance(trace, Trace) for trace in traces)
        assert tracer.traces_started == 10

    def test_fractional_rate_is_roughly_respected(self):
        tracer = Tracer(sample_rate=0.25, seed=7)
        sampled = sum(tracer.maybe_trace() is not None for _ in range(4000))
        assert 800 <= sampled <= 1200  # ~1000 expected, generous band

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)
        with pytest.raises(ValueError):
            Tracer(sample_rate=0.5, keep_slowest=0)

    def test_slowest_keeps_the_worst_n_in_order(self):
        tracer = Tracer(sample_rate=1.0, keep_slowest=3)
        for duration in (0.5, 0.1, 0.9, 0.3, 0.7):
            trace = tracer.maybe_trace()
            trace.root.duration = duration  # bypass the wall clock
            tracer._record(trace)
        durations = [trace.duration for trace in tracer.slowest()]
        assert durations == [0.9, 0.7, 0.5]
        assert [trace.duration for trace in tracer.slowest(2)] == [0.9, 0.7]
        tracer.clear()
        assert tracer.slowest() == []

    def test_recording_is_thread_safe(self):
        tracer = Tracer(sample_rate=1.0, keep_slowest=16)
        barrier = threading.Barrier(4)

        def record_many() -> None:
            barrier.wait()
            for _ in range(200):
                tracer.maybe_trace().finish()

        threads = [threading.Thread(target=record_many) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert tracer.traces_started == 800
        assert len(tracer.slowest()) == 16


class TestTraceTree:
    def test_batch_span_expands_breakdown_with_wait(self):
        tracer = Tracer(sample_rate=1.0)
        trace = tracer.maybe_trace()
        trace.attach_breakdown(
            {"translate": 0.010, "encode": 0.005, "inference": 0.015},
            batch_size=4)
        batch = trace.add_batch_span(0.050)
        names = [span.name for span in batch.children]
        assert names == ["wait", "translate", "encode", "forward"]
        wait = batch.children[0]
        assert wait.duration == pytest.approx(0.020)  # 0.050 - staged 0.030
        assert sum(span.duration for span in batch.children) == (
            pytest.approx(batch.duration))
        assert trace.batch_size == 4

    def test_batch_span_without_breakdown_stays_flat(self):
        trace = Tracer(sample_rate=1.0).maybe_trace()
        batch = trace.add_batch_span(0.01)
        assert batch.children == []

    def test_format_tree_renders_every_span(self):
        trace = Tracer(sample_rate=1.0).maybe_trace(detail="age = 3")
        trace.add("cache_lookup", 0.001)
        trace.attach_breakdown({"translate": 0.002, "encode": 0.001,
                                "inference": 0.003}, batch_size=2)
        trace.add_batch_span(0.01)
        trace.finish(cache_hit=False)
        rendered = trace.format_tree()
        for name in ("cache_lookup", "batch", "wait", "translate",
                     "encode", "forward"):
            assert name in rendered
        assert "age = 3" in rendered and "(batch of 2)" in rendered

    def test_span_walk_covers_descendants(self):
        root = Span("request")
        child = root.child("batch", duration=0.01)
        child.child("forward", duration=0.005)
        assert [span.name for span in root.walk()] == [
            "request", "batch", "forward"]


# ----------------------------------------------------------------------
# End-to-end: traced requests through the service
# ----------------------------------------------------------------------
class TestServiceTracing:
    def test_cache_miss_trace_has_stages_that_sum_to_latency(self, table):
        with make_service(table, inference_dtype="float32",
                          obs=ObsConfig(trace_sample_rate=1.0)) as service:
            service.estimate(Query.from_triples([("age", ">=", 30)]))
            traces = [trace for trace in service.tracer.slowest()
                      if not trace.cache_hit]
            assert traces
            trace = traces[0]
            # The acceptance bar: >= 4 distinct stages on a miss...
            assert len(trace.stage_names()) >= 4
            assert {"cache_lookup", "batch"} <= trace.stage_names()
            # ...and the top-level spans account for the recorded latency.
            accounted = sum(span.duration for span in trace.root.children)
            assert accounted == pytest.approx(trace.duration,
                                              rel=0.20)

    def test_cache_hit_trace_is_marked_and_shallow(self, table):
        with make_service(table, obs=ObsConfig(trace_sample_rate=1.0)
                          ) as service:
            query = Query.from_triples([("score", "<=", 5)])
            service.estimate(query)
            service.estimate(query)  # second time is a cache hit
            hits = [trace for trace in service.tracer.slowest()
                    if trace.cache_hit]
            assert hits
            assert hits[0].stage_names() == {"cache_lookup"}

    def test_unbatched_path_still_attributes_stages(self, table):
        with make_service(table, micro_batching=False, cache_capacity=0,
                          inference_dtype="float32",
                          obs=ObsConfig(trace_sample_rate=1.0)) as service:
            service.estimate(Query.from_triples([("age", ">=", 30)]))
            trace = service.tracer.slowest(1)[0]
            assert {"translate", "encode", "forward"} <= trace.stage_names()
            assert trace.batch_size == 1

    def test_rate_zero_leaves_no_traces(self, table):
        with make_service(table) as service:  # ObsConfig() defaults: off
            assert service.tracer.sample_rate == 0.0
            service.estimate(Query.from_triples([("age", ">=", 30)]))
            assert service.tracer.slowest() == []
            assert service.tracer.traces_started == 0

    def test_sample_rate_is_tunable_on_a_live_service(self, table):
        with make_service(table, cache_capacity=0) as service:
            service.estimate(Query.from_triples([("age", ">=", 30)]))
            assert service.tracer.slowest() == []
            service.tracer.sample_rate = 1.0  # flip tracing on in flight
            service.estimate(Query.from_triples([("age", ">=", 31)]))
            assert len(service.tracer.slowest()) == 1

    def test_traced_and_untraced_estimates_agree(self, table):
        query = Query.from_triples([("age", ">=", 30), ("score", "<=", 5)])
        with make_service(table, cache_capacity=0) as plain:
            expected = plain.estimate(query)
        with make_service(table, cache_capacity=0,
                          obs=ObsConfig(trace_sample_rate=1.0,
                                        profile_plan_stages=True)) as traced:
            assert traced.estimate(query) == pytest.approx(expected)


# ----------------------------------------------------------------------
# Plan profiling through the service
# ----------------------------------------------------------------------
class TestPlanProfiling:
    def test_profile_report_accumulates_per_stage(self, table):
        with make_service(table, inference_dtype="float32", cache_capacity=0,
                          obs=ObsConfig(profile_plan_stages=True)) as service:
            for value in (30, 40, 50):
                service.estimate(Query.from_triples([("age", ">=", value)]))
            report = service.profile_report()
            assert report is not None
            assert set(report["phases"]) == {"encode", "forward", "mask"}
            assert all(stats["calls"] > 0 and stats["seconds"] > 0
                       for stats in report["phases"].values())
            assert report["made_stages"]
            for stage in report["made_stages"]:
                assert stage["calls"] > 0 and stage["seconds"] >= 0.0

    def test_profiling_off_reports_nothing(self, table):
        with make_service(table, inference_dtype="float32",
                          cache_capacity=0) as service:
            service.estimate(Query.from_triples([("age", ">=", 30)]))
            report = service.profile_report()
            assert report is None or all(
                stats["calls"] == 0 for stats in report["phases"].values())


# ----------------------------------------------------------------------
# ObsConfig validation
# ----------------------------------------------------------------------
class TestObsConfig:
    def test_defaults_are_all_off(self):
        config = ObsConfig()
        assert config.trace_sample_rate == 0.0
        assert not config.profile_plan_stages

    def test_validation(self):
        with pytest.raises(ValueError):
            ObsConfig(trace_sample_rate=2.0)
        with pytest.raises(ValueError):
            ObsConfig(trace_keep_slowest=0)
        with pytest.raises(ValueError):
            ObsConfig(export_interval_seconds=0.0)
