"""Tests for the relational data substrate (columns, tables, datasets, stats)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    Column,
    Table,
    TableStatistics,
    correlation_matrix,
    cramers_v,
    load_csv,
    make_census,
    make_dataset,
    make_dmv,
    make_kddcup98,
)
from repro.data.datasets import ColumnSpec, SyntheticTableSpec, generate_table


class TestColumn:
    def test_from_values_sorted_codes(self):
        column = Column.from_values("c", ["b", "a", "c", "a"])
        assert column.num_distinct == 3
        assert list(column.distinct_values) == ["a", "b", "c"]
        np.testing.assert_array_equal(column.codes, [1, 0, 2, 0])

    def test_from_codes(self):
        column = Column.from_codes("c", [0, 1, 2, 1], num_distinct=4)
        assert column.num_distinct == 4
        assert column.num_rows == 4

    def test_code_of_and_value_of_roundtrip(self):
        column = Column.from_values("c", [10, 20, 30])
        for value in (10, 20, 30):
            assert column.value_of(column.code_of(value)) == value

    def test_code_of_missing_raises(self):
        column = Column.from_values("c", [10, 20, 30])
        with pytest.raises(KeyError):
            column.code_of(15)

    def test_searchsorted_between_values(self):
        column = Column.from_values("c", [10, 20, 30])
        assert column.searchsorted(15) == 1
        assert column.searchsorted(20, side="right") == 2

    def test_value_counts_and_frequencies(self):
        column = Column.from_values("c", [1, 1, 2, 3, 3, 3])
        np.testing.assert_array_equal(column.value_counts(), [2, 1, 3])
        np.testing.assert_allclose(column.frequencies().sum(), 1.0)

    def test_invalid_codes_rejected(self):
        with pytest.raises(ValueError):
            Column("c", np.array([1, 2]), np.array([0, 2]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Column.from_values("c", [])

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_encoding_preserves_order(self, values):
        """Dictionary codes must preserve the order of raw values."""
        column = Column.from_values("c", values)
        decoded = column.distinct_values[column.codes]
        np.testing.assert_array_equal(decoded, np.asarray(values))
        assert np.all(np.diff(column.distinct_values) > 0)


class TestTable:
    def _toy(self):
        return Table.from_dict("toy", {
            "a": [1, 2, 3, 1, 2],
            "b": ["x", "x", "y", "y", "z"],
        })

    def test_shape(self):
        table = self._toy()
        assert table.num_rows == 5
        assert table.num_columns == 2
        assert table.column_names == ["a", "b"]
        assert len(table) == 5

    def test_code_matrix_shape(self):
        assert self._toy().code_matrix().shape == (5, 2)

    def test_column_lookup_by_name_and_index(self):
        table = self._toy()
        assert table.column("a") is table.column(0)
        assert table.column_index("b") == 1

    def test_unknown_column_raises(self):
        with pytest.raises(KeyError):
            self._toy().column("missing")

    def test_row_returns_raw_values(self):
        assert self._toy().row(2) == [3, "y"]

    def test_project(self):
        projected = self._toy().project(["b"])
        assert projected.column_names == ["b"]
        assert projected.num_rows == 5

    def test_sample_rows(self):
        sampled = self._toy().sample_rows(10, rng=np.random.default_rng(0))
        assert sampled.shape == (10, 2)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Table("bad", [Column.from_values("a", [1, 2]),
                          Column.from_values("b", [1, 2, 3])])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Table("bad", [Column.from_values("a", [1]), Column.from_values("a", [2])])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Table("bad", [])


class TestSyntheticDatasets:
    def test_dmv_shape(self):
        table = make_dmv(scale=0.001)
        assert table.num_columns == 11
        assert table.num_rows >= 1_000
        ndvs = table.cardinalities
        assert min(ndvs) == 2
        assert max(ndvs) <= 2774

    def test_kddcup_shape(self):
        table = make_kddcup98(scale=0.02)
        assert table.num_columns == 100
        assert all(2 <= ndv <= 57 for ndv in table.cardinalities)

    def test_kddcup_reduced_columns(self):
        table = make_kddcup98(scale=0.02, num_columns=10)
        assert table.num_columns == 10

    def test_kddcup_bad_columns(self):
        with pytest.raises(ValueError):
            make_kddcup98(num_columns=1)

    def test_census_shape(self):
        table = make_census(scale=0.05)
        assert table.num_columns == 14
        assert max(table.cardinalities) <= 123

    def test_deterministic_given_seed(self):
        first = make_census(scale=0.05, seed=3).code_matrix()
        second = make_census(scale=0.05, seed=3).code_matrix()
        np.testing.assert_array_equal(first, second)

    def test_different_seed_differs(self):
        first = make_census(scale=0.05, seed=3).code_matrix()
        second = make_census(scale=0.05, seed=4).code_matrix()
        assert not np.array_equal(first, second)

    def test_make_dataset_by_name(self):
        assert make_dataset("census", scale=0.05).name == "census"
        with pytest.raises(KeyError):
            make_dataset("imaginary")

    def test_skew_produces_nonuniform_marginals(self):
        table = make_dmv(scale=0.001)
        frequencies = table.column("fuel_type").frequencies()
        assert frequencies.max() > 2.0 / len(frequencies)

    def test_correlation_exists_between_derived_columns(self):
        table = make_census(scale=0.05)
        value = cramers_v(table.column("education").codes,
                          table.column("education_num").codes)
        assert value > 0.8

    def test_derived_from_unknown_column_rejected(self):
        spec = SyntheticTableSpec("bad", 100, (
            ColumnSpec("child", 5, derived_from="parent"),
            ColumnSpec("parent", 5),
        ))
        with pytest.raises(ValueError):
            generate_table(spec)


class TestStatistics:
    def test_table_statistics_summary(self):
        table = make_census(scale=0.05)
        statistics = TableStatistics(table)
        assert len(statistics.columns) == table.num_columns
        text = statistics.summary()
        assert "census" in text
        assert "education" in text

    def test_entropy_zero_for_constant_column(self):
        table = Table.from_dict("t", {"c": [1, 1, 1, 1]})
        statistics = TableStatistics(table)
        assert statistics.columns[0].entropy == pytest.approx(0.0)

    def test_cramers_v_bounds(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 5, size=2000)
        independent = rng.integers(0, 5, size=2000)
        assert cramers_v(a, a) > 0.99
        assert cramers_v(a, independent) < 0.1

    def test_cramers_v_mismatched_length(self):
        with pytest.raises(ValueError):
            cramers_v(np.array([0, 1]), np.array([0, 1, 2]))

    def test_correlation_matrix_symmetric(self):
        table = make_census(scale=0.05)
        matrix = correlation_matrix(table, max_rows=2_000)
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), 1.0)


class TestCsvLoader:
    def _write_csv(self, tmp_path, text):
        path = tmp_path / "data.csv"
        path.write_text(text)
        return path

    def test_basic_load(self, tmp_path):
        path = self._write_csv(tmp_path, "a,b\n1,x\n2,y\n1,x\n")
        table = load_csv(path)
        assert table.num_rows == 3
        assert table.column_names == ["a", "b"]
        assert table.column("a").num_distinct == 2

    def test_numeric_coercion(self, tmp_path):
        path = self._write_csv(tmp_path, "a\n10\n2\n30\n")
        table = load_csv(path)
        # Numeric order, not lexicographic order.
        assert list(table.column("a").distinct_values) == [2, 10, 30]

    def test_float_coercion(self, tmp_path):
        path = self._write_csv(tmp_path, "a\n1.5\n0.5\n")
        table = load_csv(path)
        assert list(table.column("a").distinct_values) == [0.5, 1.5]

    def test_usecols_and_max_rows(self, tmp_path):
        path = self._write_csv(tmp_path, "a,b,c\n1,x,9\n2,y,8\n3,z,7\n")
        table = load_csv(path, usecols=["c", "a"], max_rows=2)
        assert table.column_names == ["c", "a"]
        assert table.num_rows == 2

    def test_missing_values_tokenised(self, tmp_path):
        path = self._write_csv(tmp_path, "a,b\n1,\n2,y\n")
        table = load_csv(path)
        assert "<missing>" in list(table.column("b").distinct_values)

    def test_unknown_usecols(self, tmp_path):
        path = self._write_csv(tmp_path, "a\n1\n")
        with pytest.raises(KeyError):
            load_csv(path, usecols=["zzz"])

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_csv(tmp_path / "nope.csv")

    def test_empty_file(self, tmp_path):
        path = self._write_csv(tmp_path, "")
        with pytest.raises(ValueError):
            load_csv(path)

    def test_header_only(self, tmp_path):
        path = self._write_csv(tmp_path, "a,b\n")
        with pytest.raises(ValueError):
            load_csv(path)
