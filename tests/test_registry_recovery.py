"""Tests of the crash-safe registry: atomic checkpoint writes, per-entry
checksums, failed-swap rollback (``discard``), the fault-injection seams in
``ModelRegistry.save``, and the startup ``recover()`` pass that quarantines
whatever a crash left behind (corrupt files, uncommitted orphan version
directories, an unreadable manifest) instead of failing to start.
"""

import json

import numpy as np
import pytest

from repro.core import DuetConfig, DuetModel, DuetTrainer
from repro.data import Table
from repro.lifecycle import FaultInjector, FaultSpec, SimulatedCrash
from repro.serving import ModelRegistry

CONFIG = DuetConfig(hidden_sizes=(8, 8), epochs=1, batch_size=64,
                    expand_coefficient=1, lambda_query=0.0, seed=0)


@pytest.fixture()
def model():
    rng = np.random.default_rng(3)
    table = Table.from_dict("crash", {
        "a": rng.integers(0, 20, size=120),
        "b": rng.choice(["x", "y", "z"], size=120),
    })
    model = DuetModel(table, CONFIG)
    DuetTrainer(model, table, config=CONFIG).train(1)
    return model


@pytest.fixture()
def registry(tmp_path, model):
    registry = ModelRegistry(tmp_path / "registry")
    registry.save(model, dataset="crash")
    return registry


# ----------------------------------------------------------------------
# Atomic writes + checksums
# ----------------------------------------------------------------------
class TestAtomicSave:
    def test_no_scratch_files_survive_a_save(self, registry):
        leftovers = [path for path in registry.root.rglob("*.tmp*")]
        assert leftovers == []

    def test_overwriting_a_version_keeps_it_loadable(self, registry, model):
        registry.save(model, dataset="crash", version="v1")
        assert registry.load_estimator("crash", "v1") is not None
        assert list(registry.root.rglob("*.tmp*")) == []

    def test_manifest_records_checksums(self, registry):
        manifest = json.loads(registry.manifest_path.read_text())
        record = manifest["datasets"]["crash"]["versions"]["v1"]
        assert set(record["checksums"]) == {"model.npz", "schema.npz"}
        assert all(len(digest) == 64 for digest in record["checksums"].values())


# ----------------------------------------------------------------------
# discard(): the failed-swap rollback
# ----------------------------------------------------------------------
class TestDiscard:
    def test_discard_removes_record_and_files(self, registry, model):
        entry = registry.save(model, dataset="crash")
        assert registry.discard("crash", entry.version) is True
        assert entry.version not in registry.versions("crash")
        assert not entry.directory.exists()
        # latest fell back to the surviving version
        assert registry.latest_version("crash") == "v1"
        assert registry.load_estimator("crash") is not None

    def test_discard_unknown_version_is_a_noop(self, registry):
        assert registry.discard("crash", "v99") is False
        assert registry.discard("nope", "v1") is False
        assert registry.versions("crash") == ["v1"]


# ----------------------------------------------------------------------
# Fault seams in save()
# ----------------------------------------------------------------------
class TestSaveFaults:
    def test_io_error_at_save_leaves_registry_untouched(self, registry, model):
        FaultInjector([FaultSpec(site="registry.save", kind="io_error")]).arm(
            registry=registry)
        with pytest.raises(OSError):
            registry.save(model, dataset="crash")
        FaultInjector.disarm(registry=registry)
        assert registry.versions("crash") == ["v1"]
        assert registry.load_estimator("crash") is not None

    def test_crash_between_checkpoint_and_manifest_leaves_orphan(
            self, registry, model):
        FaultInjector([FaultSpec(site="registry.manifest", kind="crash")]).arm(
            registry=registry)
        with pytest.raises(SimulatedCrash):
            registry.save(model, dataset="crash")
        FaultInjector.disarm(registry=registry)
        # Files landed but the manifest never committed: invisible to loads...
        assert registry.versions("crash") == ["v1"]
        assert (registry.root / "crash" / "v2" / "model.npz").exists()
        # ...and recover() sweeps the orphan into quarantine.
        report = ModelRegistry(registry.root).recover()
        assert [(q.dataset, q.version, q.reason) for q in report.quarantined] \
            == [("crash", "v2", "orphan")]
        assert not (registry.root / "crash" / "v2").exists()
        assert report.quarantined[0].moved_to.exists()


# ----------------------------------------------------------------------
# recover()
# ----------------------------------------------------------------------
class TestRecover:
    def test_clean_registry_is_untouched(self, registry):
        before = registry.manifest_path.read_text()
        report = registry.recover()
        assert report.clean
        assert report.checked == 1
        assert report.quarantined == ()
        assert registry.manifest_path.read_text() == before

    def test_corrupt_model_file_is_quarantined(self, registry, model):
        entry = registry.save(model, dataset="crash")  # v2, becomes latest
        entry.model_path.write_bytes(b"torn write garbage")
        fresh = ModelRegistry(registry.root)
        report = fresh.recover()
        assert [(q.version, q.reason) for q in report.quarantined] == [
            ("v2", "checksum_mismatch")]
        # latest re-pointed at the surviving version; service still loadable
        assert fresh.latest_version("crash") == "v1"
        assert fresh.load_estimator("crash") is not None
        assert not entry.directory.exists()

    def test_missing_files_are_quarantined(self, registry, model):
        entry = registry.save(model, dataset="crash")
        entry.model_path.unlink()
        report = ModelRegistry(registry.root).recover()
        assert [q.reason for q in report.quarantined] == ["missing_model"]

    def test_missing_schema_is_quarantined(self, registry, model):
        entry = registry.save(model, dataset="crash")
        entry.schema_path.unlink()
        report = ModelRegistry(registry.root).recover()
        assert [q.reason for q in report.quarantined] == ["missing_schema"]

    def test_unreadable_manifest_is_rebuilt_from_disk(self, registry):
        registry.manifest_path.write_text("{not json")
        fresh = ModelRegistry(registry.root)
        report = fresh.recover()
        assert report.manifest_rebuilt
        assert ("crash", "v1") in report.adopted
        assert fresh.latest_version("crash") == "v1"
        assert fresh.load_estimator("crash") is not None
        # the poisoned manifest is preserved for post-mortems
        assert (registry.root / "manifest.json.corrupt").exists()

    def test_recover_is_idempotent(self, registry, model):
        entry = registry.save(model, dataset="crash")
        entry.model_path.unlink()
        ModelRegistry(registry.root).recover()
        second = ModelRegistry(registry.root).recover()
        assert second.clean
        assert second.quarantined == ()
