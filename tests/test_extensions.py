"""Tests for the paper's extension features.

* Disjunctive (OR) queries via inclusion-exclusion (§III "Supported Queries").
* Importance-sampling guidance for Algorithm 1 from historical workloads
  (§IV-C's temporal-locality discussion).
"""

import numpy as np
import pytest

from repro.baselines import IndependenceEstimator, SamplingEstimator
from repro.core import (
    DuetConfig,
    DuetEstimator,
    DuetModel,
    DuetTrainer,
    PredicateGuidance,
    VirtualTableSampler,
    conjoin,
    estimate_disjunction,
)
from repro.data import Table
from repro.workload import Operator, Query, Workload, cardinality, execute, make_inworkload


@pytest.fixture(scope="module")
def table():
    rng = np.random.default_rng(0)
    a = rng.integers(0, 8, size=500)
    b = rng.integers(0, 5, size=500)
    return Table.from_dict("ext", {"a": a, "b": b})


class TestDisjunction:
    def _true_union(self, table, disjuncts):
        mask = np.zeros(table.num_rows, dtype=bool)
        for query in disjuncts:
            mask |= execute(table, query)
        return int(mask.sum())

    def test_conjoin_concatenates_predicates(self):
        first = Query.from_triples([("a", ">=", 2)])
        second = Query.from_triples([("b", "=", 1)])
        combined = conjoin(first, second)
        assert combined.num_predicates == 2
        assert combined.columns == ["a", "b"]

    def test_exact_estimator_gives_exact_union(self, table):
        """With an exact estimator (full sample), inclusion-exclusion is exact."""
        estimator = SamplingEstimator(table, sample_fraction=1.0)
        disjuncts = [Query.from_triples([("a", "<=", 2)]),
                     Query.from_triples([("a", ">=", 6)]),
                     Query.from_triples([("b", "=", 1)])]
        estimate = estimate_disjunction(estimator, disjuncts)
        assert estimate == pytest.approx(self._true_union(table, disjuncts))

    def test_single_disjunct_equals_plain_estimate(self, table):
        estimator = IndependenceEstimator(table)
        query = Query.from_triples([("a", "=", 1)])
        assert estimate_disjunction(estimator, [query]) == pytest.approx(
            estimator.estimate(query))

    def test_disjoint_branches_add_up(self, table):
        estimator = SamplingEstimator(table, sample_fraction=1.0)
        disjuncts = [Query.from_triples([("a", "=", 0)]),
                     Query.from_triples([("a", "=", 1)])]
        expected = sum(cardinality(table, query) for query in disjuncts)
        assert estimate_disjunction(estimator, disjuncts) == pytest.approx(expected)

    def test_truncated_expansion_is_bounded(self, table):
        estimator = SamplingEstimator(table, sample_fraction=1.0)
        disjuncts = [Query.from_triples([("a", "<=", 4)]),
                     Query.from_triples([("a", ">=", 3)]),
                     Query.from_triples([("b", "<=", 2)])]
        truncated = estimate_disjunction(estimator, disjuncts, max_terms=2)
        assert 0 <= truncated <= table.num_rows

    def test_empty_disjunct_list_rejected(self, table):
        with pytest.raises(ValueError):
            estimate_disjunction(IndependenceEstimator(table), [])

    def test_works_with_trained_duet(self, table):
        config = DuetConfig(hidden_sizes=(24,), epochs=2, batch_size=128,
                            expand_coefficient=2, lambda_query=0.0, seed=0)
        model = DuetModel(table, config)
        DuetTrainer(model, table, config=config).train()
        estimator = DuetEstimator(model)
        # Disjuncts on different columns so the pairwise intersection stays a
        # single-predicate-per-column query (the model was built without MPSN).
        disjuncts = [Query.from_triples([("a", "<=", 1)]),
                     Query.from_triples([("b", "=", 1)])]
        estimate = estimate_disjunction(estimator, disjuncts)
        truth = self._true_union(table, disjuncts)
        assert 0 <= estimate <= table.num_rows
        qerror = max(estimate, truth) / max(min(estimate, truth), 1.0)
        assert qerror < 5.0

    def test_same_column_intersections_need_multi_predicate_duet(self, table):
        """Intersections that stack predicates on one column require MPSN mode."""
        config = DuetConfig(hidden_sizes=(24,), epochs=1, batch_size=128,
                            expand_coefficient=1, lambda_query=0.0,
                            multi_predicate=True, max_predicates_per_column=2, seed=0)
        model = DuetModel(table, config)
        DuetTrainer(model, table, config=config).train(epochs=1)
        estimator = DuetEstimator(model)
        disjuncts = [Query.from_triples([("a", "<=", 3)]),
                     Query.from_triples([("a", ">=", 2)])]
        estimate = estimate_disjunction(estimator, disjuncts)
        assert 0 <= estimate <= table.num_rows


class TestPredicateGuidance:
    def test_from_workload_shapes(self, table):
        workload = make_inworkload(table, num_queries=100, seed=42)
        guidance = PredicateGuidance.from_workload(table, workload)
        assert len(guidance.operator_weights) == table.num_columns
        assert len(guidance.literal_histograms) == table.num_columns
        for column_index, column in enumerate(table.columns):
            np.testing.assert_allclose(guidance.operator_weights[column_index].sum(), 1.0)
            assert guidance.literal_histograms[column_index].shape == (column.num_distinct,)

    def test_guided_sampling_preserves_anchor_invariant(self, table):
        """Importance sampling must not break Algorithm 1's core invariant."""
        workload = make_inworkload(table, num_queries=100, seed=42)
        guidance = PredicateGuidance.from_workload(table, workload)
        config = DuetConfig(expand_coefficient=2, seed=0)
        sampler = VirtualTableSampler(table.cardinalities, config, seed=0,
                                      guidance=guidance)
        anchors = table.sample_rows(200, rng=np.random.default_rng(1))
        batch = sampler.sample_batch(anchors)
        assert sampler.verify_batch(batch)

    def test_guided_sampling_biases_towards_historical_operators(self, table):
        """If history only ever uses '<=', guided samples should prefer it."""
        only_le = Workload("le", [
            Query.from_triples([("a", "<=", value)]) for value in range(1, 8)
        ])
        guidance = PredicateGuidance.from_workload(table, only_le)
        config = DuetConfig(expand_coefficient=1, wildcard_probability=0.0, seed=0)
        guided = VirtualTableSampler(table.cardinalities, config, seed=0, guidance=guidance)
        uniform = VirtualTableSampler(table.cardinalities, config, seed=0)
        anchors = table.sample_rows(600, rng=np.random.default_rng(2))
        guided_ops = guided.sample_batch(anchors).ops[:, 0, 0]
        uniform_ops = uniform.sample_batch(anchors).ops[:, 0, 0]
        le_index = Operator.LE.index
        guided_share = float((guided_ops == le_index).mean())
        uniform_share = float((uniform_ops == le_index).mean())
        assert guided_share > uniform_share * 2

    def test_guided_literals_follow_history(self, table):
        """Literals should concentrate on the historical literal codes."""
        column = table.column("a")
        favourite = column.value_of(3)
        history = Workload("hist", [
            Query.from_triples([("a", "<=", favourite)]) for _ in range(20)
        ])
        guidance = PredicateGuidance.from_workload(table, history)
        config = DuetConfig(expand_coefficient=1, wildcard_probability=0.0, seed=0)
        sampler = VirtualTableSampler(table.cardinalities, config, seed=0,
                                      guidance=guidance)
        # Anchors with value 0 make every "<=" literal in [0, 7] feasible.
        anchors = np.zeros((500, 2), dtype=np.int64)
        batch = sampler.sample_batch(anchors)
        le_literals = batch.values[:, 0, 0][batch.ops[:, 0, 0] == Operator.LE.index]
        assert le_literals.size > 0
        # Code 3 holds nearly all the historical mass, so it should dominate.
        assert (le_literals == 3).mean() > 0.5

    def test_trainer_accepts_guidance(self, table):
        workload = make_inworkload(table, num_queries=50, seed=42)
        guidance = PredicateGuidance.from_workload(table, workload)
        config = DuetConfig(hidden_sizes=(16,), epochs=1, batch_size=128,
                            expand_coefficient=1, seed=0)
        model = DuetModel(table, config)
        trainer = DuetTrainer(model, table, workload, config, guidance=guidance)
        history = trainer.train(epochs=1)
        assert history.data_losses[0] > 0
