"""Metamorphic tests of the delete/tombstone lifecycle.

The specification of a delete is *equivalence with a rebuild*: after any
interleaving of appends and deletes, the store's live view must equal the
table rebuilt from scratch over the surviving raw rows, and delta labeling
(``base + appended - removed``) must equal a full rescan of the live view
bit-for-bit.  The suite drives randomized interleavings against a plain
Python reference model plus the targeted edge cases — deletes across chunk
boundaries, zero-row deletes, deleting a whole chunk, delete-then-append of
the same values (codes must not shift or be reused incorrectly), dictionary
growth over tombstoned chunks, and compaction.
"""

import numpy as np
import pytest

from repro.data import ColumnStore, Table
from repro.workload import (
    Query,
    make_random_workload,
    true_cardinalities,
    true_cardinalities_delta,
)


def _decoded_rows(table: Table) -> list[tuple]:
    return [tuple(table.row(index)) for index in range(table.num_rows)]


def _rebuilt(reference: list[tuple], column_names: list[str]) -> Table:
    data = {name: [row[position] for row in reference]
            for position, name in enumerate(column_names)}
    return Table.from_dict("rebuilt", data)


def _random_mask(rng: np.random.Generator, live_rows: int,
                 at_most: float = 0.5) -> np.ndarray:
    count = int(rng.integers(0, max(int(live_rows * at_most), 1) + 1))
    mask = np.zeros(live_rows, dtype=bool)
    mask[rng.choice(live_rows, size=count, replace=False)] = True
    return mask


def _seed_store(seed: int, rows: int = 150) -> tuple[ColumnStore, list[tuple]]:
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 25, size=rows)
    b = rng.choice(list("wxyz"), size=rows)
    store = ColumnStore.from_dict("meta", {"a": a, "b": b})
    return store, list(zip(a.tolist(), b.tolist()))


# ----------------------------------------------------------------------
# Randomized interleavings vs the reference model
# ----------------------------------------------------------------------
class TestRandomInterleavings:
    @pytest.mark.parametrize("seed", range(6))
    def test_live_view_equals_rebuild_and_delta_equals_rescan(self, seed):
        store, reference = _seed_store(seed)
        rng = np.random.default_rng(1000 + seed)
        base = store.snapshot()
        workload = make_random_workload(base, num_queries=50, seed=seed,
                                        label=False)
        base_counts = true_cardinalities(base, workload.queries)

        for _ in range(8):
            if rng.random() < 0.45 and len(reference) > 1:
                mask = _random_mask(rng, len(reference))
                store.delete(mask)
                reference[:] = [row for keep, row in zip(~mask, reference)
                                if keep]
            else:
                count = int(rng.integers(0, 40))
                a = rng.integers(0, 25, size=count)
                b = rng.choice(list("wxyz"), size=count)
                store.append({"a": a, "b": b})
                reference.extend(zip(a.tolist(), b.tolist()))

            live = store.snapshot()
            # Live view == rebuilt-from-scratch table, row for row.
            assert live.num_rows == len(reference)
            assert _decoded_rows(live) == reference
            # Delta labeling == full rescan of the live view, bit for bit.
            delta = store.delta(base)
            assert delta.surviving_base_rows + delta.appended_rows == live.num_rows
            np.testing.assert_array_equal(
                true_cardinalities_delta(delta, workload.queries, base_counts),
                true_cardinalities(live, workload.queries))
            # ... and equals the rebuilt table's own ground truth.
            if reference:
                np.testing.assert_array_equal(
                    true_cardinalities(_rebuilt(reference, live.column_names),
                                       workload.queries),
                    true_cardinalities(live, workload.queries))

    @pytest.mark.parametrize("seed", range(3))
    def test_rolling_base_stays_exact(self, seed):
        """Delta labeling from *intermediate* versions (the monitor's
        roll-forward pattern) stays exact across mixed churn."""
        store, reference = _seed_store(seed)
        rng = np.random.default_rng(2000 + seed)
        base = store.snapshot()
        workload = make_random_workload(base, num_queries=40, seed=seed,
                                        label=False)
        counts = true_cardinalities(base, workload.queries)
        version = base.data_version
        for _ in range(6):
            if rng.random() < 0.5 and store.num_rows > 1:
                store.delete(_random_mask(rng, store.num_rows, at_most=0.3))
            else:
                count = int(rng.integers(1, 30))
                store.append({"a": rng.integers(0, 25, size=count),
                              "b": rng.choice(list("wxyz"), size=count)})
            delta = store.delta(version)
            assert delta.base_version == version
            counts = true_cardinalities_delta(delta, workload.queries, counts)
            version = store.data_version
            np.testing.assert_array_equal(
                counts, true_cardinalities(store.snapshot(), workload.queries))


# ----------------------------------------------------------------------
# Targeted edge cases
# ----------------------------------------------------------------------
class TestDeleteEdgeCases:
    def test_delete_across_chunk_boundaries(self):
        store = ColumnStore.from_dict("t", {"a": [1, 2, 3, 4]})
        store.append({"a": [5, 6, 7]})
        store.append({"a": [8, 9]})          # chunks: 4 + 3 + 2 rows
        base = store.snapshot()
        # Rows 2..6 straddle all three chunk boundaries.
        store.delete(np.arange(2, 7))
        live = store.snapshot()
        assert [row[0] for row in _decoded_rows(live)] == [1, 2, 8, 9]
        delta = store.delta(base)
        assert delta.removed_rows == 5
        assert sorted(row[0] for row in _decoded_rows(delta.removed)) == [
            3, 4, 5, 6, 7]
        assert delta.appended_rows == 0

    def test_zero_row_delete_is_a_noop(self):
        store = ColumnStore.from_dict("t", {"a": [1, 2, 3]})
        before = store.snapshot()
        assert store.delete(np.zeros(3, dtype=bool)) is before
        assert store.delete(np.empty(0, dtype=np.int64)) is before
        assert store.delete(Query.from_triples([("a", ">=", 99)])) is before
        assert store.data_version == before.data_version

    def test_delete_whole_chunk(self):
        store = ColumnStore.from_dict("t", {"a": [1, 2]})
        store.append({"a": [3, 4]})
        store.append({"a": [5, 6]})
        base = store.snapshot()
        store.delete(np.array([2, 3]))        # exactly the middle chunk
        live = store.snapshot()
        assert [row[0] for row in _decoded_rows(live)] == [1, 2, 5, 6]
        delta = store.delta(base)
        assert sorted(row[0] for row in _decoded_rows(delta.removed)) == [3, 4]
        # Compaction reclaims the dead chunk without changing the live view.
        compacted = store.compact()
        assert store.physical_rows == store.num_rows == 4
        assert [row[0] for row in _decoded_rows(compacted)] == [1, 2, 5, 6]

    def test_delete_then_append_same_values_keeps_codes_stable(self):
        store = ColumnStore.from_dict("t", {"a": [10, 20, 20, 30]})
        code_of_20 = store.snapshot().column("a").code_of(20)
        ndv = store.snapshot().column("a").num_distinct
        # Tombstone every row holding 20: the dictionary must NOT shrink.
        store.delete(Query.from_triples([("a", "=", 20)]))
        after_delete = store.snapshot()
        assert after_delete.column("a").num_distinct == ndv
        assert after_delete.column("a").code_of(20) == code_of_20
        # Re-appending 20 is a domain-preserving fast path reusing the same
        # code — neighbouring values must not shift.
        version = store.data_version
        reappended = store.append({"a": [20, 40]})
        assert reappended.data_version == version + 1
        assert reappended.column("a").code_of(20) == code_of_20
        assert [row[0] for row in _decoded_rows(reappended)] == [10, 30, 20, 40]
        query = Query.from_triples([("a", "=", 20)])
        assert true_cardinalities(reappended, [query])[0] == 1

    def test_dictionary_growth_over_tombstoned_chunks(self):
        """A growth append remaps every chunk; tombstones are positional and
        must keep masking the same rows through the remap."""
        store = ColumnStore.from_dict("t", {"a": [10, 30, 50, 70]})
        store.delete(np.array([1, 3]))        # kill 30 and 70
        base = store.snapshot()
        store.append({"a": [20, 60]})         # lands mid-domain: full remap
        live = store.snapshot()
        assert [row[0] for row in _decoded_rows(live)] == [10, 50, 20, 60]
        delta = store.delta(base)
        assert delta.grown_columns == ("a",)
        assert delta.removed is None          # nothing removed since base
        assert [row[0] for row in _decoded_rows(delta.appended)] == [20, 60]

    def test_delete_complement_equals_table_select(self):
        """Deleting ``mask`` must leave exactly ``snapshot.select(~mask)``:
        the tombstone path and the plain row-gather agree code-for-code
        (domains are untouched by a delete, so codes are comparable)."""
        store, _ = _seed_store(11)
        before = store.snapshot()
        rng = np.random.default_rng(11)
        mask = _random_mask(rng, before.num_rows)
        store.delete(mask)
        np.testing.assert_array_equal(store.snapshot().code_matrix(),
                                      before.select(~mask).code_matrix())

    def test_table_select_validates_selectors(self):
        table = Table.from_dict("t", {"a": [1, 2, 3]})
        np.testing.assert_array_equal(
            table.select([2, 0]).column("a").codes, [2, 0])
        assert table.select(np.empty(0, dtype=np.int64)).num_rows == 0
        with pytest.raises(ValueError, match="mask has shape"):
            table.select(np.zeros(5, dtype=bool))
        with pytest.raises(IndexError, match="out of range"):
            table.select([3])
        with pytest.raises(TypeError, match="boolean mask or integer"):
            table.select(np.array([0.5, 1.5]))

    def test_delete_validates_selectors(self):
        store = ColumnStore.from_dict("t", {"a": [1, 2, 3]})
        with pytest.raises(ValueError, match="mask has shape"):
            store.delete(np.zeros(5, dtype=bool))
        with pytest.raises(IndexError, match="out of range"):
            store.delete(np.array([3]))
        with pytest.raises(IndexError, match="out of range"):
            store.delete(np.array([-1]))

    def test_old_snapshots_survive_deletes(self):
        store = ColumnStore.from_dict("t", {"a": [1, 2, 3, 4]})
        old = store.snapshot()
        codes = old.column("a").codes.copy()
        store.delete(np.array([0, 2]))
        np.testing.assert_array_equal(old.column("a").codes, codes)
        assert old.num_rows == 4
        assert store.snapshot().num_rows == 2

    def test_pure_delete_counts_as_staleness(self):
        store = ColumnStore.from_dict("t", {"a": list(range(10))})
        version = store.data_version
        store.delete(np.arange(4))
        assert store.rows_since(version) == 4
        store.append({"a": [1, 2]})
        assert store.rows_since(version) == 6  # churn: deletes + appends

    def test_tombstone_fraction_tracks_dead_rows(self):
        store = ColumnStore.from_dict("t", {"a": list(range(10))})
        assert store.tombstone_fraction == 0.0
        store.delete(np.arange(4))
        assert store.tombstone_fraction == pytest.approx(0.4)
        assert store.physical_rows == 10 and store.num_rows == 6


# ----------------------------------------------------------------------
# Compaction
# ----------------------------------------------------------------------
class TestCompaction:
    def test_compact_preserves_live_view_bit_for_bit(self):
        store, reference = _seed_store(3)
        rng = np.random.default_rng(3)
        store.append({"a": rng.integers(0, 25, size=40),
                      "b": rng.choice(list("wxyz"), size=40)})
        store.delete(_random_mask(rng, store.num_rows, at_most=0.4))
        before = store.snapshot()
        workload = make_random_workload(before, num_queries=30, seed=4,
                                        label=False)
        counts = true_cardinalities(before, workload.queries)
        compacted = store.compact()
        assert compacted.data_version == before.data_version + 1
        np.testing.assert_array_equal(compacted.code_matrix(),
                                      before.code_matrix())
        np.testing.assert_array_equal(
            true_cardinalities(compacted, workload.queries), counts)
        assert store.physical_rows == store.num_rows
        assert store.tombstone_fraction == 0.0

    def test_compact_without_dead_rows_is_a_noop(self):
        store = ColumnStore.from_dict("t", {"a": [1, 2, 3]})
        before = store.snapshot()
        assert store.compact() is before
        assert store.data_version == before.data_version

    def test_compaction_does_not_add_churn(self):
        store = ColumnStore.from_dict("t", {"a": list(range(12))})
        store.delete(np.arange(5))
        version = store.data_version
        store.compact()
        # The live set did not change: a model trained at `version` is not
        # made stale by the physical rewrite.
        assert store.rows_since(version) == 0

    def test_delta_across_compaction_degrades_to_unknown_base(self):
        store = ColumnStore.from_dict("t", {"a": list(range(12))})
        base = store.snapshot()
        store.delete(np.arange(5))
        store.compact()
        delta = store.delta(base)
        assert delta.base_version == 0          # documented degradation
        assert delta.appended_rows == store.num_rows
        assert delta.removed is None
        # Post-compaction bases work normally again.
        rebased = store.snapshot()
        store.delete(np.array([0]))
        fresh = store.delta(rebased)
        assert fresh.base_version == rebased.data_version
        assert fresh.removed_rows == 1

    def test_old_snapshots_survive_compaction(self):
        store = ColumnStore.from_dict("t", {"a": [5, 6, 7, 8]})
        old = store.snapshot()
        store.delete(np.array([1]))
        store.compact()
        assert [row[0] for row in _decoded_rows(old)] == [5, 6, 7, 8]
        assert [row[0] for row in _decoded_rows(store.snapshot())] == [5, 7, 8]
