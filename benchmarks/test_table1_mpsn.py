"""Table I: comparison of the three MPSN candidates (MLP / REC / RNN)."""

from conftest import run_once

from repro.eval import table1_mpsn_comparison


def test_table1_mpsn_comparison(benchmark, scale):
    result = run_once(benchmark, table1_mpsn_comparison,
                      kinds=("mlp", "recursive", "rnn"), dataset="census", scale=scale)
    print()
    print(result.render())

    rows = {row.name: row for row in result.rows}
    assert set(rows) == {"mlp", "recursive", "rnn"}
    # Shape check (paper's Table I): the MLP MPSN is the cheapest to train
    # and to run, which is why the paper selects it as the default.
    assert rows["mlp"].training_cost_seconds <= rows["rnn"].training_cost_seconds
    assert rows["mlp"].estimation_cost_ms <= rows["rnn"].estimation_cost_ms
    # Accuracy of all three candidates stays in the same ballpark.
    best = min(row.max_qerror for row in result.rows)
    assert all(row.max_qerror <= 25 * best for row in result.rows)
