"""Figure 8: convergence speed (max Q-Error per epoch) on random queries."""

from conftest import run_once

from repro.eval import convergence_study


def test_fig8_convergence_rand_q(benchmark, scale, naru_samples):
    result = run_once(benchmark, convergence_study, workload_kind="rand-q",
                      dataset="census", scale=scale, naru_samples=naru_samples)
    print()
    print(result.render())

    curves = result.max_qerror
    assert set(curves) == {"duet", "duet-d", "naru", "uae"}
    for name, series in curves.items():
        assert len(series) == len(result.epochs)
        # Convergence: the best epoch is no worse than the first epoch.
        assert min(series) <= series[0] * 1.2, name
