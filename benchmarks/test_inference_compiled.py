"""Compiled grad-free inference vs the autograd tape path.

Not a paper table — this benchmark covers the compiled inference engine
(:mod:`repro.nn.inference` + :class:`repro.core.CompiledDuetModel`): the
paper's DMV configuration (high-NDV table, 512-256-512-128-1024 MADE) is
replayed in serving-sized micro-batches through three execution paths:

* ``tape``             — the autograd ``Tensor`` path (training oracle);
* ``compiled-float64`` — lowered plans, masks folded, fused masked
  selectivity, reusable buffers;
* ``compiled-float32`` — the same plans in single precision (the serving
  default for throughput-critical deployments).

Asserted shape: the compiled float32 plan sustains >= 3x the tape path's
batch-estimation throughput (the ISSUE's acceptance bar), float64 compiled
is materially faster than the tape too, and both agree with the tape to
within the documented tolerances (1e-6 relative for float64 — measured
agreement is ~1e-15).  The run also records/compares the
``BENCH_inference.json`` snapshot so later sessions can track the
throughput trajectory.
"""

import pytest

from conftest import record_bench_snapshot

from repro.eval import compiled_inference_cost

MICRO_BATCH = 8      # what the serving micro-batcher typically coalesces
NUM_QUERIES = 1024


@pytest.fixture(scope="module")
def result():
    return compiled_inference_cost(dataset="dmv", batch_size=MICRO_BATCH,
                                   num_queries=NUM_QUERIES, repeats=3)


def test_compiled_throughput_and_equivalence(result):
    print()
    print(result.render())
    print(f"max relative error vs tape: float64 {result.max_rel_error_float64:.2e}, "
          f"float32 {result.max_rel_error_float32:.2e}")

    tape = result.paths["tape"]
    compiled64 = result.paths["compiled-float64"]
    compiled32 = result.paths["compiled-float32"]
    for metrics in (tape, compiled64, compiled32):
        assert metrics["qps"] > 0
        assert metrics["encoding_ms"] >= 0 and metrics["inference_ms"] > 0

    # The acceptance bar: the compiled serving plan sustains >= 3x the tape
    # path's batch-estimation throughput at serving micro-batch sizes.
    assert result.speedup("compiled-float32") >= 3.0
    # Full precision is also materially faster (folded masks, fused zero-out,
    # no per-op graph bookkeeping), just without the halved memory traffic.
    assert result.speedup("compiled-float64") >= 1.5

    # The compiled phase split shifts: inference shrinks, encoding does not
    # grow — the Fig.-7-style breakdown is reported for both paths above.
    assert compiled64["inference_ms"] < tape["inference_ms"]
    assert compiled32["inference_ms"] < tape["inference_ms"]

    # Numerical contract: float64 matches the tape within 1e-6 relative,
    # float32 within single-precision resolution.
    assert result.max_rel_error_float64 < 1e-6
    assert result.max_rel_error_float32 < 5e-4


def test_bench_snapshot_trajectory(result):
    """Record (first run) or compare (later runs) the throughput snapshot.

    The comparison is informational — wall-clock margins are machine
    dependent, so regressions are printed, not asserted; the CI job runs
    this non-blocking and surfaces the report in its log.
    """
    regressions = record_bench_snapshot("inference", result.to_metrics())
    assert isinstance(regressions, list)
