"""Training-step micro-benchmark: the optimiser must stay allocation-free.

Not a paper table — this guards the in-place ``Adam``/``SGD`` updates and
the single-pass ``clip_grad_norm``: one optimiser step over a DMV-sized
Duet model must not allocate memory proportional to the parameter count
(no ``gradient ** 2`` / ``corrected_*`` temporaries, ``parameter.data``
updated in place).  The allocation bound is checked with ``tracemalloc``
(NumPy registers its buffers there), which is machine-independent; the
steps-per-second comparison against a deliberately allocating reference
implementation is recorded in the ``BENCH_training_step.json`` snapshot.
"""

import time
import tracemalloc

import numpy as np

from conftest import record_bench_snapshot

from repro import nn
from repro.core import DuetModel
from repro.core.config import dmv_config
from repro.data import make_census

STEPS = 30


class _AllocatingAdam(nn.Optimizer):
    """The pre-optimisation Adam, kept as the timing reference."""

    def __init__(self, parameters, lr=2e-3, betas=(0.9, 0.999), eps=1e-8):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._step_count = 0
        self._first = [np.zeros_like(p.data) for p in self.parameters]
        self._second = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        self._step_count += 1
        correction1 = 1.0 - self.beta1 ** self._step_count
        correction2 = 1.0 - self.beta2 ** self._step_count
        for parameter, first, second in zip(self.parameters, self._first,
                                            self._second):
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            first *= self.beta1
            first += (1.0 - self.beta1) * gradient
            second *= self.beta2
            second += (1.0 - self.beta2) * gradient ** 2
            corrected_first = first / correction1
            corrected_second = second / correction2
            parameter.data = parameter.data - self.lr * corrected_first / (
                np.sqrt(corrected_second) + self.eps)


def _populate_gradients(model):
    values = np.full((32, model.num_columns, 1), -1, dtype=np.int64)
    ops = np.full((32, model.num_columns, 1), -1, dtype=np.int64)
    outputs = model.forward(values, ops)
    outputs.sum().backward()


def _steps_per_second(optimizer, model, steps=STEPS):
    optimizer.step()  # warm-up (first-step lazy work, cache effects)
    started = time.perf_counter()
    for _ in range(steps):
        nn.clip_grad_norm(model.parameters(), 10.0)
        optimizer.step()
    return steps / (time.perf_counter() - started)


def test_training_step_is_allocation_free_and_fast():
    table = make_census(scale=0.04, seed=0)
    model = DuetModel(table, dmv_config(seed=0))
    _populate_gradients(model)
    parameter_bytes = sum(p.data.nbytes for p in model.parameters())
    optimizer = nn.Adam(model.parameters(), lr=2e-3)
    optimizer.step()  # warm up any lazy state before tracing

    tracemalloc.start()
    before = tracemalloc.take_snapshot()
    nn.clip_grad_norm(model.parameters(), 10.0)
    optimizer.step()
    after = tracemalloc.take_snapshot()
    tracemalloc.stop()
    allocated = sum(max(stat.size_diff, 0)
                    for stat in after.compare_to(before, "filename"))

    # The guard: one step + clip must not allocate anywhere near the model
    # size (the old implementation allocated ~5x parameter_bytes per step).
    assert allocated < parameter_bytes / 4, (
        f"optimizer step allocated {allocated} bytes "
        f"(model holds {parameter_bytes})")

    in_place_sps = _steps_per_second(optimizer, model)

    reference_model = DuetModel(table, dmv_config(seed=0))
    _populate_gradients(reference_model)
    reference_sps = _steps_per_second(_AllocatingAdam(reference_model.parameters()),
                                      reference_model)

    print(f"\nAdam steps/s: in-place {in_place_sps:.1f} vs "
          f"allocating reference {reference_sps:.1f} "
          f"({in_place_sps / reference_sps:.2f}x) over "
          f"{parameter_bytes / 1e6:.1f} MB of parameters")
    # In-place must never be meaningfully slower than the allocating form.
    assert in_place_sps > 0.75 * reference_sps

    record_bench_snapshot("training_step", {
        "in_place_steps_per_s_qps": in_place_sps,
        "reference_steps_per_s_qps": reference_sps,
        "step_alloc_bytes": float(allocated),
    })


def test_sgd_momentum_step_is_allocation_free():
    table = make_census(scale=0.04, seed=0)
    model = DuetModel(table, dmv_config(seed=0))
    _populate_gradients(model)
    parameter_bytes = sum(p.data.nbytes for p in model.parameters())
    optimizer = nn.SGD(model.parameters(), lr=1e-2, momentum=0.9,
                       weight_decay=1e-4)
    optimizer.step()

    tracemalloc.start()
    before = tracemalloc.take_snapshot()
    optimizer.step()
    after = tracemalloc.take_snapshot()
    tracemalloc.stop()
    allocated = sum(max(stat.size_diff, 0)
                    for stat in after.compare_to(before, "filename"))
    assert allocated < parameter_bytes / 4
