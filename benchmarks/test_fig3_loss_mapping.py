"""Figure 3: the log2 mapping keeps L_query on the same scale as L_data."""

from conftest import run_once

from repro.eval import figure3_loss_mapping


def test_fig3_loss_mapping(benchmark, scale):
    result = run_once(benchmark, figure3_loss_mapping, dataset="dmv", scale=scale)
    print()
    print(result.render())

    # Shape check: the raw Q-Error starts orders of magnitude above the data
    # loss, while the mapped loss is on the same order as L_data.
    assert result.raw_qerror[0] > result.mapped_query_loss[0]
    assert result.mapped_query_loss[0] < 10 * max(result.data_loss[0], 1.0)
    # The mapped query loss decreases (or at least does not explode) over
    # training, which is the stability argument of Figure 3.
    assert result.mapped_query_loss[-1] <= result.mapped_query_loss[0] * 1.5
