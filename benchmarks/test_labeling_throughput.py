"""Ground-truth labeling throughput guard.

Every experiment labels its workloads with exact cardinalities before any
model runs, so labeling speed bounds the whole suite.  This guard pins the
chunked ``true_cardinalities`` implementation against the naive per-query
executor loop: the vectorised path must not be slower, and in practice is
several times faster because each constrained column's code array is
scanned once per chunk instead of once per query.

The append-then-label case guards the data lifecycle's incremental path:
after an append, ``true_cardinalities_delta`` scans only the appended rows,
so relabeling a workload costs a fraction of a full rescan — the labeling
analogue of fine-tuning instead of retraining.
"""

import time

import numpy as np

from repro.data import ColumnStore, make_dmv
from repro.workload import (
    cardinality,
    make_random_workload,
    true_cardinalities,
    true_cardinalities_delta,
)


def test_chunked_labeling_beats_per_query_loop(benchmark):
    table = make_dmv(scale=0.004, seed=0)
    workload = make_random_workload(table, num_queries=400, seed=17, label=False)

    started = time.perf_counter()
    naive = np.array([cardinality(table, query) for query in workload],
                     dtype=np.int64)
    naive_seconds = time.perf_counter() - started

    chunked = benchmark(true_cardinalities, table, workload.queries)

    np.testing.assert_array_equal(chunked, naive)
    chunked_seconds = benchmark.stats.stats.mean
    print(f"\nlabeling {len(workload)} queries on {table.num_rows} rows: "
          f"per-query {naive_seconds:.3f}s vs chunked {chunked_seconds:.3f}s "
          f"({naive_seconds / max(chunked_seconds, 1e-9):.1f}x)")
    # Guard: chunked labeling must not regress behind the per-query loop.
    assert chunked_seconds <= naive_seconds


def test_delta_labeling_beats_full_relabel(benchmark):
    """After a 10% append, delta labeling must be >=2x a full rescan."""
    table = make_dmv(scale=0.004, seed=0)
    store = ColumnStore.from_table(table)
    base = store.snapshot()
    workload = make_random_workload(base, num_queries=400, seed=17, label=False)
    base_counts = true_cardinalities(base, workload.queries)

    # Append 10% more rows drawn from the existing domains (the fast path a
    # steady-state ingest hits); literals stay comparable across versions.
    rng = np.random.default_rng(42)
    append_rows = table.num_rows // 10
    store.append({
        name: base.column(name).distinct_values[
            rng.integers(0, base.column(name).num_distinct, size=append_rows)]
        for name in base.column_names
    })
    snapshot = store.snapshot()
    delta = store.delta(base)

    started = time.perf_counter()
    full = true_cardinalities(snapshot, workload.queries)
    full_seconds = time.perf_counter() - started

    counts = benchmark(true_cardinalities_delta, delta, workload.queries,
                       base_counts)
    np.testing.assert_array_equal(counts, full)
    delta_seconds = benchmark.stats.stats.mean
    print(f"\nrelabeling {len(workload)} queries after a {append_rows}-row "
          f"append on {snapshot.num_rows} rows: full {full_seconds:.3f}s vs "
          f"delta {delta_seconds:.3f}s "
          f"({full_seconds / max(delta_seconds, 1e-9):.1f}x)")
    # Guard: scanning 10% of the rows must save at least half the work.
    assert delta_seconds * 2 <= full_seconds
