"""Ground-truth labeling throughput guard.

Every experiment labels its workloads with exact cardinalities before any
model runs, so labeling speed bounds the whole suite.  This guard pins the
chunked ``true_cardinalities`` implementation against the naive per-query
executor loop: the vectorised path must not be slower, and in practice is
several times faster because each constrained column's code array is
scanned once per chunk instead of once per query.
"""

import time

import numpy as np

from repro.data import make_dmv
from repro.workload import cardinality, make_random_workload, true_cardinalities


def test_chunked_labeling_beats_per_query_loop(benchmark):
    table = make_dmv(scale=0.004, seed=0)
    workload = make_random_workload(table, num_queries=400, seed=17, label=False)

    started = time.perf_counter()
    naive = np.array([cardinality(table, query) for query in workload],
                     dtype=np.int64)
    naive_seconds = time.perf_counter() - started

    chunked = benchmark(true_cardinalities, table, workload.queries)

    np.testing.assert_array_equal(chunked, naive)
    chunked_seconds = benchmark.stats.stats.mean
    print(f"\nlabeling {len(workload)} queries on {table.num_rows} rows: "
          f"per-query {naive_seconds:.3f}s vs chunked {chunked_seconds:.3f}s "
          f"({naive_seconds / max(chunked_seconds, 1e-9):.1f}x)")
    # Guard: chunked labeling must not regress behind the per-query loop.
    assert chunked_seconds <= naive_seconds
