"""Ground-truth labeling throughput guard.

Every experiment labels its workloads with exact cardinalities before any
model runs, so labeling speed bounds the whole suite.  This guard pins the
chunked ``true_cardinalities`` implementation against the naive per-query
executor loop: the vectorised path must not be slower, and in practice is
several times faster because each constrained column's code array is
scanned once per chunk instead of once per query.

The append-then-label and delete-then-label cases guard the data
lifecycle's incremental path: after a mutation, ``true_cardinalities_delta``
scans only the churned rows (appended counts added, tombstoned counts
subtracted), so relabeling a workload costs a fraction of a full rescan —
the labeling analogue of fine-tuning instead of retraining.  The delete
case also records the ``BENCH_labeling.json`` snapshot so later sessions
can track the labeling-throughput trajectory.
"""

import time

import numpy as np

from conftest import record_bench_snapshot

from repro.data import ColumnStore, make_dmv
from repro.workload import (
    cardinality,
    make_random_workload,
    true_cardinalities,
    true_cardinalities_delta,
)


def test_chunked_labeling_beats_per_query_loop(benchmark):
    table = make_dmv(scale=0.004, seed=0)
    workload = make_random_workload(table, num_queries=400, seed=17, label=False)

    started = time.perf_counter()
    naive = np.array([cardinality(table, query) for query in workload],
                     dtype=np.int64)
    naive_seconds = time.perf_counter() - started

    chunked = benchmark(true_cardinalities, table, workload.queries)

    np.testing.assert_array_equal(chunked, naive)
    chunked_seconds = benchmark.stats.stats.mean
    print(f"\nlabeling {len(workload)} queries on {table.num_rows} rows: "
          f"per-query {naive_seconds:.3f}s vs chunked {chunked_seconds:.3f}s "
          f"({naive_seconds / max(chunked_seconds, 1e-9):.1f}x)")
    # Guard: chunked labeling must not regress behind the per-query loop.
    assert chunked_seconds <= naive_seconds


def test_delta_labeling_beats_full_relabel(benchmark):
    """After a 10% append, delta labeling must be >=2x a full rescan."""
    table = make_dmv(scale=0.004, seed=0)
    store = ColumnStore.from_table(table)
    base = store.snapshot()
    workload = make_random_workload(base, num_queries=400, seed=17, label=False)
    base_counts = true_cardinalities(base, workload.queries)

    # Append 10% more rows drawn from the existing domains (the fast path a
    # steady-state ingest hits); literals stay comparable across versions.
    rng = np.random.default_rng(42)
    append_rows = table.num_rows // 10
    store.append({
        name: base.column(name).distinct_values[
            rng.integers(0, base.column(name).num_distinct, size=append_rows)]
        for name in base.column_names
    })
    snapshot = store.snapshot()
    delta = store.delta(base)

    started = time.perf_counter()
    full = true_cardinalities(snapshot, workload.queries)
    full_seconds = time.perf_counter() - started

    counts = benchmark(true_cardinalities_delta, delta, workload.queries,
                       base_counts)
    np.testing.assert_array_equal(counts, full)
    delta_seconds = benchmark.stats.stats.mean
    print(f"\nrelabeling {len(workload)} queries after a {append_rows}-row "
          f"append on {snapshot.num_rows} rows: full {full_seconds:.3f}s vs "
          f"delta {delta_seconds:.3f}s "
          f"({full_seconds / max(delta_seconds, 1e-9):.1f}x)")
    # Guard: scanning 10% of the rows must save at least half the work.
    assert delta_seconds * 2 <= full_seconds


def test_delta_labeling_with_deletes_beats_full_rescan(benchmark):
    """After a 10% delete, delta labeling must be >=2x a full rescan.

    The delete side of the incremental-labeling guard: the delta carries
    only the tombstoned rows, so rolling the counts forward subtracts one
    scan of ~10% of the table instead of re-scanning the ~90% that
    survived — and stays bit-for-bit equal to the full rescan.
    """
    table = make_dmv(scale=0.004, seed=0)
    store = ColumnStore.from_table(table)
    base = store.snapshot()
    workload = make_random_workload(base, num_queries=400, seed=17, label=False)
    base_counts = true_cardinalities(base, workload.queries)

    rng = np.random.default_rng(42)
    delete_rows = table.num_rows // 10
    store.delete(rng.choice(base.num_rows, size=delete_rows, replace=False))
    snapshot = store.snapshot()
    delta = store.delta(base)
    assert delta.removed_rows == delete_rows and delta.appended_rows == 0

    started = time.perf_counter()
    full = true_cardinalities(snapshot, workload.queries)
    full_seconds = time.perf_counter() - started

    counts = benchmark(true_cardinalities_delta, delta, workload.queries,
                       base_counts)
    np.testing.assert_array_equal(counts, full)
    delta_seconds = benchmark.stats.stats.mean
    speedup = full_seconds / max(delta_seconds, 1e-9)
    print(f"\nrelabeling {len(workload)} queries after a {delete_rows}-row "
          f"delete on {base.num_rows} rows: full {full_seconds:.3f}s vs "
          f"delta {delta_seconds:.3f}s ({speedup:.1f}x)")
    record_bench_snapshot("labeling", {
        "full_rescan_ms": 1e3 * full_seconds,
        "delta_delete_ms": 1e3 * delta_seconds,
        "delete_speedup": speedup,
        "num_queries": len(workload),
        "table_rows": base.num_rows,
        "deleted_rows": delete_rows,
    })
    # Guard: scanning the 10% tombstoned rows must save at least half the
    # work of rescanning the 90% live view.
    assert delta_seconds * 2 <= full_seconds
