"""Serving throughput: the online estimation service under concurrent load.

Not a paper table — this benchmark covers the serving subsystem
(:mod:`repro.serving`): 8 worker threads replay >= 2,000 single-query
requests against one trained Duet model in three configurations and the
report compares them:

* ``naive``            — one tape forward pass per request, no cache;
* ``micro-batched``    — concurrent requests coalesced into vectorised tape
  passes (``compiled=False`` pins the original comparison);
* ``batched+compiled`` — micro-batching through the lowered grad-free plan
  (the serving default since the compiled inference engine landed);
* ``batched+cache``    — micro-batching plus the canonical-key estimate LRU.

Asserted shape: micro-batching yields higher QPS than the naive loop (it
amortises per-pass overhead across coalesced requests), the compiled plan
only adds to that, the cache short-circuits the model entirely on repeated
queries (far fewer forward passes than requests), and a registry save/load
round-trip reproduces the original estimator bit-for-bit on a held-out
workload.
"""

import numpy as np
import pytest

from conftest import run_once

from repro.core import ServingConfig
from repro.eval import format_serving_table, run_load_test, train_duet
from repro.serving import EstimationService, ModelRegistry
from repro.workload import make_random_workload

CONCURRENCY = 8
NUM_REQUESTS = 2_000


@pytest.fixture(scope="module")
def served_model(scale):
    table = scale.dataset("census")
    # A production-sized network: with the vectorised query translation the
    # per-request Python cost is small, so a tiny model would leave nothing
    # for micro-batching to amortise and the naive-vs-batched margin would
    # ride on scheduler noise instead of forward-pass work.
    trained = train_duet(table, config=scale.duet_config(
        epochs=1, hidden_sizes=(256, 256)))
    workload = make_random_workload(table, num_queries=250, seed=31)
    return table, trained, workload


def _drive(trained, workload, config, mode):
    with EstimationService(trained.estimator, config) as service:
        return run_load_test(service, workload, concurrency=CONCURRENCY,
                             num_requests=NUM_REQUESTS, mode=mode, seed=0)


def test_serving_throughput(benchmark, served_model):
    _, trained, workload = served_model

    naive = _drive(trained, workload,
                   ServingConfig(micro_batching=False, cache_capacity=0,
                                 compiled=False), "naive")
    batched = run_once(
        benchmark, _drive, trained, workload,
        ServingConfig(micro_batching=True, cache_capacity=0, compiled=False),
        "micro-batched")
    compiled = _drive(trained, workload,
                      ServingConfig(micro_batching=True, cache_capacity=0),
                      "batched+compiled")
    cached = _drive(trained, workload, ServingConfig(), "batched+cache")

    print()
    print(format_serving_table([naive, batched, compiled, cached],
                               title=f"serving throughput ({CONCURRENCY} threads, "
                                     f"{NUM_REQUESTS} requests)"))

    for report in (naive, batched, compiled, cached):
        assert report.num_requests >= 2_000
        assert report.concurrency == CONCURRENCY
        assert report.errors == 0
        assert report.qps > 0

    # Micro-batching coalesces concurrent requests: far fewer forward passes
    # than requests, and measurably higher sustained QPS than the naive loop.
    assert batched.mean_batch_size > 1.5
    assert batched.forward_passes < NUM_REQUESTS / 2
    assert naive.forward_passes == NUM_REQUESTS
    assert batched.qps > 1.1 * naive.qps

    # The compiled plan rides on top of micro-batching: strictly less work
    # per pass than the tape, so switching the runner must not cost QPS.
    # (Under this load the batcher's wait window, not the forward pass,
    # bounds latency — the forward-pass margin itself is benchmarked in
    # test_inference_compiled.py.)
    assert compiled.forward_passes < NUM_REQUESTS / 2
    assert compiled.qps > 0.85 * batched.qps

    # The cache short-circuits the model entirely on repeated queries: the
    # request stream has at most 250 distinct queries, so nearly all of the
    # 2,000 requests are answered without a forward pass.
    assert cached.cache_hit_rate > 0.5
    assert cached.forward_passes < batched.forward_passes
    assert cached.qps > batched.qps


def test_registry_roundtrip_bit_for_bit(tmp_path, served_model):
    table, trained, _ = served_model
    registry = ModelRegistry(tmp_path / "registry")
    entry = registry.save(trained.model, dataset=table.name)
    assert entry.model_path.exists() and entry.schema_path.exists()

    reloaded = registry.load_estimator(table.name)
    held_out = make_random_workload(table, num_queries=300, seed=77)
    original = trained.estimator.estimate_batch(held_out.queries)
    served = reloaded.estimate_batch(held_out.queries)
    assert np.array_equal(original, served)
    # The reloaded schema table carries the real row count without the data.
    assert reloaded.table.num_rows == table.num_rows
    assert reloaded.table.num_rows > 0
