"""Table II: accuracy (Q-Error percentiles) of all methods on the three datasets.

The full paper table covers DMV, Kddcup98, and Census with nine estimators
and two workloads each.  The benchmark reproduces one dataset block per test
so the slow blocks can be deselected individually.
"""

import numpy as np
from conftest import run_once

from repro.eval import table2_accuracy


def _print(result):
    print()
    print(result.render())


def test_table2_census(benchmark, scale, naru_samples):
    result = run_once(benchmark, table2_accuracy, dataset="census",
                      scale=scale, naru_samples=naru_samples)
    _print(result)

    rand = {name: res.summary for name, res in result.random.items()}
    # Shape checks mirroring the paper's conclusions on the small dataset:
    # the learned data-driven/hybrid methods beat the traditional ones.
    learned_median = np.median([rand[name].median for name in ("naru", "duet", "duet-d")])
    traditional_median = np.median([rand[name].median for name in ("sampling", "indep", "mhist")])
    assert learned_median <= traditional_median * 1.5
    # Duet's estimation cost is below the progressive-sampling methods.
    assert result.costs_ms["duet"] < result.costs_ms["naru"]


def test_table2_kddcup_high_dimensional(benchmark, scale, naru_samples):
    """The paper's headline accuracy claim: on the high-dimensional table the
    sampling-free methods (Duet/DuetD) dominate, especially at the tail."""
    result = run_once(benchmark, table2_accuracy, dataset="kddcup98",
                      estimators=("sampling", "indep", "mscn", "deepdb",
                                  "naru", "duet-d", "duet"),
                      scale=scale, naru_samples=naru_samples)
    _print(result)

    rand = {name: res.summary for name, res in result.random.items()}
    duet_tail = min(rand["duet"].maximum, rand["duet-d"].maximum)
    # Duet's max Q-Error stays below the progressive-sampling and the
    # query-driven baselines on the high-dimensional table (long-tail claim).
    assert duet_tail <= rand["naru"].maximum * 1.2
    assert duet_tail <= rand["mscn"].maximum
    # And Duet does not suffer from workload drift: random-query accuracy is
    # within an order of magnitude of in-workload accuracy.
    in_q = result.in_workload["duet"].summary
    assert rand["duet"].median <= max(in_q.median * 10, 10)


def test_table2_dmv_high_cardinality(benchmark, scale, naru_samples):
    result = run_once(benchmark, table2_accuracy, dataset="dmv",
                      estimators=("sampling", "indep", "deepdb", "naru", "duet-d", "duet"),
                      scale=scale, naru_samples=naru_samples)
    _print(result)

    rand = {name: res.summary for name, res in result.random.items()}
    # On the high-cardinality table the neural methods must at least match
    # the independence baseline; Duet stays in the same accuracy class as
    # Naru (the paper reports Naru slightly ahead, Duet close behind).
    assert rand["duet"].median <= rand["indep"].median * 2
    assert rand["duet"].median <= rand["naru"].median * 5
