"""Figure 6: estimation latency as the number of predicate columns grows.

The paper's headline scalability result: Duet needs one forward pass per
query regardless of how many columns are constrained, while Naru and UAE
pay one forward pass (over all sample paths) per constrained column.
"""

from conftest import run_once

from repro.eval import figure6_scalability


def test_fig6_scalability(benchmark, scale, naru_samples):
    counts = (2, 5, 10, 15, 20) if scale.kdd_columns >= 20 else (2, 4, 8)
    result = run_once(benchmark, figure6_scalability, column_counts=counts,
                      dataset="kddcup98", queries_per_point=5,
                      naru_samples=naru_samples, scale=scale)
    print()
    print(result.render())

    duet = result.latencies_ms["duet"]
    naru = result.latencies_ms["naru"]
    uae = result.latencies_ms["uae"]

    # Shape check 1: at the widest query, Duet is faster than Naru and UAE.
    assert duet[-1] < naru[-1]
    assert duet[-1] < uae[-1]
    # Shape check 2: Naru/UAE latency grows markedly with the number of
    # constrained columns (O(n) forward passes), Duet stays roughly flat.
    assert naru[-1] > naru[0] * 1.5
    assert uae[-1] > uae[0] * 1.5
    assert duet[-1] < duet[0] * 3.0
    # Shape check 3: the dominant growth for Naru comes from inference +
    # sampling, mirroring the paper's stacked-bar breakdown.
    naru_breakdown = result.breakdowns["naru"][-1]
    assert naru_breakdown["inference"] + naru_breakdown["sampling"] \
        > naru_breakdown["encoding"]
