"""Table III: training throughput (tuples/s) of the data-driven and hybrid methods."""

from conftest import run_once

from repro.eval import table3_training_throughput


def test_table3_training_throughput(benchmark, scale, naru_samples):
    result = run_once(benchmark, table3_training_throughput, dataset="census",
                      scale=scale, naru_samples=naru_samples)
    print()
    print(result.render())

    throughput = result.tuples_per_second
    activations = result.peak_activation_elements
    assert set(throughput) == {"naru", "uae", "duet-d", "duet"}
    assert all(value > 0 for value in throughput.values())
    # Shape checks from the paper's Table III discussion:
    # Naru (no virtual-table sampling, no query loss) is the fastest trainer,
    # and Duet's hybrid step costs less additional memory than UAE's
    # sample-tracking query loss (the OOM discussion).
    assert throughput["naru"] >= throughput["duet"]
    assert activations["uae"] > activations["duet"]
    assert activations["uae"] > activations["naru"]
