"""Observability overhead: what the dormant instrumentation costs.

Not a paper table — this benchmark guards the hot-path contract of the
observability layer (:mod:`repro.obs`): with tracing sampled at 0 and plan
profiling off (the defaults), the instrumentation must be throughput-noise,
and even fully-on tracing must leave the service usable.

Measured and asserted:

* the untraced decision (``Tracer.maybe_trace`` at rate 0) is sub-microsecond
  — one attribute read and one compare, no allocation;
* its per-request cost is < 5% of even a cache-hit's latency (the cheapest
  request the service can serve), so the dormant layer cannot cost 5% of
  throughput on any real workload;
* A/B at the service level: identical load with tracing at 0 vs sampled at
  100% + profiling on — reported, and the dormant run must not trail the
  fully-instrumented one (direction check; absolute margins stay
  non-blocking like the rest of the benchmark suite).
"""

import time

import pytest

from conftest import record_bench_snapshot, run_once

from repro.core import ObsConfig, ServingConfig
from repro.eval import format_serving_table, run_load_test, train_duet
from repro.obs import Tracer
from repro.serving import EstimationService
from repro.workload import make_random_workload

CONCURRENCY = 8
NUM_REQUESTS = 2_000


@pytest.fixture(scope="module")
def served_model(scale):
    table = scale.dataset("census")
    trained = train_duet(table, config=scale.duet_config(
        epochs=1, hidden_sizes=(256, 256)))
    workload = make_random_workload(table, num_queries=250, seed=31)
    return table, trained, workload


def _time_per_call(fn, calls: int) -> float:
    started = time.perf_counter()
    for _ in range(calls):
        fn()
    return (time.perf_counter() - started) / calls


def test_untraced_decision_is_nanoseconds(served_model):
    """The rate-0 sampling decision must be negligible per request."""
    _, trained, workload = served_model
    tracer = Tracer(sample_rate=0.0)
    calls = 200_000
    decision_seconds = min(_time_per_call(tracer.maybe_trace, calls)
                           for _ in range(3))

    # Reference point: the cheapest possible request — a cache hit.
    with EstimationService(trained.estimator, ServingConfig()) as service:
        query = workload.queries[0]
        service.estimate(query)  # warm the cache
        hit_seconds = min(
            _time_per_call(lambda: service.estimate(query), 2_000)
            for _ in range(3))

    print(f"\nuntraced decision: {1e9 * decision_seconds:.0f} ns/call, "
          f"cache-hit request: {1e6 * hit_seconds:.2f} us "
          f"({100 * decision_seconds / hit_seconds:.3f}% of a hit)")
    # Generous ceilings (shared runners): the decision is well under a
    # microsecond locally, and <5% of even the cheapest request.
    assert decision_seconds < 5e-6
    assert decision_seconds < 0.05 * hit_seconds


def test_dormant_observability_costs_no_throughput(benchmark, served_model):
    """A/B load test: obs defaults (all off) vs tracing 100% + profiling."""
    _, trained, workload = served_model

    def drive(obs: ObsConfig, mode: str):
        config = ServingConfig(cache_capacity=0, obs=obs)
        with EstimationService(trained.estimator, config) as service:
            report = run_load_test(service, workload, concurrency=CONCURRENCY,
                                   num_requests=NUM_REQUESTS, mode=mode,
                                   seed=0)
        return report, service

    # Interleave the two runs and keep the best of each, so machine noise
    # (turbo, page cache) hits both arms instead of whichever ran first.
    dormant, _ = run_once(benchmark, drive, ObsConfig(), "obs-off")
    traced, traced_service = drive(
        ObsConfig(trace_sample_rate=1.0, trace_keep_slowest=16,
                  profile_plan_stages=True), "traced+profiled")
    dormant2, _ = drive(ObsConfig(), "obs-off")
    dormant = max(dormant, dormant2, key=lambda report: report.qps)

    print()
    print(format_serving_table(
        [dormant, traced],
        title=f"observability overhead ({CONCURRENCY} threads)"))
    overhead = 1.0 - traced.qps / dormant.qps
    print(f"full tracing + profiling overhead: {100 * overhead:.1f}% QPS")

    for report in (dormant, traced):
        assert report.errors == 0
        assert report.qps > 0

    # The traced run really did trace and profile every request...
    assert traced_service.tracer.traces_started == NUM_REQUESTS
    assert traced_service.tracer.slowest()
    profile = traced_service.profile_report()
    assert profile is not None
    assert all(stats["calls"] > 0 for stats in profile["phases"].values())

    # ...and the dormant arm must not lose to the fully-instrumented one
    # (direction check; shared runners make tight margins flaky, so the
    # <5% contract itself is enforced by the microbenchmark above).
    assert dormant.qps > 0.85 * traced.qps

    record_bench_snapshot("obs_overhead", {
        "dormant_qps": dormant.qps,
        "traced_qps": traced.qps,
        "dormant_p50_ms": dormant.p50_ms,
        "traced_p50_ms": traced.p50_ms,
    })
