"""Figure 4: cardinality distribution of the Rand-Q and In-Q test workloads."""

from conftest import run_once

from repro.eval import figure4_workload_distribution


def test_fig4_workload_distribution(benchmark, scale):
    results = run_once(
        benchmark,
        lambda: [figure4_workload_distribution(name, scale)
                 for name in ("dmv", "kddcup98", "census")])
    print()
    for result in results:
        print(result.render())
        print()

    for result in results:
        # Shape check: the two workloads have clearly different cardinality
        # distributions (the premise of the workload-drift discussion).
        assert result.rand_q_median != result.in_q_median
        # CDFs are monotonically non-decreasing.
        assert (result.rand_q_cdf[0][1:] >= result.rand_q_cdf[0][:-1]).all()
        assert (result.in_q_cdf[0][1:] >= result.in_q_cdf[0][:-1]).all()
