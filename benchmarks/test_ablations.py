"""Ablation benchmarks for the design choices called out in DESIGN.md.

* hybrid vs data-only training (the paper's Duet vs DuetD columns),
* the expand coefficient mu of Algorithm 1,
* the log2(QError+1) mapping of the hybrid query loss (Figure 3 rationale).
"""

from conftest import run_once

from repro.eval import (
    ablation_expand_coefficient,
    ablation_hybrid_training,
    ablation_loss_mapping,
)


def test_ablation_hybrid_training(benchmark, scale):
    result = run_once(benchmark, ablation_hybrid_training, dataset="census", scale=scale)
    print()
    print(result.render())
    names = [row[0] for row in result.rows]
    assert names == ["duet-d", "duet"]
    # Both variants must produce finite, sane errors; the relative ordering
    # is dataset-dependent (the paper itself reports hybrid slightly *hurting*
    # on Census), so only sanity is asserted here.
    assert all(row[1] >= 1.0 and row[3] >= 1.0 for row in result.rows)


def test_ablation_expand_coefficient(benchmark, scale):
    result = run_once(benchmark, ablation_expand_coefficient, dataset="census",
                      coefficients=(1, 2, 4), scale=scale)
    print()
    print(result.render())
    mus = [row[0] for row in result.rows]
    throughputs = [row[3] for row in result.rows]
    assert mus == [1, 2, 4]
    # Larger mu -> more virtual tuples per anchor -> lower raw throughput.
    assert throughputs[0] >= throughputs[-1]


def test_ablation_loss_mapping(benchmark, scale):
    result = run_once(benchmark, ablation_loss_mapping, dataset="census", scale=scale)
    print()
    print(result.render())
    labels = [row[0] for row in result.rows]
    assert labels == ["log2(QError+1)", "raw QError"]
    assert all(row[1] >= 1.0 for row in result.rows)
