"""Figure 5: hyper-parameter study on the trade-off coefficient lambda."""

from conftest import run_once

from repro.eval import figure5_lambda_study


def test_fig5_lambda_study(benchmark, scale):
    result = run_once(benchmark, figure5_lambda_study,
                      lambdas=(1e-3, 1e-2, 1e-1, 1.0), dataset="kddcup98", scale=scale)
    print()
    print(result.render())

    # Shape check: an intermediate lambda generalises at least as well as the
    # extreme settings (the paper picks 0.1; a very large weight degrades the
    # model towards query-driven behaviour on random queries).
    assert len(result.max_qerror) == 4
    assert result.best_lambda in result.lambdas
    assert min(result.max_qerror[1:3]) <= result.max_qerror[-1] * 1.5
