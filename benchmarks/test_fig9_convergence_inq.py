"""Figure 9: convergence speed (max Q-Error per epoch) on in-workload queries."""

from conftest import run_once

from repro.eval import convergence_study


def test_fig9_convergence_in_q(benchmark, scale, naru_samples):
    result = run_once(benchmark, convergence_study, workload_kind="in-q",
                      dataset="census", scale=scale, naru_samples=naru_samples)
    print()
    print(result.render())

    curves = result.max_qerror
    assert set(curves) == {"duet", "duet-d", "naru", "uae"}
    # Shape check: with hybrid training on the same workload family, Duet's
    # best in-workload error is at least as good as the data-only DuetD's
    # first-epoch error (hybrid supervision helps convergence, Figure 9).
    assert min(curves["duet"]) <= curves["duet-d"][0] * 1.2
