"""Shared fixtures for the benchmark suite.

Each benchmark reproduces one table or figure of the paper: it runs the
corresponding experiment driver from :mod:`repro.eval.experiments`, prints
the same rows/series the paper reports, and asserts the qualitative shape
(who wins, what grows, where the crossover is) rather than absolute numbers.

Run with::

    pytest benchmarks/ --benchmark-only

Pass ``--repro-profile=paper`` for larger (slower) experiment sizes that get
closer to the paper's setup.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.eval import SmokeScale

#: directory holding the committed benchmark baselines (BENCH_*.json)
BENCH_DIR = Path(__file__).resolve().parent


def pytest_addoption(parser):
    parser.addoption(
        "--repro-profile", action="store", default="smoke",
        choices=("smoke", "paper"),
        help="Experiment size: 'smoke' (default, minutes) or 'paper' (hours).")


@pytest.fixture(scope="session")
def scale(request) -> SmokeScale:
    """Experiment size preset shared by every benchmark."""
    profile = request.config.getoption("--repro-profile")
    if profile == "paper":
        return SmokeScale(
            dataset_scale={"dmv": 0.01, "kddcup98": 0.5, "census": 0.5},
            kdd_columns=100,
            num_test_queries=2_000,
            num_train_queries=10_000,
            epochs=20,
            hidden_sizes=(128, 128),
        )
    return SmokeScale()


@pytest.fixture(scope="session")
def naru_samples(request) -> int:
    """Progressive-sampling budget for Naru/UAE (paper: 2,000)."""
    if request.config.getoption("--repro-profile") == "paper":
        return 2_000
    return 100


def run_once(benchmark, target, *args, **kwargs):
    """Run an experiment driver exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(target, args=args, kwargs=kwargs, rounds=1, iterations=1)


def record_bench_snapshot(name: str, metrics: dict, tolerance: float = 0.4) -> list[str]:
    """Write or compare a benchmark baseline (``benchmarks/BENCH_<name>.json``).

    First run (or ``REPRO_BENCH_UPDATE=1``) writes the baseline; later runs
    compare against it and return a list of human-readable regression notes
    — **never** asserting, so the comparison stays non-blocking (wall-clock
    margins are machine-dependent; the CI job only surfaces the report).

    Metric direction is inferred from the key: ``*_qps`` / ``*speedup*``
    are higher-is-better, ``*_ms`` lower-is-better, anything else is only
    recorded.  ``tolerance`` is the allowed relative slowdown.
    """
    path = BENCH_DIR / f"BENCH_{name}.json"
    payload = {
        "recorded_at": time.strftime("%Y-%m-%d %H:%M:%S"),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "metrics": metrics,
    }
    if not path.exists() or os.environ.get("REPRO_BENCH_UPDATE"):
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"[bench-snapshot] wrote baseline {path.name}")
        return []
    baseline = json.loads(path.read_text())["metrics"]
    regressions: list[str] = []
    for key, value in sorted(metrics.items()):
        base = baseline.get(key)
        if not isinstance(base, (int, float)) or not isinstance(value, (int, float)):
            continue
        if base <= 0:
            continue
        ratio = value / base
        if key.endswith("_ms"):
            if ratio > 1.0 + tolerance:
                regressions.append(f"{key}: {value:.4g} vs baseline {base:.4g} "
                                   f"({ratio:.2f}x slower)")
        elif key.endswith("_qps") or "speedup" in key:
            if ratio < 1.0 - tolerance:
                regressions.append(f"{key}: {value:.4g} vs baseline {base:.4g} "
                                   f"({1 / max(ratio, 1e-9):.2f}x slower)")
    if regressions:
        print(f"[bench-snapshot] {name}: possible regressions vs {path.name}:")
        for line in regressions:
            print(f"  - {line}")
    else:
        print(f"[bench-snapshot] {name}: within {tolerance:.0%} of {path.name}")
    return regressions
