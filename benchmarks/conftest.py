"""Shared fixtures for the benchmark suite.

Each benchmark reproduces one table or figure of the paper: it runs the
corresponding experiment driver from :mod:`repro.eval.experiments`, prints
the same rows/series the paper reports, and asserts the qualitative shape
(who wins, what grows, where the crossover is) rather than absolute numbers.

Run with::

    pytest benchmarks/ --benchmark-only

Pass ``--repro-profile=paper`` for larger (slower) experiment sizes that get
closer to the paper's setup.
"""

from __future__ import annotations

import pytest

from repro.eval import SmokeScale


def pytest_addoption(parser):
    parser.addoption(
        "--repro-profile", action="store", default="smoke",
        choices=("smoke", "paper"),
        help="Experiment size: 'smoke' (default, minutes) or 'paper' (hours).")


@pytest.fixture(scope="session")
def scale(request) -> SmokeScale:
    """Experiment size preset shared by every benchmark."""
    profile = request.config.getoption("--repro-profile")
    if profile == "paper":
        return SmokeScale(
            dataset_scale={"dmv": 0.01, "kddcup98": 0.5, "census": 0.5},
            kdd_columns=100,
            num_test_queries=2_000,
            num_train_queries=10_000,
            epochs=20,
            hidden_sizes=(128, 128),
        )
    return SmokeScale()


@pytest.fixture(scope="session")
def naru_samples(request) -> int:
    """Progressive-sampling budget for Naru/UAE (paper: 2,000)."""
    if request.config.getoption("--repro-profile") == "paper":
        return 2_000
    return 100


def run_once(benchmark, target, *args, **kwargs):
    """Run an experiment driver exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(target, args=args, kwargs=kwargs, rounds=1, iterations=1)
