"""Figure 7: per-query estimation cost of the learned estimators."""

from conftest import run_once

from repro.eval import figure7_estimation_cost


def test_fig7_estimation_cost(benchmark, scale, naru_samples):
    result = run_once(benchmark, figure7_estimation_cost, dataset="census",
                      scale=scale, naru_samples=naru_samples)
    print()
    print(result.render())

    costs = result.per_query_ms
    # Shape checks from the paper's Figure 7: Duet (and DuetD) are much
    # cheaper than the progressive-sampling methods (Naru, UAE); MSCN, being
    # a single small feed-forward network, is the cheapest learned method.
    assert costs["duet"] < costs["naru"]
    assert costs["duet"] < costs["uae"]
    assert costs["duet-d"] < costs["naru"]
    assert costs["mscn"] <= costs["naru"]
