"""Data churn: deletes, tombstones, and compaction through the lifecycle.

The delete-side twin of ``examples/data_drift.py``: there the data *grows*;
here it *shrinks and shifts*.  A Duet model is trained on a census base
table and served; then a skewed delete tombstones most of the lower tail of
one column, so the live distribution no longer matches what the model
learnt.  The lifecycle controller notices (deletes count as staleness just
like appends), refreshes automatically — fine-tuning with *negative replay*
over the tombstoned rows — and recovers the probe accuracy.  A second,
heavier delete wave then pushes the store's tombstone fraction past the
policy threshold: the controller compacts the chunks (physically dropping
the dead rows) and escalates to a background cold train that swaps in a
model trained on the clean live view, all without failing a request.

Run with::

    python examples/data_churn.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro.core import DuetConfig, DuetModel, DuetTrainer, LifecyclePolicy, ServingConfig
from repro.data import ColumnStore, make_census
from repro.eval import format_table, qerror, summarize_qerrors
from repro.lifecycle import RefreshScheduler
from repro.serving import EstimationService, ModelRegistry
from repro.workload import make_random_workload, true_cardinalities


def skewed_delete(store: ColumnStore, column: str, fraction: float,
                  seed: int):
    """Tombstone ``fraction`` of the rows holding the lower half of a column."""
    rng = np.random.default_rng(seed)
    snapshot = store.snapshot()
    target = snapshot.column(column)
    values = target.distinct_values[target.codes]
    lower_half = values < np.median(target.distinct_values)
    victims = np.flatnonzero(lower_half)
    picked = victims[rng.random(victims.size) < fraction]
    return store.delete(picked)


def main() -> None:
    store = ColumnStore.from_table(make_census(scale=0.08, seed=0))
    base = store.snapshot()
    print(f"store {store.name!r}: {base.num_rows} rows, "
          f"{base.num_columns} columns, data_version {base.data_version}\n")

    config = DuetConfig(hidden_sizes=(64, 64), epochs=6, batch_size=128,
                        expand_coefficient=2, lambda_query=0.0, seed=0)
    model = DuetModel(base, config)
    DuetTrainer(model, base, config=config).train()

    registry = ModelRegistry(tempfile.mkdtemp(prefix="duet-registry-"))
    registry.save(model, dataset="census")

    policy = LifecyclePolicy(max_stale_fraction=0.1, debounce_polls=1,
                             cooldown_seconds=0.0, refresh_epochs=4,
                             cold_train_epochs=6, tune_yield_seconds=0.0,
                             compact_tombstone_fraction=0.52)
    with EstimationService.from_registry(
            registry, "census", store=store,
            config=ServingConfig(max_wait_ms=0.5)) as service:
        scheduler = RefreshScheduler(service, policy)

        # --- Wave 1: a skewed delete the refresh path absorbs -----------
        new_snapshot = skewed_delete(store, column="age", fraction=0.9,
                                     seed=7)
        print(f"deleted {base.num_rows - new_snapshot.num_rows} skewed rows "
              f"-> data_version {new_snapshot.data_version}, staleness "
              f"{service.staleness()} rows, tombstone fraction "
              f"{store.tombstone_fraction:.2f}")

        workload = make_random_workload(new_snapshot, num_queries=300,
                                        seed=1234, label=False)
        truth = true_cardinalities(new_snapshot, workload.queries)
        stale = summarize_qerrors(
            qerror(service.estimate_batch(workload.queries), truth))

        event = scheduler.poll_once()
        print(f"scheduler poll: {event} -> model {service.model_version}, "
              f"staleness {service.staleness()} rows\n")
        refreshed = summarize_qerrors(
            qerror(service.estimate_batch(workload.queries), truth))

        print(format_table(
            ["served model", "median", "75th", "99th", "max"],
            [["stale (trained pre-delete)", stale.median, stale.percentile_75,
              stale.percentile_99, stale.maximum],
             ["refreshed (negative replay)", refreshed.median,
              refreshed.percentile_75, refreshed.percentile_99,
              refreshed.maximum]],
            title="Q-Error against post-delete ground truth"))

        # --- Wave 2: churn past the compaction threshold ----------------
        skewed_delete(store, column="age", fraction=0.9, seed=8)
        print(f"\nsecond delete wave: tombstone fraction now "
              f"{store.tombstone_fraction:.2f} "
              f"({store.physical_rows - store.num_rows} dead of "
              f"{store.physical_rows} physical rows)")
        event = scheduler.poll_once()
        print(f"scheduler poll: {event}")
        scheduler.quiesce(timeout=600.0)
        cold = scheduler.events.last("cold_train")
        print(f"cold train: {cold} -> model {service.model_version}, "
              f"tombstone fraction {store.tombstone_fraction:.2f}, "
              f"{store.num_rows} live rows (physical {store.physical_rows})")

        final = store.snapshot()
        final_workload = make_random_workload(final, num_queries=300,
                                              seed=4321, label=False)
        final_truth = true_cardinalities(final, final_workload.queries)
        cold_summary = summarize_qerrors(qerror(
            service.estimate_batch(final_workload.queries), final_truth))
        print(f"post-compaction cold-trained model: median Q-Error "
              f"{cold_summary.median:.3f} (99th {cold_summary.percentile_99:.2f})")

    print("\nDeletes count as staleness, so the controller refreshes on "
          "them exactly like on appends — negative replay pushes the "
          "tombstoned rows' likelihood back down.  Once the dead-row "
          "fraction crosses the policy threshold, compaction reclaims the "
          "space and a background cold train resets the model on the clean "
          "live view, swapping atomically under live traffic.")


if __name__ == "__main__":
    main()
