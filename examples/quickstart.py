"""Quickstart: train Duet on a small table and estimate a few queries.

Run with::

    python examples/quickstart.py

The script builds the synthetic Census stand-in, trains Duet with hybrid
(data + query) supervision for a few epochs, and compares its estimates with
the exact cardinalities and with a classic independence-assumption estimator.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import IndependenceEstimator
from repro.core import DuetConfig, DuetEstimator, DuetModel, DuetTrainer
from repro.data import make_census
from repro.eval import evaluate_estimator, qerror
from repro.workload import Query, cardinality, make_inworkload, make_random_workload


def main() -> None:
    # 1. Data: a synthetic stand-in for the UCI Census table (14 columns).
    table = make_census(scale=0.1, seed=0)
    print(f"table {table.name!r}: {table.num_rows} rows, {table.num_columns} columns")

    # 2. Workloads: a training workload with temporal locality (In-Q style)
    #    and a random testing workload the model has never seen.
    train_queries = make_inworkload(table, num_queries=800, seed=42)
    test_queries = make_random_workload(table, num_queries=300, seed=1234)

    # 3. Model + hybrid training (Algorithm 2).
    config = DuetConfig(hidden_sizes=(64, 64), epochs=5, batch_size=128,
                        expand_coefficient=2, lambda_query=0.1, seed=0)
    model = DuetModel(table, config)
    trainer = DuetTrainer(model, table, train_queries, config)
    history = trainer.train()
    print(f"trained {len(history.epochs)} epochs, "
          f"final L_data={history.data_losses[-1]:.3f}, "
          f"throughput={history.mean_throughput:.0f} tuples/s")

    # 4. Estimation (Algorithm 3): one forward pass per query, no sampling.
    estimator = DuetEstimator(model)
    example = Query.from_triples([
        ("education", ">=", 5),
        ("sex", "=", 0),
        ("hours_per_week", "<=", 40),
    ])
    estimate = estimator.estimate(example)
    truth = cardinality(table, example)
    print(f"\nquery: {example}")
    print(f"  true cardinality      = {truth}")
    print(f"  Duet estimate         = {estimate:.1f}  "
          f"(Q-Error {qerror(np.array([estimate]), np.array([truth]))[0]:.2f})")

    # 5. Compare against the attribute-value-independence baseline.
    duet_result = evaluate_estimator(estimator, test_queries, table)
    indep_result = evaluate_estimator(IndependenceEstimator(table), test_queries, table)
    print("\nrandom-workload accuracy (Q-Error):")
    print(f"  duet : {duet_result.summary}")
    print(f"  indep: {indep_result.summary}")
    print(f"\nDuet per-query latency: {duet_result.per_query_ms:.3f} ms "
          f"(deterministic: {estimator.is_deterministic})")


if __name__ == "__main__":
    main()
