"""Data drift: why a mutable store plus incremental fine-tuning matters.

The data-side twin of ``examples/workload_drift.py``: there the *queries*
drift; here the *data* drifts.  A Duet model is trained on a census base
table and served; then a heavily skewed batch of rows is appended (only the
upper tail of several domains).  The served model still reflects the old
distribution, so its Q-Error against the post-append ground truth degrades —
and ``EstimationService.refresh()`` recovers it by fine-tuning on just the
appended rows (plus a replay sample), re-registering the model under a new
version, and hot-swapping the serving plan.

Run with::

    python examples/data_drift.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro.core import DuetConfig, DuetModel, DuetTrainer, ServingConfig
from repro.data import ColumnStore, make_census
from repro.eval import format_table, qerror, summarize_qerrors
from repro.serving import EstimationService, ModelRegistry
from repro.workload import make_random_workload, true_cardinalities


def skewed_append(store: ColumnStore, fraction: float, seed: int):
    """Append rows drawn only from the top quartile of every domain."""
    rng = np.random.default_rng(seed)
    snapshot = store.snapshot()
    count = int(snapshot.num_rows * fraction)
    batch = {}
    for name in snapshot.column_names:
        column = snapshot.column(name)
        start = (3 * column.num_distinct) // 4
        codes = rng.integers(start, column.num_distinct, size=count)
        batch[name] = column.distinct_values[codes]
    return store.append(batch)


def main() -> None:
    store = ColumnStore.from_table(make_census(scale=0.08, seed=0))
    base = store.snapshot()
    print(f"store {store.name!r}: {base.num_rows} rows, "
          f"{base.num_columns} columns, data_version {base.data_version}\n")

    config = DuetConfig(hidden_sizes=(64, 64), epochs=6, batch_size=128,
                        expand_coefficient=2, lambda_query=0.0, seed=0)
    model = DuetModel(base, config)
    DuetTrainer(model, base, config=config).train()

    registry = ModelRegistry(tempfile.mkdtemp(prefix="duet-registry-"))
    registry.save(model, dataset="census")

    with EstimationService.from_registry(
            registry, "census", store=store,
            config=ServingConfig(max_wait_ms=0.5)) as service:
        # The data drifts: a skewed append concentrated in the upper tails.
        new_snapshot = skewed_append(store, fraction=1.5, seed=7)
        print(f"appended {new_snapshot.num_rows - base.num_rows} skewed rows "
              f"-> data_version {new_snapshot.data_version}, "
              f"service staleness {service.staleness()} rows")

        workload = make_random_workload(new_snapshot, num_queries=300,
                                        seed=1234, label=False)
        truth = true_cardinalities(new_snapshot, workload.queries)

        stale = summarize_qerrors(
            qerror(service.estimate_batch(workload.queries), truth))

        entry = service.refresh(epochs=4)
        print(f"refresh(): fine-tuned on the delta, registered "
              f"{entry.version} (data_version {entry.data_version}), "
              f"staleness now {service.staleness()} rows\n")

        refreshed = summarize_qerrors(
            qerror(service.estimate_batch(workload.queries), truth))

    print(format_table(
        ["served model", "median", "75th", "99th", "max"],
        [["stale (trained on base)", stale.median, stale.percentile_75,
          stale.percentile_99, stale.maximum],
         ["refreshed (fine-tuned on delta)", refreshed.median,
          refreshed.percentile_75, refreshed.percentile_99,
          refreshed.maximum]],
        title="Q-Error against post-append ground truth"))
    print("\nThe stale model still assumes the pre-append distribution; one "
          "incremental refresh() — a fraction of a cold train — absorbs the "
          "appended data, swaps the serving plan, and drops the stale cache.")


if __name__ == "__main__":
    main()
