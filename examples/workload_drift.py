"""Workload drift: why hybrid beats query-driven when the workload changes.

The paper's motivation for hybrid learning (§I, Problem 5): a query-driven
estimator (MSCN) fits the training workload's distribution, so when the
incoming queries drift away from it the accuracy collapses; Duet mostly
learns from the data, so its random-query accuracy barely moves.

Run with::

    python examples/workload_drift.py
"""

from __future__ import annotations

from repro.baselines import MSCNEstimator
from repro.core import DuetConfig, DuetEstimator, DuetModel, DuetTrainer
from repro.data import make_census
from repro.eval import evaluate_estimator, format_table
from repro.workload import make_inworkload, make_random_workload


def main() -> None:
    table = make_census(scale=0.08, seed=0)
    print(f"table {table.name!r}: {table.num_rows} rows, {table.num_columns} columns\n")

    # The training workload has temporal locality: one bounded column and a
    # skewed number of predicates.  The drifted workload is fully random.
    train_queries = make_inworkload(table, num_queries=800, seed=42)
    in_workload = make_inworkload(table, num_queries=300, seed=42)
    drifted = make_random_workload(table, num_queries=300, seed=1234)

    # Query-driven baseline: learns only from the labelled training queries.
    mscn = MSCNEstimator(table, epochs=40, seed=0).fit(train_queries)

    # Hybrid Duet: learns from the data, uses the same queries as a supplement.
    config = DuetConfig(hidden_sizes=(64, 64), epochs=5, batch_size=128,
                        expand_coefficient=2, lambda_query=0.1, seed=0)
    model = DuetModel(table, config)
    DuetTrainer(model, table, train_queries, config).train()
    duet = DuetEstimator(model)

    rows = []
    for name, estimator in (("mscn (query-driven)", mscn), ("duet (hybrid)", duet)):
        in_result = evaluate_estimator(estimator, in_workload, table)
        drift_result = evaluate_estimator(estimator, drifted, table)
        degradation = drift_result.summary.median / max(in_result.summary.median, 1e-9)
        rows.append([name, in_result.summary.median, in_result.summary.maximum,
                     drift_result.summary.median, drift_result.summary.maximum,
                     degradation])

    print(format_table(
        ["estimator", "InQ median", "InQ max", "drifted median", "drifted max",
         "median degradation x"],
        rows,
        title="Workload drift: in-workload vs drifted (random) queries"))
    print("\nThe query-driven model degrades much more under drift; the hybrid "
          "model keeps its accuracy because it learns the data distribution.")


if __name__ == "__main__":
    main()
