"""Lifecycle soak: the store drifts, the controller keeps the model fresh.

The end-to-end demonstration of :mod:`repro.lifecycle`.  A Duet model is
trained on a census base table and served; then worker threads hammer the
service with queries while the data mutates underneath it — first two
skewed appends (upper tails only), then an append that *grows* several
column domains.  Nobody calls ``refresh()``: the
:class:`~repro.lifecycle.RefreshScheduler` watches staleness and observed
Q-Error drift on its own, fine-tunes when thresholds trip, escalates the
domain-growing append to a background cold train, swaps models atomically,
and prunes superseded versions — all while every ``estimate()`` keeps
succeeding.

Run with::

    python examples/lifecycle_soak.py

``--chaos`` turns the soak into a fault-injected run: a seeded
:class:`~repro.lifecycle.FaultInjector` plan fails a training loop, a
registry save, and stalls some optimiser steps while the same traffic and
mutations run.  The acceptance bar is identical — zero failed requests —
and the run ends with a cold-start ``ModelRegistry.recover()`` pass over
whatever the faults left on disk.

The whole run is observable through one :class:`~repro.obs.MetricsRegistry`
shared by the service and the scheduler: a
:class:`~repro.obs.MetricsExporter` appends a JSON snapshot of every metric
(request totals, tombstone fraction, breaker state, canary ratio, …) to
``--metrics-out`` throughout the soak, and the script ends by reading the
timeline back to show the breaker/store trajectory.
"""

from __future__ import annotations

import argparse
import tempfile

import numpy as np

from repro.core import (
    DuetConfig,
    DuetModel,
    DuetTrainer,
    LifecyclePolicy,
    ServingConfig,
)
from repro.data import ColumnStore, make_census
from repro.eval import format_table, qerror, run_soak, summarize_qerrors
from repro.lifecycle import FaultInjector, FaultSpec, RefreshScheduler
from repro.obs import MetricsExporter
from repro.serving import EstimationService, ModelRegistry
from repro.workload import make_random_workload, true_cardinalities


def skewed_batch(store: ColumnStore, fraction: float, seed: int) -> dict:
    """Rows drawn only from the top quartile of every domain."""
    rng = np.random.default_rng(seed)
    snapshot = store.snapshot()
    count = int(snapshot.num_rows * fraction)
    batch = {}
    for name in snapshot.column_names:
        column = snapshot.column(name)
        start = (3 * column.num_distinct) // 4
        codes = rng.integers(start, column.num_distinct, size=count)
        batch[name] = column.distinct_values[codes]
    return batch


def growing_batch(store: ColumnStore, count: int, seed: int) -> dict:
    """Rows whose values lie outside every current domain."""
    rng = np.random.default_rng(seed)
    snapshot = store.snapshot()
    batch = {}
    for name in snapshot.column_names:
        column = snapshot.column(name)
        ceiling = int(np.asarray(column.distinct_values, dtype=np.int64).max())
        batch[name] = rng.integers(ceiling + 10, ceiling + 40, size=count)
    return batch


def chaos_plan() -> FaultInjector:
    """The example's seeded fault plan for ``--chaos``."""
    return FaultInjector([
        FaultSpec(site="trainer.step", kind="raise"),
        FaultSpec(site="registry.save", kind="io_error"),
        FaultSpec(site="trainer.step", kind="stall", stall_seconds=0.02,
                  times=5, after=100),
    ], seed=3)


def main(chaos: bool = False,
         metrics_out: str = "soak_metrics.jsonl") -> None:
    store = ColumnStore.from_table(make_census(scale=0.05, seed=0))
    base = store.snapshot()
    print(f"store {store.name!r}: {base.num_rows} rows, "
          f"{base.num_columns} columns, data_version {base.data_version}")

    config = DuetConfig(hidden_sizes=(48, 48), epochs=4, batch_size=128,
                        expand_coefficient=2, lambda_query=0.0, seed=0)
    model = DuetModel(base, config)
    DuetTrainer(model, base, config=config).train()

    registry = ModelRegistry(tempfile.mkdtemp(prefix="duet-registry-"))
    registry.save(model, dataset="census")

    policy = LifecyclePolicy(
        poll_interval_seconds=0.2,
        max_stale_rows=None, max_stale_fraction=0.25,
        probe_sample_rate=0.25, min_probe_queries=16,
        qerror_median_threshold=None, qerror_drift_factor=3.0,
        debounce_polls=2, cooldown_seconds=1.0,
        refresh_epochs=2, cold_train_epochs=3,
        keep_model_versions=2,
        # chaos runs retry quickly so the injected failures are absorbed
        # within the soak window instead of parking the tune path
        failure_backoff_seconds=0.25 if chaos else 2.0,
        failure_backoff_max_seconds=1.0 if chaos else 60.0,
        breaker_failure_threshold=None if chaos else 5)
    faults = chaos_plan() if chaos else None

    with EstimationService.from_registry(
            registry, "census", store=store,
            config=ServingConfig(max_wait_ms=0.5)) as service:
        workload = make_random_workload(base, num_queries=300, seed=1234,
                                        label=False)
        with RefreshScheduler(service, policy) as scheduler:
            scheduler.monitor.seed_probes(workload.queries[:64])
            # One registry serves both planes, so one exporter snapshots
            # serving counters and lifecycle gauges side by side.
            exporter = MetricsExporter(service.metrics, metrics_out,
                                       interval_seconds=1.0)
            print(f"scheduler running: {policy.max_stale_fraction:.0%} "
                  f"staleness threshold, {policy.qerror_drift_factor}x drift "
                  f"factor, debounce {policy.debounce_polls} polls")
            print(f"metrics timeline -> {metrics_out}\n")
            report = run_soak(
                service, workload, duration_seconds=12.0, concurrency=4,
                appends=[
                    (1.0, lambda: store.append(skewed_batch(store, 0.4, 7))),
                    (3.0, lambda: store.append(skewed_batch(store, 0.4, 8))),
                    (7.0, lambda: store.append(
                        growing_batch(store, int(store.num_rows * 0.3), 9))),
                ],
                scheduler=scheduler, faults=faults, exporter=exporter, seed=0)
            scheduler.quiesce(timeout=120.0)
            exporter.write_snapshot()  # one post-quiesce data point

            print(report)
            if faults is not None:
                fired = ", ".join(f"{site} x{count}" for site, count
                                  in sorted(report.fault_counts.items()))
                print(f"faults injected: {fired or 'none'}")
            print(f"after quiesce: staleness {service.staleness()} rows, "
                  f"serving {service.model_version}\n")
            print("lifecycle events (idle polls elided):")
            for event in scheduler.events.events():
                if (event.kind == "decision" and event.details["action"]
                        in ("hold", "cold_train_pending")):
                    continue
                print(f"  {event}")

        final = store.snapshot()
        probe = make_random_workload(final, num_queries=200, seed=77,
                                     label=False)
        truth = true_cardinalities(final, probe.queries)
        summary = summarize_qerrors(
            qerror(service.estimate_batch(probe.queries), truth))
        print()
        print(format_table(
            ["served model", "median", "75th", "99th", "max"],
            [[f"{service.model_version} (autonomous)", summary.median,
              summary.percentile_75, summary.percentile_99, summary.maximum]],
            title="Q-Error against final ground truth"))
        print(f"\nversions retained: {registry.versions('census')} "
              f"(policy keeps {policy.keep_model_versions}), "
              f"store versions tracked: {store.tracked_versions}")

        records = MetricsExporter.read_timeline(metrics_out)
        requests = MetricsExporter.series(records, "repro_batches_total")
        tombstones = MetricsExporter.series(records,
                                            "repro_store_tombstone_fraction")
        breaker = MetricsExporter.series(records,
                                         "repro_lifecycle_breaker_state")
        print(f"\nexported timeline: {len(records)} snapshots in {metrics_out}")
        t0 = records[0]["t"]
        for (t, passes), (_, dead), (_, state) in zip(requests, tombstones,
                                                      breaker):
            print(f"  t+{t - t0:5.1f}s  forward_passes={passes:7.0f}  "
                  f"tombstone_fraction={dead:.3f}  breaker={state:.0f}")
    if chaos:
        # Cold-start recovery over whatever the fault plan left on disk.
        recovery = ModelRegistry(registry.root).recover()
        quarantined = [f"{q.dataset}/{q.version} ({q.reason})"
                       for q in recovery.quarantined]
        print(f"\nrecover(): checked {recovery.checked} entries, "
              f"quarantined {quarantined or 'nothing'}, "
              f"manifest_rebuilt={recovery.manifest_rebuilt}")
        print("Chaos run complete: injected trainer/registry faults were "
              "absorbed by backoff and retries — still zero failed requests.")
    else:
        print("\nNo refresh() was ever called by hand: the controller noticed "
              "the drift, fine-tuned twice, cold-trained through the domain "
              "growth, and pruned superseded versions — with zero failed "
              "requests.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--chaos", action="store_true",
                        help="inject a seeded fault plan into the soak")
    parser.add_argument("--metrics-out", default="soak_metrics.jsonl",
                        help="JSONL file the metrics exporter appends "
                             "snapshots to (default: %(default)s)")
    arguments = parser.parse_args()
    main(chaos=arguments.chaos, metrics_out=arguments.metrics_out)
