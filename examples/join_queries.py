"""Join queries: estimate the cardinality of a two-table equi-join with Duet.

The paper (§III) notes that Duet supports joins the same way NeuroCard does:
learn the distribution of the joined relation and answer join queries
against it.  This script builds a small orders/customers schema, materialises
the key join, trains Duet on the join result, and estimates join queries
with predicates on both sides.

Run with::

    python examples/join_queries.py
"""

from __future__ import annotations

import numpy as np

from repro.core import DuetConfig, DuetEstimator, DuetModel, DuetTrainer
from repro.data import JoinSpec, Table
from repro.eval import evaluate_estimator
from repro.workload import Query, cardinality, make_random_workload


def build_schema() -> tuple[Table, Table]:
    rng = np.random.default_rng(7)
    customers = Table.from_dict("customers", {
        "customer_id": np.arange(200),
        "region": rng.integers(0, 8, size=200),
        "segment": rng.integers(0, 4, size=200),
        "loyalty_tier": rng.integers(0, 3, size=200),
    })
    num_orders = 3_000
    owner = rng.integers(0, 200, size=num_orders)
    orders = Table.from_dict("orders", {
        "order_id": np.arange(num_orders),
        "customer_id": owner,
        "amount_bucket": rng.integers(0, 20, size=num_orders),
        "status": rng.integers(0, 5, size=num_orders),
        "channel": rng.integers(0, 3, size=num_orders),
    })
    return orders, customers


def main() -> None:
    orders, customers = build_schema()
    joined = JoinSpec(orders, customers, "customer_id", "customer_id").materialise()
    print(f"joined relation: {joined.num_rows} rows, {joined.num_columns} columns")

    config = DuetConfig(hidden_sizes=(64, 64), epochs=4, batch_size=128,
                        expand_coefficient=2, lambda_query=0.0, seed=0)
    model = DuetModel(joined, config)
    DuetTrainer(model, joined, config=config).train()
    estimator = DuetEstimator(model)

    # A join query with predicates on both input tables.
    query = Query.from_triples([
        ("customers.region", "<=", 3),
        ("customers.segment", "=", 1),
        ("orders.amount_bucket", ">=", 10),
    ])
    truth = cardinality(joined, query)
    estimate = estimator.estimate(query)
    print(f"\njoin query: {query}")
    print(f"  true cardinality = {truth}")
    print(f"  Duet estimate    = {estimate:.1f}")

    # Accuracy across a random workload over the joined relation.
    workload = make_random_workload(joined, num_queries=200, seed=11)
    result = evaluate_estimator(estimator, workload, joined)
    print(f"\njoin-workload accuracy: {result.summary}")
    print(f"per-query latency: {result.per_query_ms:.3f} ms")


if __name__ == "__main__":
    main()
