"""High-dimensional scalability: Duet vs Naru on a wide (many-column) table.

Reproduces the paper's core efficiency argument (§IV-E, Figure 6) as a
runnable script: on a table in the style of Kddcup98 (many low-cardinality
columns), Naru's progressive sampling needs one forward pass per constrained
column while Duet needs exactly one forward pass per query, so Duet's
latency stays flat as queries touch more columns.

Run with::

    python examples/high_dimensional_scalability.py
"""

from __future__ import annotations

import time

from repro.baselines import NaruEstimator
from repro.core import DuetConfig, DuetEstimator, DuetModel, DuetTrainer
from repro.data import make_kddcup98
from repro.eval import format_series
from repro.workload import make_random_workload


def measure_latency(estimate_fn, queries) -> float:
    started = time.perf_counter()
    for query in queries:
        estimate_fn(query)
    return 1e3 * (time.perf_counter() - started) / len(queries)


def main() -> None:
    # A wide table: 30 columns of small domains (Kddcup98 style).
    table = make_kddcup98(scale=0.03, num_columns=30, seed=1)
    print(f"table {table.name!r}: {table.num_rows} rows, {table.num_columns} columns\n")

    # Train both estimators on the same data (data-driven only, for parity).
    config = DuetConfig(hidden_sizes=(64, 64), epochs=2, batch_size=128,
                        expand_coefficient=2, lambda_query=0.0, seed=0)
    model = DuetModel(table, config)
    DuetTrainer(model, table, config=config).train()
    duet = DuetEstimator(model)

    naru = NaruEstimator(table, hidden_sizes=(64, 64), num_samples=200, seed=0)
    naru.fit(epochs=2)

    # Sweep the number of constrained columns and measure per-query latency.
    column_counts = [2, 5, 10, 20, 30]
    duet_latency, naru_latency = [], []
    for count in column_counts:
        workload = make_random_workload(table, num_queries=5, seed=100 + count,
                                        max_predicates=count, label=False)
        queries = [q for q in workload if len(q.columns) == count] or workload.queries
        duet_latency.append(measure_latency(duet.estimate, queries))
        naru_latency.append(measure_latency(naru.estimate, queries))

    print(format_series("constrained columns", column_counts,
                        {"duet ms/query": duet_latency, "naru ms/query": naru_latency},
                        title="Estimation latency vs number of constrained columns"))
    speedup = naru_latency[-1] / max(duet_latency[-1], 1e-9)
    print(f"\nAt {column_counts[-1]} constrained columns Duet is ~{speedup:.1f}x faster "
          "per query; Naru's cost grows with the column count, Duet's does not.")


if __name__ == "__main__":
    main()
