"""Post-deployment fine-tuning on problem queries.

Because Duet's estimation is differentiable end to end, a deployed model can
be fine-tuned on the queries that showed large errors in production (the
paper's remedy for the long-tail problem, §IV-D).  This script:

1. trains Duet data-only (DuetD),
2. finds the worst-estimated queries of a workload,
3. fine-tunes on exactly those queries,
4. shows that their Q-Error drops without wrecking the rest of the workload.

Run with::

    python examples/finetune_on_feedback.py
"""

from __future__ import annotations

import numpy as np

from repro.core import DuetConfig, DuetEstimator, DuetModel, DuetTrainer
from repro.data import make_census
from repro.eval import evaluate_estimator, qerror, summarize_qerrors
from repro.workload import Workload, make_inworkload


def main() -> None:
    table = make_census(scale=0.08, seed=0)
    print(f"table {table.name!r}: {table.num_rows} rows, {table.num_columns} columns\n")

    config = DuetConfig(hidden_sizes=(64, 64), epochs=3, batch_size=128,
                        expand_coefficient=2, lambda_query=0.1, seed=0)
    model = DuetModel(table, config)
    trainer = DuetTrainer(model, table, config=config)
    trainer.train()
    estimator = DuetEstimator(model)

    # Production workload with temporal locality.
    production = make_inworkload(table, num_queries=400, seed=99)
    before = evaluate_estimator(estimator, production, table)
    print(f"before fine-tuning: {before.summary}")

    # Collect the queries with the largest errors — the "feedback" a DBA
    # would gather from the query log.
    worst = np.argsort(before.qerrors)[-50:]
    feedback = Workload("feedback", [production.queries[i] for i in worst],
                        production.cardinalities[worst])
    worst_before = summarize_qerrors(before.qerrors[worst])
    print(f"worst 50 queries before: {worst_before}")

    # Fine-tune only on those queries (differentiable Q-Error loss).
    trainer.finetune_on_queries(feedback, steps=60)

    after = evaluate_estimator(estimator, production, table)
    worst_after = summarize_qerrors(
        qerror(after.estimates[worst], production.cardinalities[worst]))
    print(f"\nafter fine-tuning:  {after.summary}")
    print(f"worst 50 queries after:  {worst_after}")
    improvement = worst_before.mean / max(worst_after.mean, 1e-9)
    print(f"\nmean Q-Error of the problem queries improved by ~{improvement:.1f}x.")


if __name__ == "__main__":
    main()
