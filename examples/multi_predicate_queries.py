"""Multiple predicates per column: Duet's MPSN component in action.

Queries like ``20 <= age AND age <= 40`` place two predicates on one column.
Duet handles them with a Multiple Predicates Supporting Network (§IV-F): a
small per-column network embeds the variable-length predicate list into the
fixed-width input block of the autoregressive model.  The script trains such
a model, answers two-sided range queries, and demonstrates the merged
block-diagonal MPSN acceleration.

Run with::

    python examples/multi_predicate_queries.py
"""

from __future__ import annotations

import numpy as np

from repro.core import DuetConfig, DuetEstimator, DuetModel, DuetTrainer, MPSNConfig
from repro.data import make_census
from repro.eval import evaluate_estimator
from repro.workload import Query, cardinality, make_multi_predicate_workload


def main() -> None:
    table = make_census(scale=0.06, seed=0)
    print(f"table {table.name!r}: {table.num_rows} rows, {table.num_columns} columns\n")

    # Enable MPSN support: up to two predicates per column, MLP variant.
    config = DuetConfig(hidden_sizes=(64, 64), epochs=4, batch_size=128,
                        expand_coefficient=2, multi_predicate=True,
                        max_predicates_per_column=2,
                        mpsn=MPSNConfig(kind="mlp", hidden_size=32, num_layers=2),
                        seed=0)
    model = DuetModel(table, config)
    train_queries = make_multi_predicate_workload(table, num_queries=600, seed=42)
    DuetTrainer(model, table, train_queries, config).train()
    estimator = DuetEstimator(model)

    # A two-sided range on one column plus an equality on another.
    age = table.column("age")
    low, high = age.value_of(10), age.value_of(min(40, age.num_distinct - 1))
    query = Query.from_triples([
        ("age", ">=", low),
        ("age", "<=", high),
        ("sex", "=", 0),
    ])
    estimate = estimator.estimate(query)
    truth = cardinality(table, query)
    print(f"query: {query}")
    print(f"  true cardinality = {truth}")
    print(f"  Duet estimate    = {estimate:.1f}")

    # Accuracy over a whole two-sided-range workload.
    test_queries = make_multi_predicate_workload(table, num_queries=200, seed=7)
    result = evaluate_estimator(estimator, test_queries, table)
    print(f"\ntwo-sided-range workload accuracy: {result.summary}")

    # The merged block-diagonal MPSN gives identical embeddings with a single
    # matrix multiplication for all columns (the paper's inference speed-up).
    merged = model.merged_mpsn_inference()
    codec = model.codec
    values, ops = codec.queries_to_code_arrays([query])
    encodings, presence = [], []
    for encoder in codec.encoders:
        column_values = values[:, encoder.column_index, :]
        column_ops = ops[:, encoder.column_index, :]
        encodings.append(encoder.encode(column_values, column_ops))
        presence.append((column_ops >= 0).astype(float))
    merged_blocks = merged.forward(encodings, presence)
    print(f"\nmerged MPSN produced {len(merged_blocks)} column embeddings in one pass "
          f"(first block shape: {np.asarray(merged_blocks[0]).shape})")


if __name__ == "__main__":
    main()
