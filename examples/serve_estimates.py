"""Serving walkthrough: train -> register -> serve -> load-test.

Run with::

    python examples/serve_estimates.py

The script trains Duet on the synthetic Census stand-in, persists the model
through the :class:`~repro.serving.ModelRegistry`, restarts an estimator
from the registry alone (no training state, no data tuples), and drives the
:class:`~repro.serving.EstimationService` with a concurrent load test in
three configurations: naive one-query-per-forward-pass, micro-batched, and
micro-batched with the estimate cache.
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro.core import ServingConfig
from repro.data import make_census
from repro.eval import format_serving_table, run_load_test, train_duet
from repro.serving import EstimationService, ModelRegistry
from repro.workload import make_inworkload, make_random_workload


def main() -> None:
    # 1. Train: hybrid Duet on the synthetic Census stand-in.
    table = make_census(scale=0.1, seed=0)
    print(f"table {table.name!r}: {table.num_rows} rows, {table.num_columns} columns")
    trained = train_duet(table, make_inworkload(table, num_queries=600, seed=42),
                         epochs=3)

    # 2. Register: persist parameters + config + schema under (dataset, version).
    registry = ModelRegistry(tempfile.mkdtemp(prefix="duet-registry-"))
    entry = registry.save(trained.model, dataset="census",
                          metadata={"trained_on": f"{table.num_rows} rows"})
    print(f"registered {entry.dataset}/{entry.version} "
          f"({entry.num_parameters} parameters) under {registry.root}")

    # 3. Reload: the registry alone is enough to serve (schema + config + weights).
    reloaded = registry.load_estimator("census")
    held_out = make_random_workload(table, num_queries=200, seed=99)
    original = trained.estimator.estimate_batch(held_out.queries)
    served = reloaded.estimate_batch(held_out.queries)
    print(f"reload reproduces the original estimator bit-for-bit: "
          f"{bool(np.array_equal(original, served))}")

    # 4. Serve under load: replay the workload from 8 concurrent threads.
    reports = []
    modes = [
        ("naive", ServingConfig(micro_batching=False, cache_capacity=0)),
        ("micro-batched", ServingConfig(cache_capacity=0)),
        ("batched+cache", ServingConfig()),
    ]
    for mode, config in modes:
        with EstimationService.from_registry(registry, "census",
                                             config=config) as service:
            reports.append(run_load_test(service, held_out, concurrency=8,
                                         num_requests=2_000, mode=mode, seed=0))
    print()
    print(format_serving_table(reports, title="serving throughput (8 threads)"))
    print(f"\nmicro-batching speedup over naive: "
          f"{reports[1].qps / reports[0].qps:.2f}x; "
          f"with cache: {reports[2].qps / reports[0].qps:.2f}x")


if __name__ == "__main__":
    main()
