"""Serving walkthrough: train -> register -> serve -> load-test.

Run with::

    python examples/serve_estimates.py

The script trains Duet on the synthetic Census stand-in, persists the model
through the :class:`~repro.serving.ModelRegistry` (together with the compile
options the service should serve it with), restarts an estimator from the
registry alone (no training state, no data tuples), and drives the
:class:`~repro.serving.EstimationService` with a concurrent load test in
four configurations: naive one-query-per-tape-pass, micro-batched on the
tape, micro-batched through the compiled float32 plan, and compiled with
the estimate cache on top.

The final configuration runs with request tracing sampled at 100% and plan
profiling on, and the script exits by dumping the service's Prometheus-style
metrics exposition plus the span trees of the three slowest traced requests
— where one request actually spent its time, stage by stage.
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro.core import ObsConfig, ServingConfig
from repro.data import make_census
from repro.eval import format_serving_table, run_load_test, train_duet
from repro.nn import PlanOptions
from repro.serving import EstimationService, ModelRegistry
from repro.workload import make_inworkload, make_random_workload


def main() -> None:
    # 1. Train: hybrid Duet on the synthetic Census stand-in.
    table = make_census(scale=0.1, seed=0)
    print(f"table {table.name!r}: {table.num_rows} rows, {table.num_columns} columns")
    trained = train_duet(table, make_inworkload(table, num_queries=600, seed=42),
                         epochs=3)

    # 2. Register: persist parameters + config + schema under (dataset,
    #    version), plus the plan options serving should compile with.
    registry = ModelRegistry(tempfile.mkdtemp(prefix="duet-registry-"))
    entry = registry.save(trained.model, dataset="census",
                          metadata={"trained_on": f"{table.num_rows} rows"},
                          compile_options=PlanOptions(dtype="float32"))
    print(f"registered {entry.dataset}/{entry.version} "
          f"({entry.num_parameters} parameters) under {registry.root}")

    # 3. Reload: the registry alone is enough to serve (schema + config +
    #    weights + compile options — the estimator comes back compiled).
    reloaded = registry.load_estimator("census")
    print(f"reloaded estimator is compiled: {reloaded.compiled} "
          f"({reloaded.compile_options})")
    held_out = make_random_workload(table, num_queries=200, seed=99)
    original = trained.estimator.estimate_batch(held_out.queries)
    served = reloaded.estimate_batch(held_out.queries)
    worst = float(np.max(np.abs(served - original) / np.maximum(original, 1.0)))
    print(f"float32 plan matches the float64 tape within {worst:.2e} relative")

    # 4. Serve under load: replay the workload from 8 concurrent threads.
    #    The last mode runs fully traced and profiled (tracing at 100% is
    #    for the demonstration — production samples at a few percent).
    traced = ObsConfig(trace_sample_rate=1.0, trace_keep_slowest=8,
                       profile_plan_stages=True)
    reports = []
    modes = [
        ("naive", ServingConfig(micro_batching=False, cache_capacity=0,
                                compiled=False)),
        ("micro-batched", ServingConfig(cache_capacity=0, compiled=False)),
        ("batched+compiled", ServingConfig(cache_capacity=0,
                                           inference_dtype="float32")),
        ("compiled+cache", ServingConfig(inference_dtype="float32",
                                         obs=traced)),
    ]
    last_service = None
    for mode, config in modes:
        with EstimationService.from_registry(registry, "census",
                                             config=config) as service:
            reports.append(run_load_test(service, held_out, concurrency=8,
                                         num_requests=2_000, mode=mode, seed=0))
            last_service = service
    print()
    print(format_serving_table(reports, title="serving throughput (8 threads)"))
    print(f"\nmicro-batching speedup over naive: "
          f"{reports[1].qps / reports[0].qps:.2f}x; "
          f"compiled: {reports[2].qps / reports[0].qps:.2f}x; "
          f"with cache: {reports[3].qps / reports[0].qps:.2f}x")

    # 5. Observability: the traced run's metrics and worst span trees.
    print("\nmetrics exposition (traced run, excerpt):")
    for line in last_service.metrics.exposition().splitlines():
        if line.startswith(("repro_requests_total", "repro_batches_total",
                            "repro_cache_entries", "repro_plan_buffer_bytes",
                            "repro_request_latency_seconds_count")):
            print(f"  {line}")

    profile = last_service.profile_report()
    made = sum(stage["seconds"] for stage in profile["made_stages"])
    phases = ", ".join(f"{name}={stats['seconds'] * 1e3:.1f}ms"
                       for name, stats in profile["phases"].items())
    print(f"\nplan profile: {phases}; MADE stage total {made * 1e3:.1f}ms "
          f"across {len(profile['made_stages'])} fused stages")

    print("\ntop-3 slowest traced requests:")
    for trace in last_service.tracer.slowest(3):
        print()
        for line in trace.format_tree().splitlines():
            print(f"  {line}")


if __name__ == "__main__":
    main()
