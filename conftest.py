"""Repo-wide pytest configuration.

Registers the ``slow`` marker for long-running lifecycle/soak tests and
keeps them out of the default (tier-1) run: ``pytest -x -q`` stays fast,
while the CI ``lifecycle-soak`` job (and anyone debugging the controller)
opts in with ``--run-slow``.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--run-slow", action="store_true", default=False,
        help="run tests marked @pytest.mark.slow (lifecycle soak etc.)")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: long-running lifecycle/soak test, skipped unless --run-slow")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-slow"):
        return
    skip_slow = pytest.mark.skip(reason="slow test: pass --run-slow to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
