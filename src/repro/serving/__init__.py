"""Online estimation serving layer.

Turns the offline Duet reproduction into a production-style service:

* :class:`ModelRegistry` — persist trained models (parameters + table schema
  + :class:`~repro.core.DuetConfig`) keyed by ``(dataset, version)`` with a
  ``manifest.json`` index;
* :class:`EstimateCache` / :class:`QueryKeyEncoder` — LRU memoisation of
  estimates under canonical (order- and alias-insensitive) query keys;
* :class:`MicroBatcher` — coalesces concurrent single-query requests into
  vectorised ``estimate_batch`` forward passes;
* :class:`EstimationService` — the thread-safe frontend tying them together,
  with QPS / latency-percentile / hit-rate / occupancy statistics;
* :class:`~repro.core.ServingConfig` — every serving knob in one dataclass.

Quickstart::

    from repro.serving import ModelRegistry, EstimationService

    registry = ModelRegistry("./models")
    registry.save(trained.model, dataset="census")
    with EstimationService.from_registry(registry, "census") as service:
        service.estimate(query)          # thread-safe, cached, micro-batched
        print(service.snapshot())
"""

from ..core.config import ServingConfig
from .batcher import BatcherStats, MicroBatcher
from .cache import EstimateCache, QueryKeyEncoder
from .registry import (
    ModelRegistry,
    QuarantinedVersion,
    RecoveryReport,
    RegistryEntry,
    SchemaTable,
    TableSchema,
)
from .service import EstimationService
from .stats import ServiceStats, StatsSnapshot

__all__ = [
    "ServingConfig",
    "ModelRegistry",
    "RegistryEntry",
    "QuarantinedVersion",
    "RecoveryReport",
    "TableSchema",
    "SchemaTable",
    "EstimateCache",
    "QueryKeyEncoder",
    "MicroBatcher",
    "BatcherStats",
    "EstimationService",
    "ServiceStats",
    "StatsSnapshot",
]
