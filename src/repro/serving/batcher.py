"""Micro-batching scheduler: coalesce concurrent requests into one forward pass.

Duet's estimator is vectorised — one forward pass over a batch of queries
costs barely more than over a single query — but online clients submit one
query at a time.  The :class:`MicroBatcher` bridges the two: requests are
queued, a single scheduler thread drains the queue into batches (up to
``max_batch_size`` queries, waiting at most ``max_wait`` seconds after the
first request of a batch), runs one batched forward pass, and resolves each
request's future.  Under load, batches form naturally while a pass is in
flight; when idle, a request waits at most ``max_wait`` before running solo.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..workload.query import Query

__all__ = ["MicroBatcher", "BatcherStats"]

#: sentinel enqueued by :meth:`MicroBatcher.close` to wake the scheduler
_SHUTDOWN = object()


@dataclass(frozen=True)
class BatcherStats:
    """Occupancy counters of a batcher (snapshot)."""

    num_batches: int
    num_requests: int
    max_batch_size: int

    @property
    def mean_batch_size(self) -> float:
        return self.num_requests / self.num_batches if self.num_batches else 0.0


class _Request:
    __slots__ = ("query", "future", "on_batch")

    def __init__(self, query: Query, on_batch=None) -> None:
        self.query = query
        self.on_batch = on_batch
        self.future: "Future[float]" = Future()


class MicroBatcher:
    """Coalesces single-query requests into batched ``runner`` calls.

    ``runner`` receives a list of queries and must return one estimate per
    query (anything :func:`numpy.asarray` accepts).  It may instead return
    an ``(estimates, extra)`` tuple; the ``extra`` payload (the serving
    runner's per-stage timing breakdown) is handed to each request's
    ``on_batch`` callback.  Exceptions raised by the runner propagate to
    every future of the affected batch.
    """

    def __init__(self, runner: Callable[[Sequence[Query]], np.ndarray],
                 max_batch_size: int = 64, max_wait_ms: float = 2.0) -> None:
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        self._runner = runner
        self.max_batch_size = max_batch_size
        self.max_wait = max_wait_ms / 1e3
        self._queue: "queue.Queue" = queue.Queue()
        self._lock = threading.Lock()
        # Serialises submit() against close() so no request can be enqueued
        # after the shutdown sentinel (it would never be resolved).
        self._lifecycle = threading.Lock()
        self._num_batches = 0
        self._num_requests = 0
        self._largest_batch = 0
        self._closed = False
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-microbatcher", daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------
    def submit(self, query: Query, on_batch=None) -> "Future[float]":
        """Enqueue one query; the future resolves to its estimate.

        ``on_batch(extra, batch_size)`` — when given — is invoked on the
        scheduler thread after the forward pass that served this request,
        strictly before the future resolves; the tracer attaches the pass's
        stage breakdown to a sampled request through it.  Callbacks must be
        cheap and must not raise (exceptions are swallowed: telemetry never
        fails serving).
        """
        request = _Request(query, on_batch)
        with self._lifecycle:
            if self._closed:
                raise RuntimeError("cannot submit to a closed MicroBatcher")
            self._queue.put(request)
        return request.future

    def estimate(self, query: Query) -> float:
        """Convenience blocking wrapper around :meth:`submit`."""
        return self.submit(query).result()

    def stats(self) -> BatcherStats:
        with self._lock:
            return BatcherStats(num_batches=self._num_batches,
                                num_requests=self._num_requests,
                                max_batch_size=self._largest_batch)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the scheduler after draining already-queued requests."""
        with self._lifecycle:
            if self._closed:
                return
            self._closed = True
            self._queue.put(_SHUTDOWN)
        self._thread.join()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while True:
            first = self._queue.get()
            if first is _SHUTDOWN:
                return
            batch = [first]
            deadline = time.perf_counter() + self.max_wait
            shutdown = False
            while len(batch) < self.max_batch_size:
                remaining = deadline - time.perf_counter()
                try:
                    if remaining > 0:
                        item = self._queue.get(timeout=remaining)
                    else:
                        # Past the deadline: take only what is already queued.
                        item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is _SHUTDOWN:
                    shutdown = True
                    break
                batch.append(item)
            self._run_batch(batch)
            if shutdown:
                return

    def _run_batch(self, batch: list[_Request]) -> None:
        queries = [request.query for request in batch]
        try:
            result = self._runner(queries)
            extra = None
            if isinstance(result, tuple):
                result, extra = result
            estimates = np.asarray(result, dtype=np.float64)
            if estimates.shape != (len(batch),):
                raise ValueError(
                    f"runner returned shape {estimates.shape} for a batch of {len(batch)}")
        except BaseException as error:  # noqa: BLE001 — forwarded to callers
            for request in batch:
                request.future.set_exception(error)
            return
        with self._lock:
            self._num_batches += 1
            self._num_requests += len(batch)
            self._largest_batch = max(self._largest_batch, len(batch))
        for request, estimate in zip(batch, estimates):
            if request.on_batch is not None:
                try:
                    request.on_batch(extra, len(batch))
                except Exception:  # noqa: BLE001 — telemetry never fails serving
                    pass
            request.future.set_result(float(estimate))
