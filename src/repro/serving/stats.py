"""Thread-safe service statistics: QPS, latency percentiles, cache and batch
occupancy counters.

Every ``estimate()`` call records one latency sample plus whether it was a
cache hit; the batch runner records the size of every forward pass.  A
:meth:`ServiceStats.snapshot` is cheap and consistent (taken under the same
lock the recorders use) and renders as one row of the serving report table.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

import numpy as np

__all__ = ["ServiceStats", "StatsSnapshot"]


@dataclass(frozen=True)
class StatsSnapshot:
    """Point-in-time view of a service's performance counters."""

    requests: int
    elapsed_seconds: float
    qps: float
    mean_ms: float
    p50_ms: float
    p90_ms: float
    p99_ms: float
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float
    num_batches: int
    batched_requests: int
    mean_batch_size: float
    #: hot-swaps of the served model (refreshes + cold-train escalations)
    model_swaps: int = 0

    def as_table_row(self) -> list:
        """Row for :func:`repro.eval.reporting.format_table` serving reports."""
        return [self.requests, self.qps, self.p50_ms, self.p90_ms, self.p99_ms,
                self.cache_hit_rate, self.mean_batch_size]

    def __str__(self) -> str:
        return (f"requests={self.requests} qps={self.qps:.0f} "
                f"p50={self.p50_ms:.3f}ms p90={self.p90_ms:.3f}ms "
                f"p99={self.p99_ms:.3f}ms hit_rate={self.cache_hit_rate:.2f} "
                f"batch_occupancy={self.mean_batch_size:.1f}")


class ServiceStats:
    """Accumulates request/batch observations from concurrent threads."""

    def __init__(self, latency_window: int = 65536) -> None:
        if latency_window <= 0:
            raise ValueError("latency_window must be positive")
        self._lock = threading.Lock()
        self._latencies: deque[float] = deque(maxlen=latency_window)
        self._requests = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._num_batches = 0
        self._batched_requests = 0
        self._model_swaps = 0
        self._started = time.perf_counter()

    # ------------------------------------------------------------------
    def record_request(self, latency_seconds: float, cache_hit: bool) -> None:
        with self._lock:
            self._requests += 1
            self._latencies.append(latency_seconds)
            if cache_hit:
                self._cache_hits += 1
            else:
                self._cache_misses += 1

    def record_batch(self, batch_size: int) -> None:
        with self._lock:
            self._num_batches += 1
            self._batched_requests += batch_size

    def record_swap(self) -> None:
        """Count one hot-swap of the served model."""
        with self._lock:
            self._model_swaps += 1

    def reset(self) -> None:
        """Zero every counter and restart the QPS clock."""
        with self._lock:
            self._latencies.clear()
            self._requests = 0
            self._cache_hits = 0
            self._cache_misses = 0
            self._num_batches = 0
            self._batched_requests = 0
            self._model_swaps = 0
            self._started = time.perf_counter()

    # ------------------------------------------------------------------
    def snapshot(self) -> StatsSnapshot:
        with self._lock:
            elapsed = max(time.perf_counter() - self._started, 1e-9)
            latencies_ms = 1e3 * np.asarray(self._latencies, dtype=np.float64)
            if latencies_ms.size:
                mean_ms = float(latencies_ms.mean())
                p50_ms, p90_ms, p99_ms = (
                    float(value) for value in np.percentile(latencies_ms, [50, 90, 99]))
            else:
                mean_ms = p50_ms = p90_ms = p99_ms = 0.0
            lookups = self._cache_hits + self._cache_misses
            return StatsSnapshot(
                requests=self._requests,
                elapsed_seconds=elapsed,
                qps=self._requests / elapsed,
                mean_ms=mean_ms,
                p50_ms=p50_ms,
                p90_ms=p90_ms,
                p99_ms=p99_ms,
                cache_hits=self._cache_hits,
                cache_misses=self._cache_misses,
                cache_hit_rate=self._cache_hits / lookups if lookups else 0.0,
                num_batches=self._num_batches,
                batched_requests=self._batched_requests,
                mean_batch_size=(self._batched_requests / self._num_batches
                                 if self._num_batches else 0.0),
                model_swaps=self._model_swaps,
            )
