"""Thread-safe service statistics: QPS, latency percentiles, cache and batch
occupancy counters.

Every ``estimate()`` call records one latency sample plus whether it was a
cache hit; the batch runner records the size of every forward pass.  The
counters live in a :class:`~repro.obs.MetricsRegistry` (the service's one
observable surface — text exposition, JSON snapshots, the file exporter all
read the same cells), while exact percentiles come from a fixed-size NumPy
ring buffer of the most recent latencies.  :meth:`ServiceStats.snapshot`
copies the ring under the lock (one ``memcpy``) and computes percentiles
*outside* it, so a snapshot never stalls concurrent recorders the way the
old copy-the-whole-deque-under-lock implementation did.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..obs import DEFAULT_LATENCY_BUCKETS, MetricsRegistry

__all__ = ["ServiceStats", "StatsSnapshot"]

#: batch occupancy buckets: powers of two up to the common max batch sizes
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


@dataclass(frozen=True)
class StatsSnapshot:
    """Point-in-time view of a service's performance counters."""

    requests: int
    elapsed_seconds: float
    qps: float
    mean_ms: float
    p50_ms: float
    p90_ms: float
    p99_ms: float
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float
    num_batches: int
    batched_requests: int
    mean_batch_size: float
    #: hot-swaps of the served model (refreshes + cold-train escalations)
    model_swaps: int = 0

    def as_table_row(self) -> list:
        """Row for :func:`repro.eval.reporting.format_table` serving reports."""
        return [self.requests, self.qps, self.p50_ms, self.p90_ms, self.p99_ms,
                self.cache_hit_rate, self.mean_batch_size]

    def __str__(self) -> str:
        return (f"requests={self.requests} qps={self.qps:.0f} "
                f"p50={self.p50_ms:.3f}ms p90={self.p90_ms:.3f}ms "
                f"p99={self.p99_ms:.3f}ms hit_rate={self.cache_hit_rate:.2f} "
                f"batch_occupancy={self.mean_batch_size:.1f}")


class _LatencyRing:
    """Fixed-capacity ring of the most recent latency samples (seconds).

    ``append`` is two array writes under the caller's lock; ``copy`` hands
    back a dense snapshot of the filled region so percentile math runs on a
    private array, outside any lock.
    """

    __slots__ = ("_samples", "_position", "_filled")

    def __init__(self, capacity: int) -> None:
        self._samples = np.zeros(capacity, dtype=np.float64)
        self._position = 0
        self._filled = 0

    def append(self, value: float) -> None:
        samples = self._samples
        samples[self._position] = value
        self._position = (self._position + 1) % samples.shape[0]
        if self._filled < samples.shape[0]:
            self._filled += 1

    def copy(self) -> np.ndarray:
        return self._samples[:self._filled].copy()

    def clear(self) -> None:
        self._position = 0
        self._filled = 0


class ServiceStats:
    """Accumulates request/batch observations from concurrent threads.

    All counters are registry instruments (shared with whatever lifecycle
    controller or exporter watches the same :class:`MetricsRegistry`);
    the ring buffer backing the percentiles is the only private state.
    The public recording/snapshot API is unchanged from the pre-registry
    implementation.
    """

    def __init__(self, latency_window: int = 65536,
                 metrics: MetricsRegistry | None = None) -> None:
        if latency_window <= 0:
            raise ValueError("latency_window must be positive")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        requests = self.metrics.counter(
            "repro_requests_total",
            "Requests served, split by estimate-cache outcome.",
            labels=("cache",))
        # Bind label cells once; the increment path is then one small lock.
        self._hits_cell = requests.labels(cache="hit")
        self._misses_cell = requests.labels(cache="miss")
        self._latency = self.metrics.histogram(
            "repro_request_latency_seconds",
            "End-to-end estimate() latency.",
            buckets=DEFAULT_LATENCY_BUCKETS).labels()
        self._batches = self.metrics.counter(
            "repro_batches_total", "Forward passes run.").labels()
        self._batched = self.metrics.counter(
            "repro_batched_requests_total",
            "Requests served through forward passes (batch occupancy "
            "numerator).").labels()
        self._batch_size = self.metrics.histogram(
            "repro_batch_size", "Micro-batch occupancy per forward pass.",
            buckets=BATCH_SIZE_BUCKETS).labels()
        self._swaps = self.metrics.counter(
            "repro_model_swaps_total",
            "Hot-swaps of the served model (refreshes + cold trains).").labels()
        self._ring = _LatencyRing(latency_window)
        # The histogram cell's lock doubles as the ring/clock guard: one
        # lock acquisition covers both the bucket update and the ring write.
        self._lock = self._latency._lock
        self._started = time.perf_counter()

    # ------------------------------------------------------------------
    def record_request(self, latency_seconds: float, cache_hit: bool) -> None:
        if cache_hit:
            self._hits_cell.inc()
        else:
            self._misses_cell.inc()
        self._latency.observe(latency_seconds)
        with self._lock:
            self._ring.append(latency_seconds)

    def record_batch(self, batch_size: int) -> None:
        self._batches.inc()
        self._batched.inc(batch_size)
        self._batch_size.observe(batch_size)

    def record_swap(self) -> None:
        """Count one hot-swap of the served model."""
        self._swaps.inc()

    def reset(self) -> None:
        """Zero every counter and restart the QPS clock.

        Registry cells are zeroed *in place*, so instruments bound by other
        components (exporter, scheduler) stay valid.
        """
        for name in ("repro_requests_total", "repro_request_latency_seconds",
                     "repro_batches_total", "repro_batched_requests_total",
                     "repro_batch_size", "repro_model_swaps_total"):
            self.metrics.get(name)._reset()
        with self._lock:
            self._ring.clear()
            self._started = time.perf_counter()

    # ------------------------------------------------------------------
    def snapshot(self) -> StatsSnapshot:
        with self._lock:
            elapsed = max(time.perf_counter() - self._started, 1e-9)
            window = self._ring.copy()
        # Percentile math happens on the private copy, outside the lock —
        # concurrent record_request() calls are never blocked by it.
        if window.size:
            window *= 1e3
            mean_ms = float(window.mean())
            p50_ms, p90_ms, p99_ms = (
                float(value) for value in np.percentile(window, [50, 90, 99]))
        else:
            mean_ms = p50_ms = p90_ms = p99_ms = 0.0
        hits = int(self._hits_cell.value)
        misses = int(self._misses_cell.value)
        lookups = hits + misses
        num_batches = int(self._batches.value)
        batched_requests = int(self._batched.value)
        return StatsSnapshot(
            requests=lookups,
            elapsed_seconds=elapsed,
            qps=lookups / elapsed,
            mean_ms=mean_ms,
            p50_ms=p50_ms,
            p90_ms=p90_ms,
            p99_ms=p99_ms,
            cache_hits=hits,
            cache_misses=misses,
            cache_hit_rate=hits / lookups if lookups else 0.0,
            num_batches=num_batches,
            batched_requests=batched_requests,
            mean_batch_size=(batched_requests / num_batches
                             if num_batches else 0.0),
            model_swaps=int(self._swaps.value),
        )
