"""Model registry: persist trained Duet models together with what it takes
to serve them.

A registry directory holds one sub-directory per ``(dataset, version)`` pair
containing the model parameters (``model.npz``, via
:mod:`repro.nn.serialization`), the table schema (``schema.npz``: per-column
sorted distinct values plus the row count — everything predicate translation
and selectivity scaling need, without shipping the data itself), and the
:class:`~repro.core.DuetConfig` the model was built with.  A top-level
``manifest.json`` indexes every entry and tracks the latest version per
dataset, so a service can be started with nothing but a registry path and a
dataset name.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
import shutil
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from ..core.config import DuetConfig, MPSNConfig
from ..core.estimator import DuetEstimator
from ..core.model import DuetModel
from ..data.column import Column
from ..data.table import Table
from ..nn import PlanOptions
from ..nn.serialization import load_module, npz_path, save_module

__all__ = ["TableSchema", "SchemaTable", "RegistryEntry", "ModelRegistry",
           "QuarantinedVersion", "RecoveryReport"]

_MODEL_FILE = "model.npz"
_SCHEMA_FILE = "schema.npz"
_MANIFEST_FILE = "manifest.json"
_QUARANTINE_DIR = ".quarantine"
_VERSION_PATTERN = re.compile(r"^v(\d+)$")


def _file_checksum(path: Path) -> str:
    """sha256 hex digest of ``path``'s contents."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


class SchemaTable(Table):
    """A data-less stand-in for a table: real domains, no tuples.

    Serving needs each column's sorted distinct values (to translate raw
    predicate literals into code intervals) and the row count (to scale
    selectivities into cardinalities) but not the tuples themselves, so a
    reloaded model carries this lightweight table instead of the data.
    """

    def __init__(self, name: str, columns, num_rows: int) -> None:
        super().__init__(name, columns)
        self._num_rows = int(num_rows)

    @property
    def num_rows(self) -> int:
        return self._num_rows

    def _no_data(self) -> RuntimeError:
        return RuntimeError(
            f"schema-only table {self.name!r} carries no tuples; use the data "
            f"table for execution, sampling, or training")

    def code_matrix(self, rows=None) -> np.ndarray:
        raise self._no_data()

    def row(self, index: int) -> list:
        raise self._no_data()

    def sample_rows(self, count: int, rng=None) -> np.ndarray:
        raise self._no_data()


@dataclass(frozen=True)
class TableSchema:
    """The serving-relevant schema of a table: domains plus row count."""

    name: str
    num_rows: int
    column_names: tuple[str, ...]
    distinct_values: tuple[np.ndarray, ...]

    @classmethod
    def from_table(cls, table: Table) -> "TableSchema":
        return cls(
            name=table.name,
            num_rows=table.num_rows,
            column_names=tuple(table.column_names),
            distinct_values=tuple(column.distinct_values for column in table.columns),
        )

    def to_table(self) -> SchemaTable:
        """Rebuild a :class:`SchemaTable` usable by codec and estimator."""
        columns = [
            Column(name=column_name, distinct_values=values,
                   codes=np.empty(0, dtype=np.int64))
            for column_name, values in zip(self.column_names, self.distinct_values)
        ]
        return SchemaTable(self.name, columns, self.num_rows)

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        header = {"name": self.name, "num_rows": self.num_rows,
                  "column_names": list(self.column_names)}
        payload = {f"column{index}": values
                   for index, values in enumerate(self.distinct_values)}
        payload["__header__"] = np.array(json.dumps(header))
        target = npz_path(path)
        # Write-then-rename, matching save_module: a crash mid-write never
        # leaves a truncated schema under the final name.
        scratch = target.with_name(target.name + ".tmp.npz")
        try:
            np.savez(scratch, **payload)
            os.replace(scratch, target)
        finally:
            scratch.unlink(missing_ok=True)
        return target

    @classmethod
    def load(cls, path: str | Path) -> "TableSchema":
        with np.load(Path(path), allow_pickle=False) as archive:
            header = json.loads(str(archive["__header__"]))
            values = tuple(archive[f"column{index}"]
                           for index in range(len(header["column_names"])))
        return cls(name=header["name"], num_rows=int(header["num_rows"]),
                   column_names=tuple(header["column_names"]),
                   distinct_values=values)


@dataclass(frozen=True)
class RegistryEntry:
    """One saved ``(dataset, version)`` model as recorded in the manifest."""

    dataset: str
    version: str
    directory: Path
    created_at: float
    num_parameters: int
    metadata: dict
    #: store ``data_version`` the model was trained on (None for models of
    #: static tables that never passed through a ColumnStore)
    data_version: int | None = None

    @property
    def model_path(self) -> Path:
        return self.directory / _MODEL_FILE

    @property
    def schema_path(self) -> Path:
        return self.directory / _SCHEMA_FILE


@dataclass(frozen=True)
class QuarantinedVersion:
    """One ``(dataset, version)`` recovery set aside instead of serving."""

    dataset: str
    version: str
    reason: str          #: missing_model | missing_schema | checksum_mismatch | orphan
    moved_to: Path | None


@dataclass(frozen=True)
class RecoveryReport:
    """What one :meth:`ModelRegistry.recover` pass found and fixed."""

    checked: int                                    #: manifest entries examined
    quarantined: tuple[QuarantinedVersion, ...]     #: entries/dirs set aside
    adopted: tuple[tuple[str, str], ...]            #: versions re-indexed after a lost manifest
    manifest_rebuilt: bool                          #: manifest was unreadable and rebuilt from disk

    @property
    def clean(self) -> bool:
        return not self.quarantined and not self.manifest_rebuilt


def _config_to_dict(config: DuetConfig) -> dict:
    payload = dataclasses.asdict(config)
    payload["hidden_sizes"] = list(config.hidden_sizes)
    return payload


def _config_from_dict(payload: dict) -> DuetConfig:
    payload = dict(payload)
    payload["hidden_sizes"] = tuple(payload["hidden_sizes"])
    payload["mpsn"] = MPSNConfig(**payload["mpsn"])
    return DuetConfig(**payload)


class ModelRegistry:
    """Save/load trained Duet models keyed by ``(dataset, version)``."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        # Serialises manifest read-modify-write cycles (save vs prune): the
        # lifecycle controller prunes from its daemon thread while serving
        # threads may be saving refreshed models into the same registry.
        self._manifest_lock = threading.Lock()
        #: optional fault-injection hook, called as ``hook(site, **context)``
        #: at the I/O sites ``registry.save`` (before any file is written)
        #: and ``registry.manifest`` (checkpoint written, manifest not yet)
        #: — the seam :class:`~repro.lifecycle.FaultInjector` threads
        #: through; ``None`` (the default) costs one attribute read.
        self.fault_hook = None

    def _fault(self, site: str, **context) -> None:
        hook = self.fault_hook
        if hook is not None:
            hook(site, **context)

    # ------------------------------------------------------------------
    # Manifest bookkeeping
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / _MANIFEST_FILE

    def _read_manifest(self) -> dict:
        if not self.manifest_path.exists():
            return {"datasets": {}}
        return json.loads(self.manifest_path.read_text())

    def _write_manifest(self, manifest: dict) -> None:
        # Write-then-rename keeps the manifest readable even if the process
        # dies mid-save.
        scratch = self.manifest_path.with_name(_MANIFEST_FILE + ".tmp")
        scratch.write_text(json.dumps(manifest, indent=2, sort_keys=True))
        scratch.replace(self.manifest_path)

    # ------------------------------------------------------------------
    # Save
    # ------------------------------------------------------------------
    def save(self, model: DuetModel, dataset: str, version: str | None = None,
             metadata: dict | None = None,
             compile_options: PlanOptions | None = None,
             data_version: int | None = None) -> RegistryEntry:
        """Persist ``model`` under ``(dataset, version)`` and index it.

        ``version`` defaults to the next ``v<N>`` after the dataset's
        current versions.  Saving an existing version overwrites it.
        ``compile_options`` records how the model should be lowered for
        serving; :meth:`load_estimator` rebuilds the compiled plan from
        them, so a reloaded estimator serves through the same fast path
        (and dtype) the model was registered with.  ``data_version`` pins
        the store version the model was trained on (defaulting to the
        model table's own ``data_version`` when it is a
        :class:`~repro.data.Snapshot`); the serving layer compares it
        against the live store to report staleness.
        """
        with self._manifest_lock:
            self._fault("registry.save", dataset=dataset)
            manifest = self._read_manifest()
            entry = manifest["datasets"].setdefault(dataset,
                                                    {"latest": None, "versions": {}})
            version = version or self._next_version(entry["versions"])
            directory = self.root / dataset / version
            directory.mkdir(parents=True, exist_ok=True)
            if data_version is None:
                data_version = getattr(model.table, "data_version", None)

            model_metadata = {"config": _config_to_dict(model.config),
                              "dataset": dataset, "version": version,
                              "data_version": data_version}
            if compile_options is not None:
                model_metadata["compile_options"] = compile_options.to_dict()
            save_module(model, directory / _MODEL_FILE, metadata=model_metadata)
            TableSchema.from_table(model.table).save(directory / _SCHEMA_FILE)
            # Checkpoint files are on disk; a crash between here and the
            # manifest rewrite leaves an uncommitted orphan directory that
            # recover() quarantines on the next start.
            self._fault("registry.manifest", dataset=dataset, version=version)

            record = {
                "created_at": time.time(),
                "num_parameters": model.num_parameters(),
                "metadata": metadata or {},
                "data_version": data_version,
                "checksums": {
                    _MODEL_FILE: _file_checksum(directory / _MODEL_FILE),
                    _SCHEMA_FILE: _file_checksum(directory / _SCHEMA_FILE),
                },
            }
            entry["versions"][version] = record
            entry["latest"] = version
            self._write_manifest(manifest)
            return RegistryEntry(dataset=dataset, version=version, directory=directory,
                                 created_at=record["created_at"],
                                 num_parameters=record["num_parameters"],
                                 metadata=record["metadata"],
                                 data_version=data_version)

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    def prune(self, dataset: str, keep: int = 3,
              protect: Sequence[str] = ()) -> list[str]:
        """Trim ``dataset`` down to its ``keep`` newest versions.

        Every refresh appends a version, so a long-running service grows the
        registry without bound; retention keeps the ``keep`` most recent
        versions (by creation time, version name breaking ties) and deletes
        the rest — manifest records first, then the on-disk directories.

        The manifest's ``latest`` version and every version in ``protect``
        (the serving layer passes the version it currently serves, which
        after a concurrent save may no longer be the latest) are *never*
        deleted, whatever ``keep`` says.  After pruning, the manifest is
        checked for consistency: the surviving ``latest`` must still have
        both its record and its files, otherwise the prune is aborted before
        the manifest is rewritten.

        Returns the version names removed (may be empty).
        """
        if keep < 1:
            raise ValueError("prune must keep at least one version")
        with self._manifest_lock:
            manifest = self._read_manifest()
            entry = manifest["datasets"].get(dataset)
            if entry is None:
                return []
            versions = entry["versions"]

            def recency(name: str) -> tuple:
                # created_at first; same-instant saves (fast refresh loops)
                # are broken by the numeric version suffix, not
                # lexicographically.
                match = _VERSION_PATTERN.match(name)
                return (versions[name]["created_at"],
                        int(match.group(1)) if match else -1, name)

            ordered = sorted(versions, key=recency, reverse=True)
            keepers = set(ordered[:keep])
            keepers.update(name for name in protect if name in versions)
            if entry["latest"]:
                keepers.add(entry["latest"])
            doomed = [name for name in ordered if name not in keepers]
            if not doomed:
                return []
            # Manifest-consistency check before touching anything: the
            # served/latest survivor must actually exist on disk.
            latest = entry["latest"]
            if latest and not (self.root / dataset / latest / _MODEL_FILE).exists():
                raise RuntimeError(
                    f"registry manifest names latest {latest!r} for {dataset!r} "
                    f"but its files are missing; refusing to prune an "
                    f"inconsistent registry")
            for name in doomed:
                del versions[name]
            self._write_manifest(manifest)
        for name in doomed:
            shutil.rmtree(self.root / dataset / name, ignore_errors=True)
        return doomed

    def discard(self, dataset: str, version: str) -> bool:
        """Remove one registered version: manifest record first, then files.

        The rollback half of a failed swap: a candidate that was registered
        but could not be installed must not linger as a never-served
        "latest" that retention then protects forever.  ``latest`` is
        re-pointed at the newest surviving version (by creation time).
        Returns ``False`` when ``(dataset, version)`` was not registered.
        """
        with self._manifest_lock:
            manifest = self._read_manifest()
            entry = manifest["datasets"].get(dataset)
            if entry is None or version not in entry["versions"]:
                return False
            del entry["versions"][version]
            if entry["latest"] == version:
                entry["latest"] = self._newest(entry["versions"])
            self._write_manifest(manifest)
        shutil.rmtree(self.root / dataset / version, ignore_errors=True)
        return True

    @staticmethod
    def _next_version(versions: dict) -> str:
        numbers = [int(match.group(1)) for name in versions
                   if (match := _VERSION_PATTERN.match(name))]
        return f"v{max(numbers, default=0) + 1}"

    @staticmethod
    def _newest(versions: dict) -> str | None:
        """Most recently created version name, or ``None`` when empty."""

        def recency(name: str) -> tuple:
            match = _VERSION_PATTERN.match(name)
            return (versions[name]["created_at"],
                    int(match.group(1)) if match else -1, name)

        return max(versions, key=recency, default=None)

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def _verify_record(self, dataset: str, version: str, record: dict) -> str | None:
        """Why ``(dataset, version)`` cannot be served; ``None`` when it can."""
        directory = self.root / dataset / version
        if not (directory / _MODEL_FILE).exists():
            return "missing_model"
        if not (directory / _SCHEMA_FILE).exists():
            return "missing_schema"
        for filename, expected in (record.get("checksums") or {}).items():
            if _file_checksum(directory / filename) != expected:
                return "checksum_mismatch"
        return None

    def _quarantine_files(self, dataset: str, version: str) -> Path | None:
        """Move ``(dataset, version)``'s directory under the quarantine area."""
        source = self.root / dataset / version
        if not source.exists():
            return None
        pen = self.root / _QUARANTINE_DIR
        pen.mkdir(parents=True, exist_ok=True)
        target = pen / f"{dataset}-{version}"
        suffix = 1
        while target.exists():
            suffix += 1
            target = pen / f"{dataset}-{version}-{suffix}"
        shutil.move(str(source), str(target))
        return target

    def _adopt_from_disk(self, manifest: dict) -> list[tuple[str, str]]:
        """Re-index loadable version directories into a rebuilt manifest."""
        adopted: list[tuple[str, str]] = []
        for dataset_dir in sorted(self.root.iterdir()):
            if not dataset_dir.is_dir() or dataset_dir.name == _QUARANTINE_DIR:
                continue
            versions: dict = {}
            for version_dir in sorted(dataset_dir.iterdir()):
                model_path = version_dir / _MODEL_FILE
                if not model_path.exists() or not (version_dir / _SCHEMA_FILE).exists():
                    continue
                try:
                    metadata = load_metadata(model_path)
                except Exception:  # noqa: BLE001 — unreadable archive: skip
                    continue
                versions[version_dir.name] = {
                    "created_at": model_path.stat().st_mtime,
                    "num_parameters": 0,
                    "metadata": {"recovered": True},
                    "data_version": metadata.get("data_version"),
                    "checksums": {
                        _MODEL_FILE: _file_checksum(model_path),
                        _SCHEMA_FILE: _file_checksum(version_dir / _SCHEMA_FILE),
                    },
                }
                adopted.append((dataset_dir.name, version_dir.name))
            if versions:
                manifest["datasets"][dataset_dir.name] = {
                    "latest": self._newest(versions), "versions": versions}
        return adopted

    def recover(self) -> RecoveryReport:
        """Startup consistency pass: quarantine what a crash left behind.

        Three failure shapes are repaired, none of them fatally:

        * a manifest entry whose checkpoint files are missing or fail their
          recorded checksums (torn write below the filesystem, a crash
          mid-prune, external corruption) is *quarantined* — dropped from
          the manifest, its files moved under ``.quarantine/``, and
          ``latest`` re-pointed at the newest surviving version — instead
          of poisoning every later :meth:`load_estimator`;
        * a version directory the manifest never committed (crash between
          checkpoint write and manifest rewrite) is quarantined as an
          uncommitted orphan — the manifest is the source of truth;
        * an unreadable ``manifest.json`` is set aside and rebuilt by
          re-indexing every loadable version directory on disk.

        Idempotent: a clean registry is untouched and reports
        :attr:`RecoveryReport.clean`.
        """
        with self._manifest_lock:
            rebuilt = False
            try:
                manifest = self._read_manifest()
            except (json.JSONDecodeError, OSError):
                rebuilt = True
                corrupt = self.manifest_path.with_name(_MANIFEST_FILE + ".corrupt")
                os.replace(self.manifest_path, corrupt)
                manifest = {"datasets": {}}
            adopted = self._adopt_from_disk(manifest) if rebuilt else []
            quarantined: list[QuarantinedVersion] = []
            checked = 0
            for dataset, entry in manifest["datasets"].items():
                for version in list(entry["versions"]):
                    checked += 1
                    reason = self._verify_record(dataset, version,
                                                 entry["versions"][version])
                    if reason is None:
                        continue
                    del entry["versions"][version]
                    quarantined.append(QuarantinedVersion(
                        dataset=dataset, version=version, reason=reason,
                        moved_to=self._quarantine_files(dataset, version)))
                if entry["latest"] not in entry["versions"]:
                    entry["latest"] = self._newest(entry["versions"])
            # Orphan directories: checkpoints written but never committed.
            for dataset_dir in sorted(self.root.iterdir()):
                if not dataset_dir.is_dir() or dataset_dir.name == _QUARANTINE_DIR:
                    continue
                committed = manifest["datasets"].get(dataset_dir.name,
                                                     {"versions": {}})["versions"]
                for version_dir in sorted(dataset_dir.iterdir()):
                    if version_dir.is_dir() and version_dir.name not in committed:
                        quarantined.append(QuarantinedVersion(
                            dataset=dataset_dir.name, version=version_dir.name,
                            reason="orphan",
                            moved_to=self._quarantine_files(dataset_dir.name,
                                                            version_dir.name)))
            if quarantined or rebuilt:
                self._write_manifest(manifest)
            return RecoveryReport(checked=checked,
                                  quarantined=tuple(quarantined),
                                  adopted=tuple(adopted),
                                  manifest_rebuilt=rebuilt)

    # ------------------------------------------------------------------
    # Load
    # ------------------------------------------------------------------
    def _load_entry(self, entry: RegistryEntry) -> tuple[DuetModel, dict]:
        """Rebuild the saved model of ``entry``; returns ``(model, metadata)``."""
        schema = TableSchema.load(entry.schema_path)
        table = schema.to_table()
        metadata = load_metadata(entry.model_path)
        model = DuetModel(table, _config_from_dict(metadata["config"]))
        load_module(model, entry.model_path)
        model.eval()
        return model, metadata

    def load_model(self, dataset: str, version: str | None = None) -> DuetModel:
        """Rebuild the saved model (schema table + config + parameters)."""
        model, _ = self._load_entry(self.entry(dataset, version))
        return model

    def compile_options(self, dataset: str, version: str | None = None
                        ) -> PlanOptions | None:
        """The persisted plan options of ``(dataset, version)``, if any."""
        entry = self.entry(dataset, version)
        payload = load_metadata(entry.model_path).get("compile_options")
        return None if payload is None else PlanOptions.from_dict(payload)

    def load_estimator(self, dataset: str, version: str | None = None) -> DuetEstimator:
        """Rebuild a ready-to-serve estimator for ``(dataset, version)``.

        When the entry was saved with ``compile_options`` the estimator
        comes back compiled — plans rebuilt from the persisted options, the
        lowered path active by default.
        """
        entry = self.entry(dataset, version)
        model, metadata = self._load_entry(entry)
        estimator = DuetEstimator(model)
        estimator.model_version = entry.version
        estimator.data_version = entry.data_version
        payload = metadata.get("compile_options")
        if payload is not None:
            estimator.compile(PlanOptions.from_dict(payload))
        return estimator

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def datasets(self) -> list[str]:
        return sorted(self._read_manifest()["datasets"])

    def versions(self, dataset: str) -> list[str]:
        entry = self._read_manifest()["datasets"].get(dataset, {"versions": {}})
        return sorted(entry["versions"])

    def latest_version(self, dataset: str) -> str:
        datasets = self._read_manifest()["datasets"]
        if dataset not in datasets or not datasets[dataset]["latest"]:
            raise KeyError(f"registry has no models for dataset {dataset!r}")
        return datasets[dataset]["latest"]

    def entry(self, dataset: str, version: str | None = None) -> RegistryEntry:
        version = version or self.latest_version(dataset)
        datasets = self._read_manifest()["datasets"]
        if dataset not in datasets or version not in datasets[dataset]["versions"]:
            raise KeyError(f"registry has no entry for ({dataset!r}, {version!r})")
        record = datasets[dataset]["versions"][version]
        return RegistryEntry(dataset=dataset, version=version,
                             directory=self.root / dataset / version,
                             created_at=record["created_at"],
                             num_parameters=record["num_parameters"],
                             metadata=record["metadata"],
                             data_version=record.get("data_version"))

    def __contains__(self, dataset: str) -> bool:
        return dataset in self._read_manifest()["datasets"]


def load_metadata(path: str | Path) -> dict:
    """Read only the JSON metadata of a ``save_module`` archive."""
    with np.load(Path(path), allow_pickle=False) as archive:
        return json.loads(str(archive["__metadata__"]))
