"""Estimate cache: canonical query keys plus a thread-safe LRU store.

Online workloads repeat themselves (the paper's In-Q workloads model exactly
that locality), so the serving layer memoises estimates.  The cache key is
*canonical*: every predicate is translated into the inclusive code interval
it selects on its column (the same translation Duet's zero-out mask uses),
intervals on the same column are intersected, and the per-column intervals
are sorted.  Two queries therefore share a key whenever they select the same
tuples — regardless of predicate order or of operator spelling (on an
integer-coded domain ``x > 3`` and ``x >= 4`` select the same interval).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable

from ..data.table import Table
from ..workload.query import Query

__all__ = ["QueryKeyEncoder", "EstimateCache"]


class QueryKeyEncoder:
    """Maps queries onto canonical, hashable cache keys for one table.

    ``namespace`` scopes every key to the serving identity producing the
    estimates — the service passes ``(dataset, model_version, data_version)``
    — so entries cached under one model can never be served after a hot-swap
    to another (the swap also flushes, but the key guards against any path
    that misses the flush, e.g. an external shared cache).
    """

    def __init__(self, table: Table, namespace: tuple | None = None) -> None:
        self.table = table
        self.namespace = namespace

    def key(self, query: Query) -> tuple:
        """Canonical key: sorted ``(column, low, high)`` code intervals.

        Built on :meth:`Query.code_intervals` — the same interval semantics
        the ground-truth executor uses — so two queries share a key exactly
        when they select the same tuples (and, with a namespace attached,
        are answered by the same model over the same data version).
        """
        intervals = tuple(sorted(
            (column_index, low, high)
            for column_index, (low, high) in query.code_intervals(self.table).items()
        ))
        if self.namespace is None:
            return intervals
        return (self.namespace, intervals)


class EstimateCache:
    """A thread-safe LRU cache of ``key -> estimate``.

    ``capacity == 0`` disables the cache (every lookup misses, inserts are
    dropped), which lets the service keep one code path for both modes.
    Hit/miss accounting lives in :class:`~repro.serving.ServiceStats`, the
    single authoritative counter set the service reports from.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, float]" = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def get(self, key: Hashable) -> float | None:
        """Cached estimate for ``key``, or ``None`` on a miss."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return self._entries[key]
            return None

    def put(self, key: Hashable, value: float) -> None:
        """Insert (or refresh) an estimate, evicting the LRU entry if full."""
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = float(value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries
