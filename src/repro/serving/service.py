"""Online estimation service: the frontend tying registry, cache, batcher and
stats together.

One :class:`EstimationService` wraps one :class:`~repro.core.CardinalityEstimator`
(usually a :class:`~repro.core.DuetEstimator` reloaded from a
:class:`~repro.serving.ModelRegistry`) and answers concurrent single-query
``estimate()`` calls:

1. the query is canonicalised into a cache key; a hit returns immediately
   without touching the model,
2. on a miss the query is handed to the :class:`~repro.serving.MicroBatcher`,
   which coalesces concurrent misses into one vectorised forward pass,
3. the result is cached and the request latency recorded.

The service is thread-safe and meant to be shared across worker threads —
the usage pattern of a query optimizer asking for cardinalities while
planning many queries at once.

When the underlying data is mutable (a :class:`~repro.data.ColumnStore`),
the service also owns the staleness side of the lifecycle: it knows which
``data_version`` the served model was trained on, reports how many rows have
been appended since (:meth:`EstimationService.staleness`), and can
:meth:`~EstimationService.refresh` itself — incremental fine-tune on the
delta, re-register the model, hot-swap the compiled plan, and flush the
estimate cache, all while the old plan keeps serving traffic.
"""

from __future__ import annotations

import threading
import time
from typing import Sequence

import numpy as np

from ..core.config import ServingConfig
from ..core.interface import CardinalityEstimator
from ..core.trainer import DuetTrainer
from ..data.store import ColumnStore
from ..nn import PlanOptions
from ..obs import MetricsRegistry, Trace, Tracer
from ..workload.query import Query
from .batcher import BatcherStats, MicroBatcher
from .cache import EstimateCache, QueryKeyEncoder
from .registry import ModelRegistry, RegistryEntry
from .stats import ServiceStats, StatsSnapshot

__all__ = ["EstimationService"]


class EstimationService:
    """Concurrent, cached, micro-batched frontend over one estimator."""

    def __init__(self, estimator: CardinalityEstimator,
                 config: ServingConfig | None = None,
                 *,
                 store: ColumnStore | None = None,
                 registry: ModelRegistry | None = None,
                 dataset: str | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        self.estimator = estimator
        self.config = config or ServingConfig()
        # Data lifecycle wiring: the live store (for staleness/refresh), the
        # registry to re-register refreshed models into, and the dataset name
        # the registry files them under.  A Snapshot-backed estimator brings
        # its own store; everything else defaults to static-data behaviour.
        self.store = store if store is not None else getattr(estimator.table,
                                                             "store", None)
        self.registry = registry
        self.dataset = dataset or estimator.table.name
        self.model_version: str | None = getattr(estimator, "model_version", None)
        self.data_version: int | None = getattr(estimator, "data_version", None)
        if self.data_version is None:
            self.data_version = getattr(estimator.table, "data_version", None)
        self._keys = QueryKeyEncoder(estimator.table, namespace=self._namespace())
        self.cache = EstimateCache(self.config.cache_capacity)
        #: one registry per service unless the caller passes a shared one
        #: (the lifecycle scheduler shares it, so serving and lifecycle
        #: metrics land in one exposition)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.stats = ServiceStats(latency_window=self.config.latency_window,
                                  metrics=self.metrics)
        obs = self.config.obs
        #: span sampler; ``trace_sample_rate == 0`` keeps the request path
        #: allocation-free (raise ``tracer.sample_rate`` at runtime to dial
        #: tracing up on a live service)
        self.tracer = Tracer(sample_rate=obs.trace_sample_rate,
                             keep_slowest=obs.trace_keep_slowest)
        self.metrics.gauge("repro_cache_entries",
                           "Live entries of the estimate LRU cache.",
                           fn=lambda: len(self.cache))
        self.metrics.gauge("repro_plan_buffer_bytes",
                           "Reusable buffer footprint of the serving plan "
                           "(0 when uncompiled).",
                           fn=self._plan_buffer_bytes)
        self._timed_runner = self._build_runner()
        self._refresh_lock = threading.Lock()
        self._observers: tuple = ()
        self._observer_lock = threading.Lock()
        self._batcher: MicroBatcher | None = None
        if self.config.micro_batching:
            self._batcher = MicroBatcher(self._run_batch,
                                         max_batch_size=self.config.max_batch_size,
                                         max_wait_ms=self.config.max_wait_ms)

    def _namespace(self) -> tuple:
        """Cache-key scope: estimates are only valid for this identity."""
        return (self.dataset, self.model_version, self.data_version)

    def _build_runner(self):
        """Select the batch runner for the current model weights.

        Compiled fast path: lower the model into a plan for this service
        (reusing the estimator's own plan when the options match; the
        estimator's default path is never mutated).  All passes funnel
        through the single batcher thread, so plan buffers are reused
        batch after batch.  ``compiled=False`` pins the tape path even
        when the estimator itself was compiled (e.g. by a registry load),
        so the mode really is one-tape-pass-per-batch.
        """
        estimator = self.estimator
        if self.config.compiled:
            factory = getattr(estimator, "timed_batch_runner", None)
            if factory is not None:
                dtype = self.config.inference_dtype
                if dtype is None:
                    # Defer to the estimator's own options (e.g. the dtype
                    # persisted in the registry); the matching options also
                    # let the runner share the estimator's existing plan.
                    persisted = getattr(estimator, "compile_options", None)
                    dtype = persisted.dtype if persisted is not None else "float64"
                runner = factory(PlanOptions(dtype=dtype))
                if self.config.obs.profile_plan_stages:
                    compiled = getattr(runner, "compiled", None)
                    if compiled is not None:
                        compiled.enable_profiling(True)
                return runner
        else:
            tape_factory = getattr(estimator, "tape_batch_runner", None)
            if tape_factory is not None:
                return tape_factory()
        return estimator.estimate_batch_timed

    def _plan_buffer_bytes(self) -> int:
        compiled = getattr(self._timed_runner, "compiled", None)
        return compiled.buffer_bytes if compiled is not None else 0

    def profile_report(self) -> dict | None:
        """Per-stage attribution of the serving plan's time.

        ``None`` when the service runs uncompiled; all-zero counters until
        ``ObsConfig.profile_plan_stages`` enables the hooks.
        """
        compiled = getattr(self._timed_runner, "compiled", None)
        return compiled.profile_report() if compiled is not None else None

    @classmethod
    def from_registry(cls, registry: ModelRegistry | str, dataset: str,
                      version: str | None = None,
                      config: ServingConfig | None = None,
                      store: ColumnStore | None = None) -> "EstimationService":
        """Start a service from a saved model: registry path + dataset name.

        Passing the live ``store`` the dataset is ingested into arms the
        staleness/refresh lifecycle; the registry is kept attached so
        :meth:`refresh` re-registers fine-tuned models under new versions.
        """
        if not isinstance(registry, ModelRegistry):
            registry = ModelRegistry(registry)
        return cls(registry.load_estimator(dataset, version), config,
                   store=store, registry=registry, dataset=dataset)

    # ------------------------------------------------------------------
    # Observers (lifecycle taps on the served query stream)
    # ------------------------------------------------------------------
    def add_observer(self, observer) -> None:
        """Register a callable invoked with every served :class:`Query`.

        The lifecycle layer uses this to sample the live query stream into
        its drift probe set without the service knowing about monitors.
        Observers run on the caller's thread and must be cheap; an observer
        exception is swallowed (monitoring must never fail serving).
        """
        with self._observer_lock:
            self._observers = (*self._observers, observer)

    def remove_observer(self, observer) -> None:
        with self._observer_lock:
            # Equality, not identity: bound methods (monitor.observe) are
            # fresh objects on every attribute access but compare equal.
            self._observers = tuple(existing for existing in self._observers
                                    if existing != observer)

    def _notify_observers(self, query: Query) -> None:
        for observer in self._observers:  # tuple read is atomic, no lock
            try:
                observer(query)
            except Exception:  # noqa: BLE001 — monitoring must not fail serving
                pass

    # ------------------------------------------------------------------
    # Request paths
    # ------------------------------------------------------------------
    def estimate(self, query: Query) -> float:
        """Answer one query: cache, then (micro-batched) forward pass."""
        started = time.perf_counter()
        # With sampling at 0 this is one attribute read and one compare.
        trace: Trace | None = self.tracer.maybe_trace(detail=query)
        if self._observers:
            self._notify_observers(query)
        # Capture the key encoder once: a concurrent hot-swap replaces
        # self._keys (new namespace) and flushes the cache, and re-checking
        # identity before the put keeps this request from re-inserting an
        # estimate under the superseded namespace after the flush.
        keys = self._keys
        key = keys.key(query) if self.config.cache_capacity else None
        if key is not None:
            cached = self.cache.get(key)
            if cached is not None:
                self.stats.record_request(time.perf_counter() - started, cache_hit=True)
                if trace is not None:
                    trace.add("cache_lookup", trace.elapsed())
                    trace.finish(cache_hit=True)
                return cached
        if trace is not None:
            # Key encoding + the missed probe, measured from the trace start.
            trace.add("cache_lookup", trace.elapsed())
        if self._batcher is not None:
            if trace is not None:
                batch_started = time.perf_counter()
                estimate = self._batcher.submit(
                    query, on_batch=trace.attach_breakdown).result()
                trace.add_batch_span(time.perf_counter() - batch_started)
            else:
                estimate = self._batcher.submit(query).result()
        else:
            batch_started = time.perf_counter()
            estimates, breakdown = self._run_batch([query])
            estimate = float(np.asarray(estimates)[0])
            if trace is not None:
                trace.attach_breakdown(breakdown, 1)
                trace.add_batch_span(time.perf_counter() - batch_started)
        if key is not None and self._keys is keys:
            self.cache.put(key, estimate)
        self.stats.record_request(time.perf_counter() - started, cache_hit=False)
        if trace is not None:
            trace.finish(cache_hit=False)
        return estimate

    def estimate_batch(self, queries: Sequence[Query]) -> np.ndarray:
        """Vectorised offline path: answer a whole batch through the cache.

        Cached queries are served from the cache; the rest go through one
        forward pass.  Useful for accuracy evaluation of a running service.
        """
        queries = list(queries)
        started = time.perf_counter()
        if self._observers:
            for query in queries:
                self._notify_observers(query)
        estimates = np.empty(len(queries), dtype=np.float64)
        missing: list[int] = []
        encoder = self._keys  # captured once; see estimate() for why
        keys: list = [None] * len(queries)
        for index, query in enumerate(queries):
            key = encoder.key(query) if self.config.cache_capacity else None
            keys[index] = key
            cached = self.cache.get(key) if key is not None else None
            if cached is None:
                missing.append(index)
            else:
                estimates[index] = cached
        if missing:
            estimates_missing, _ = self._run_batch(
                [queries[index] for index in missing])
            computed = np.asarray(estimates_missing, dtype=np.float64)
            for position, index in enumerate(missing):
                estimates[index] = computed[position]
                if keys[index] is not None and self._keys is encoder:
                    self.cache.put(keys[index], float(computed[position]))
        per_query = (time.perf_counter() - started) / max(len(queries), 1)
        missed = set(missing)
        for index in range(len(queries)):
            self.stats.record_request(per_query, cache_hit=index not in missed)
        return estimates

    def probe_batch(self, queries: Sequence[Query]) -> np.ndarray:
        """Forward pass outside the request path: no cache, no counters.

        The drift monitor measures probe accuracy through this so that
        monitoring traffic neither skews the operator-facing request/latency
        statistics nor evicts organic entries from the estimate cache.
        Runs whatever plan currently serves (safe concurrently with the
        batcher: compiled plans serialise on their own lock).
        """
        estimates, _ = self._timed_runner(list(queries))
        return np.asarray(estimates, dtype=np.float64)

    def _run_batch(self, queries: Sequence[Query]):
        """One forward pass; returns ``(estimates, breakdown)``.

        The breakdown rides through the micro-batcher's ``extra`` channel to
        traced requests (see :meth:`MicroBatcher.submit`).
        """
        estimates, breakdown = self._timed_runner(queries)
        self.stats.record_batch(len(queries))
        return estimates, breakdown

    # ------------------------------------------------------------------
    # Data lifecycle: staleness and refresh
    # ------------------------------------------------------------------
    def staleness(self) -> int:
        """Rows churned in the store since the served model was trained.

        Churn counts both appends *and* deletes — a model is equally stale
        whichever way the live set moved, so a pure-delete workload drives
        staleness (and with it the refresh triggers) exactly like an append
        burst.  ``0`` for a service without a live store (static data can't
        go stale).  A model with no recorded ``data_version`` is counted as
        trained on the empty store: every current row is stale.
        """
        if self.store is None:
            return 0
        return self.store.rows_since(self.data_version or 0)

    def refresh(self, *, epochs: int | None = None,
                replay_fraction: float | None = None,
                version: str | None = None,
                throttle=None, gate=None) -> RegistryEntry | None:
        """Absorb churned data: fine-tune, re-register, hot-swap, invalidate.

        Runs :meth:`DuetTrainer.fine_tune` over the delta between the served
        model's ``data_version`` and the store's current snapshot — appended
        rows trained on directly, removed rows replayed as negatives.  The
        fine-tune happens on a parameter *clone*, so concurrent traffic —
        compiled or tape path — keeps reading the untouched original until
        the single attribute swap at the end; then the serving plan is
        recompiled from the tuned weights, the estimate cache is re-keyed
        and flushed, and — when a registry is attached — the refreshed
        model is registered under a new version carrying the new
        ``data_version``.

        ``throttle`` is passed through to the fine-tuning loop (called after
        every optimiser step); the lifecycle scheduler uses it to make the
        tune yield to serving threads in bounded batch slices.

        ``gate`` is the canary hook: a callable receiving the fine-tuned
        candidate model *before* it is registered or installed.  Returning
        falsy rejects the candidate — nothing is saved, nothing swaps, the
        incumbent keeps serving, and ``refresh`` returns ``None``.  The
        lifecycle scheduler passes a shadow evaluation over the drift
        monitor's probe set here.

        Returns the new :class:`RegistryEntry` (``None`` when nothing
        churned, when the gate rejected the candidate, or when no registry
        is attached).  Raises
        :class:`~repro.data.DomainGrowthError` when an append grew a
        column's domain — that case needs a cold train, which no amount of
        fine-tuning can replace.
        """
        if self.store is None:
            raise RuntimeError(
                "refresh() needs a live ColumnStore; construct the service "
                "with store=... (or an estimator over a Snapshot)")
        model = getattr(self.estimator, "model", None)
        if model is None:
            raise RuntimeError(
                f"estimator {self.estimator.name!r} has no trainable model; "
                f"refresh() supports Duet estimators")
        # Fast path: nothing churned (appended *or* deleted) since the
        # served data_version — skip the snapshot/delta materialisation, the
        # pointless fine-tune, and (crucially) the cache flush that would
        # evict perfectly valid entries.  Raced mutations are caught again
        # under the lock below.
        if self.staleness() == 0:
            return None
        with self._refresh_lock:
            snapshot = self.store.snapshot()
            delta = self.store.delta(self.data_version or 0)
            if delta.churned_rows == 0 and not delta.domains_grew:
                return None
            # Tune a clone so in-flight requests keep reading the original
            # weights; clone() raises the typed DomainGrowthError when the
            # append grew a domain.
            tuned = model.clone(snapshot)
            DuetTrainer.fine_tune(
                snapshot, tuned, delta,
                epochs=epochs if epochs is not None else self.config.refresh_epochs,
                replay_fraction=(replay_fraction if replay_fraction is not None
                                 else self.config.replay_fraction),
                throttle=throttle)
            if gate is not None and not gate(tuned):
                return None
            entry = None
            if self.registry is not None:
                entry = self.registry.save(
                    tuned, self.dataset, version=version,
                    metadata={"fine_tuned_from": self.model_version,
                              "base_data_version": delta.base_version},
                    compile_options=getattr(self.estimator, "compile_options", None),
                    data_version=snapshot.data_version)
            try:
                self._install(tuned, snapshot.data_version,
                              entry.version if entry is not None else None)
            except Exception:
                # A registered-but-never-installed version must not become
                # the manifest's protected "latest" — roll the save back.
                if entry is not None:
                    self.registry.discard(entry.dataset, entry.version)
                raise
            return entry

    def swap_model(self, model, *, data_version: int | None = None,
                   model_version: str | None = None) -> None:
        """Atomically make ``model`` the served model.

        The cold-train escalation path: a model trained out-of-band (its
        table may carry *grown* domains the old model could not absorb) is
        swapped in exactly like a refresh result — tape path flipped by one
        attribute assignment, compiled plan rebuilt, cache re-keyed and
        flushed — while concurrent requests keep reading the old model
        until the swap completes.  ``data_version`` defaults to the model
        table's own version when it is a snapshot.
        """
        with self._refresh_lock:
            if data_version is None:
                data_version = getattr(model.table, "data_version", None)
            self._install(model, data_version, model_version)

    def _install(self, model, data_version: int | None,
                 model_version: str | None) -> None:
        """Hot-swap tail shared by refresh() and swap_model().

        Caller holds ``_refresh_lock``.  One attribute assignment flips the
        tape path to the new weights; the compiled plan is then rebuilt from
        them, and the cache is re-keyed before dropping the stale entries.
        """
        self.estimator.model = model
        self.estimator.table = model.table
        self.estimator.data_version = data_version
        if model_version is not None:
            self.estimator.model_version = model_version
            self.model_version = model_version
        if getattr(self.estimator, "compiled", False):
            self.estimator.compile(self.estimator.compile_options)
        self.data_version = data_version
        self._timed_runner = self._build_runner()
        self._keys = QueryKeyEncoder(model.table, namespace=self._namespace())
        self.cache.clear()
        self.stats.record_swap()

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------
    def snapshot(self) -> StatsSnapshot:
        return self.stats.snapshot()

    def batcher_stats(self) -> BatcherStats | None:
        return self._batcher.stats() if self._batcher is not None else None

    @property
    def table(self):
        return self.estimator.table

    def close(self) -> None:
        if self._batcher is not None:
            self._batcher.close()

    def __enter__(self) -> "EstimationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
