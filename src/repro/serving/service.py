"""Online estimation service: the frontend tying registry, cache, batcher and
stats together.

One :class:`EstimationService` wraps one :class:`~repro.core.CardinalityEstimator`
(usually a :class:`~repro.core.DuetEstimator` reloaded from a
:class:`~repro.serving.ModelRegistry`) and answers concurrent single-query
``estimate()`` calls:

1. the query is canonicalised into a cache key; a hit returns immediately
   without touching the model,
2. on a miss the query is handed to the :class:`~repro.serving.MicroBatcher`,
   which coalesces concurrent misses into one vectorised forward pass,
3. the result is cached and the request latency recorded.

The service is thread-safe and meant to be shared across worker threads —
the usage pattern of a query optimizer asking for cardinalities while
planning many queries at once.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..core.config import ServingConfig
from ..core.interface import CardinalityEstimator
from ..nn import PlanOptions
from ..workload.query import Query
from .batcher import BatcherStats, MicroBatcher
from .cache import EstimateCache, QueryKeyEncoder
from .registry import ModelRegistry
from .stats import ServiceStats, StatsSnapshot

__all__ = ["EstimationService"]


class EstimationService:
    """Concurrent, cached, micro-batched frontend over one estimator."""

    def __init__(self, estimator: CardinalityEstimator,
                 config: ServingConfig | None = None) -> None:
        self.estimator = estimator
        self.config = config or ServingConfig()
        self._keys = QueryKeyEncoder(estimator.table)
        self.cache = EstimateCache(self.config.cache_capacity)
        self.stats = ServiceStats(latency_window=self.config.latency_window)
        # Compiled fast path: lower the model into a plan for this service
        # (reusing the estimator's own plan when the options match; the
        # estimator's default path is never mutated).  All passes funnel
        # through the single batcher thread, so plan buffers are reused
        # batch after batch.  ``compiled=False`` pins the tape path even
        # when the estimator itself was compiled (e.g. by a registry load),
        # so the mode really is one-tape-pass-per-batch.
        self._timed_runner = estimator.estimate_batch_timed
        if self.config.compiled:
            factory = getattr(estimator, "timed_batch_runner", None)
            if factory is not None:
                dtype = self.config.inference_dtype
                if dtype is None:
                    # Defer to the estimator's own options (e.g. the dtype
                    # persisted in the registry); the matching options also
                    # let the runner share the estimator's existing plan.
                    persisted = getattr(estimator, "compile_options", None)
                    dtype = persisted.dtype if persisted is not None else "float64"
                self._timed_runner = factory(PlanOptions(dtype=dtype))
        else:
            tape_factory = getattr(estimator, "tape_batch_runner", None)
            if tape_factory is not None:
                self._timed_runner = tape_factory()
        self._batcher: MicroBatcher | None = None
        if self.config.micro_batching:
            self._batcher = MicroBatcher(self._run_batch,
                                         max_batch_size=self.config.max_batch_size,
                                         max_wait_ms=self.config.max_wait_ms)

    @classmethod
    def from_registry(cls, registry: ModelRegistry | str, dataset: str,
                      version: str | None = None,
                      config: ServingConfig | None = None) -> "EstimationService":
        """Start a service from a saved model: registry path + dataset name."""
        if not isinstance(registry, ModelRegistry):
            registry = ModelRegistry(registry)
        return cls(registry.load_estimator(dataset, version), config)

    # ------------------------------------------------------------------
    # Request paths
    # ------------------------------------------------------------------
    def estimate(self, query: Query) -> float:
        """Answer one query: cache, then (micro-batched) forward pass."""
        started = time.perf_counter()
        key = self._keys.key(query) if self.config.cache_capacity else None
        if key is not None:
            cached = self.cache.get(key)
            if cached is not None:
                self.stats.record_request(time.perf_counter() - started, cache_hit=True)
                return cached
        if self._batcher is not None:
            estimate = self._batcher.submit(query).result()
        else:
            estimate = float(np.asarray(self._run_batch([query]))[0])
        if key is not None:
            self.cache.put(key, estimate)
        self.stats.record_request(time.perf_counter() - started, cache_hit=False)
        return estimate

    def estimate_batch(self, queries: Sequence[Query]) -> np.ndarray:
        """Vectorised offline path: answer a whole batch through the cache.

        Cached queries are served from the cache; the rest go through one
        forward pass.  Useful for accuracy evaluation of a running service.
        """
        queries = list(queries)
        started = time.perf_counter()
        estimates = np.empty(len(queries), dtype=np.float64)
        missing: list[int] = []
        keys: list = [None] * len(queries)
        for index, query in enumerate(queries):
            key = self._keys.key(query) if self.config.cache_capacity else None
            keys[index] = key
            cached = self.cache.get(key) if key is not None else None
            if cached is None:
                missing.append(index)
            else:
                estimates[index] = cached
        if missing:
            computed = np.asarray(self._run_batch([queries[index] for index in missing]),
                                  dtype=np.float64)
            for position, index in enumerate(missing):
                estimates[index] = computed[position]
                if keys[index] is not None:
                    self.cache.put(keys[index], float(computed[position]))
        per_query = (time.perf_counter() - started) / max(len(queries), 1)
        missed = set(missing)
        for index in range(len(queries)):
            self.stats.record_request(per_query, cache_hit=index not in missed)
        return estimates

    def _run_batch(self, queries: Sequence[Query]) -> np.ndarray:
        estimates, _ = self._timed_runner(queries)
        self.stats.record_batch(len(queries))
        return estimates

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------
    def snapshot(self) -> StatsSnapshot:
        return self.stats.snapshot()

    def batcher_stats(self) -> BatcherStats | None:
        return self._batcher.stats() if self._batcher is not None else None

    @property
    def table(self):
        return self.estimator.table

    def close(self) -> None:
        if self._batcher is not None:
            self._batcher.close()

    def __enter__(self) -> "EstimationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
