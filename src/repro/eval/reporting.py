"""Plain-text rendering of paper-style tables and figure series.

The benchmark harness prints the same rows and series the paper reports;
these helpers keep the formatting in one place so every benchmark output
looks consistent and diff-able.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["format_table", "format_series", "format_serving_table",
           "cumulative_distribution"]

#: column headers of the serving throughput report (one row per mode/run)
SERVING_HEADERS = ["mode", "threads", "requests", "QPS", "p50 ms", "p90 ms",
                   "p99 ms", "hit rate", "batch occ", "fwd passes"]


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str | None = None
                 ) -> str:
    """Render an aligned plain-text table."""
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(header.ljust(widths[index])
                            for index, header in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(x_label: str, x_values: Sequence, series: dict[str, Sequence],
                  title: str | None = None) -> str:
    """Render figure data as a table with one column per series."""
    headers = [x_label] + list(series)
    rows = []
    for index, x_value in enumerate(x_values):
        row = [x_value] + [series[name][index] for name in series]
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_serving_table(reports: Sequence, title: str | None = None) -> str:
    """Render load-test reports as one throughput table.

    Accepts :class:`repro.eval.loadgen.LoadReport` objects (anything with an
    ``as_table_row`` of :data:`SERVING_HEADERS` arity works).
    """
    rows = [report.as_table_row() for report in reports]
    return format_table(SERVING_HEADERS, rows, title=title)


def cumulative_distribution(values: np.ndarray, num_points: int = 50
                            ) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF sampled at ``num_points`` quantiles (Figure 4)."""
    values = np.sort(np.asarray(values, dtype=np.float64))
    if values.size == 0:
        raise ValueError("cannot compute the CDF of an empty array")
    quantiles = np.linspace(0.0, 1.0, num_points)
    points = np.quantile(values, quantiles)
    return points, quantiles
