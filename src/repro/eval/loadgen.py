"""Load-generating client: replay a workload against an estimation service.

The shape follows the server/client/stats split of serving benchmarks: an
:class:`~repro.serving.EstimationService` plays the server, this module is
the client runner.  ``run_load_test`` spawns ``concurrency`` worker threads,
releases them simultaneously through a barrier, and has each thread issue
single-query ``estimate()`` requests drawn from the workload until the
request budget is spent.  Client-side latencies are recorded per request;
the report combines them with the service's own cache/batching counters.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..serving.service import EstimationService
from ..workload.workload import Workload

__all__ = ["LoadReport", "run_load_test", "SoakReport", "run_soak"]


@dataclass(frozen=True)
class LoadReport:
    """Result of one load-test run against one service configuration."""

    mode: str
    concurrency: int
    num_requests: int
    errors: int
    elapsed_seconds: float
    qps: float
    mean_ms: float
    p50_ms: float
    p90_ms: float
    p99_ms: float
    cache_hit_rate: float
    mean_batch_size: float
    forward_passes: int

    def as_table_row(self) -> list:
        """Row matching :func:`repro.eval.reporting.format_serving_table`."""
        return [self.mode, self.concurrency, self.num_requests, self.qps,
                self.p50_ms, self.p90_ms, self.p99_ms,
                self.cache_hit_rate, self.mean_batch_size, self.forward_passes]


def run_load_test(service: EstimationService, workload: Workload,
                  concurrency: int = 8, num_requests: int = 2_000,
                  mode: str | None = None, seed: int = 0) -> LoadReport:
    """Replay ``workload`` at ``concurrency`` threads for ``num_requests``.

    The request stream samples queries from the workload with replacement
    (deterministically from ``seed``), so it contains repeats — the
    situation the estimate cache exists for.  To measure the no-cache cost
    of repeats instead, run the service with ``cache_capacity=0``.
    """
    if concurrency <= 0:
        raise ValueError("concurrency must be positive")
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if len(workload) == 0:
        raise ValueError("cannot load-test with an empty workload")

    rng = np.random.default_rng(seed)
    order = rng.integers(0, len(workload), size=num_requests)
    shares = np.array_split(order, concurrency)
    barrier = threading.Barrier(concurrency + 1)
    latencies: list[np.ndarray] = [np.empty(0)] * concurrency
    errors = [0] * concurrency
    before = service.snapshot()

    def worker(worker_index: int, indices: np.ndarray) -> None:
        samples = np.empty(len(indices), dtype=np.float64)
        barrier.wait()
        for position, query_index in enumerate(indices):
            started = time.perf_counter()
            try:
                service.estimate(workload.queries[int(query_index)])
            except Exception:  # noqa: BLE001 — count, keep the run going
                errors[worker_index] += 1
            samples[position] = time.perf_counter() - started
        latencies[worker_index] = samples

    threads = [threading.Thread(target=worker, args=(index, share), daemon=True)
               for index, share in enumerate(shares)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = max(time.perf_counter() - started, 1e-9)

    after = service.snapshot()
    all_latencies_ms = 1e3 * np.concatenate([array for array in latencies if array.size])
    p50, p90, p99 = np.percentile(all_latencies_ms, [50, 90, 99])
    lookups = ((after.cache_hits - before.cache_hits)
               + (after.cache_misses - before.cache_misses))
    hits = after.cache_hits - before.cache_hits
    forward_passes = after.num_batches - before.num_batches
    batched = after.batched_requests - before.batched_requests
    return LoadReport(
        mode=mode or ("micro-batched" if service.config.micro_batching else "naive"),
        concurrency=concurrency,
        num_requests=num_requests,
        errors=sum(errors),
        elapsed_seconds=elapsed,
        qps=num_requests / elapsed,
        mean_ms=float(all_latencies_ms.mean()),
        p50_ms=float(p50),
        p90_ms=float(p90),
        p99_ms=float(p99),
        cache_hit_rate=hits / lookups if lookups else 0.0,
        mean_batch_size=batched / forward_passes if forward_passes else 0.0,
        forward_passes=forward_passes,
    )


@dataclass(frozen=True)
class SoakReport:
    """Result of one lifecycle soak: traffic + mutations + autonomous tuning."""

    duration_seconds: float
    num_requests: int
    errors: int
    qps: float
    appends_applied: int
    append_errors: int
    model_swaps: int
    refreshes: int
    cold_trains: int
    final_staleness: int
    final_data_version: int | None
    event_counts: dict
    deletes_applied: int = 0
    delete_errors: int = 0
    compactions: int = 0
    fault_counts: dict = field(default_factory=dict)

    def __str__(self) -> str:
        def _mutations(applied: int, failed: int, noun: str) -> str:
            label = f"{applied} {noun}"
            return label if not failed else f"{label} ({failed} failed)"

        line = (f"soak {self.duration_seconds:.1f}s: {self.num_requests} requests "
                f"({self.qps:.0f} qps, {self.errors} errors), "
                f"{_mutations(self.appends_applied, self.append_errors, 'appends')}, "
                f"{_mutations(self.deletes_applied, self.delete_errors, 'deletes')}, "
                f"{self.refreshes} refreshes, {self.cold_trains} cold trains, "
                f"{self.compactions} compactions, "
                f"final staleness {self.final_staleness} rows")
        if self.fault_counts:
            injected = sum(self.fault_counts.values())
            line += f", {injected} faults injected"
        return line


def run_soak(service: EstimationService, workload: Workload, *,
             duration_seconds: float, concurrency: int = 4,
             appends=(), deletes=(), scheduler=None, faults=None,
             exporter=None, seed: int = 0) -> SoakReport:
    """Serve continuous traffic while the data mutates underneath.

    The lifecycle-aware counterpart of :func:`run_load_test`: worker threads
    issue ``estimate()`` requests sampled from ``workload`` for
    ``duration_seconds`` while a driver thread applies ``appends`` and
    ``deletes`` — sequences of ``(at_seconds, apply)`` pairs whose
    ``apply()`` callables mutate the service's store (skewed batches,
    domain-growing batches, tombstoning deletes, …) at the given offsets;
    the two streams are merged into one timeline but counted separately in
    the report.  A running :class:`~repro.lifecycle.RefreshScheduler` (pass
    it as ``scheduler`` so its event counters land in the report) is
    expected to absorb the mutations autonomously — including compacting a
    tombstone-heavy store; the report's ``errors`` field is the acceptance
    signal — an autonomous swap must never fail a request.

    ``faults`` turns the soak into a chaos run: the
    :class:`~repro.lifecycle.FaultInjector` is armed on the scheduler's
    trainer seam, the service's registry, and its store for the duration
    (and disarmed afterwards); its injection counts land in the report's
    ``fault_counts``.  The acceptance signal does not change — injected
    control-plane faults must still never fail an estimate request.

    ``exporter`` (a :class:`~repro.obs.MetricsExporter`) is started just
    before traffic and stopped — flushing one final snapshot — after the
    soak, so every soak run leaves a scrape-able metrics timeline (breaker
    flips, tombstone fraction, request totals) next to its report.
    """
    if duration_seconds <= 0:
        raise ValueError("duration_seconds must be positive")
    if concurrency <= 0:
        raise ValueError("concurrency must be positive")
    if len(workload) == 0:
        raise ValueError("cannot soak with an empty workload")

    schedule = sorted(
        [(at_seconds, apply, "append") for at_seconds, apply in appends]
        + [(at_seconds, apply, "delete") for at_seconds, apply in deletes],
        key=lambda entry: entry[0])
    stop = threading.Event()
    counts = [0] * concurrency
    errors = [0] * concurrency
    applied = {"append": 0, "delete": 0}
    mutation_errors = {"append": 0, "delete": 0}
    before = service.snapshot()
    if faults is not None:
        faults.arm(scheduler=scheduler,
                   registry=getattr(service, "registry", None),
                   store=getattr(service, "store", None))

    def worker(worker_index: int) -> None:
        rng = np.random.default_rng(seed + worker_index)
        while not stop.is_set():
            query = workload.queries[int(rng.integers(0, len(workload)))]
            try:
                service.estimate(query)
            except Exception:  # noqa: BLE001 — count, keep the soak going
                errors[worker_index] += 1
            counts[worker_index] += 1

    def driver(started_at: float) -> None:
        for at_seconds, apply, kind in schedule:
            delay = started_at + at_seconds - time.perf_counter()
            if delay > 0 and stop.wait(delay):
                return
            try:
                apply()
            except Exception:  # noqa: BLE001 — one bad mutation must not
                mutation_errors[kind] += 1  # silently cancel the rest
            else:
                applied[kind] += 1

    threads = [threading.Thread(target=worker, args=(index,), daemon=True)
               for index in range(concurrency)]
    if exporter is not None:
        exporter.start()
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    driver_thread = threading.Thread(target=driver, args=(started,), daemon=True)
    driver_thread.start()
    stop.wait(duration_seconds)
    stop.set()
    for thread in threads:
        thread.join(timeout=10.0)
    driver_thread.join(timeout=10.0)
    elapsed = max(time.perf_counter() - started, 1e-9)
    if exporter is not None:
        exporter.stop()
    if faults is not None:
        faults.disarm(scheduler=scheduler,
                      registry=getattr(service, "registry", None),
                      store=getattr(service, "store", None))

    after = service.snapshot()
    event_counts = scheduler.events.counts() if scheduler is not None else {}
    return SoakReport(
        duration_seconds=elapsed,
        num_requests=sum(counts),
        errors=sum(errors),
        qps=sum(counts) / elapsed,
        appends_applied=applied["append"],
        append_errors=mutation_errors["append"],
        deletes_applied=applied["delete"],
        delete_errors=mutation_errors["delete"],
        model_swaps=after.model_swaps - before.model_swaps,
        refreshes=event_counts.get("refresh", 0),
        cold_trains=sum(1 for event in (scheduler.events.events("cold_train")
                                        if scheduler is not None else ())
                        if event.details.get("status") == "swapped"),
        compactions=event_counts.get("compaction", 0),
        final_staleness=service.staleness(),
        final_data_version=service.data_version,
        event_counts=event_counts,
        fault_counts=faults.counts() if faults is not None else {},
    )
