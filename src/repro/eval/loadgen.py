"""Load-generating client: replay a workload against an estimation service.

The shape follows the server/client/stats split of serving benchmarks: an
:class:`~repro.serving.EstimationService` plays the server, this module is
the client runner.  ``run_load_test`` spawns ``concurrency`` worker threads,
releases them simultaneously through a barrier, and has each thread issue
single-query ``estimate()`` requests drawn from the workload until the
request budget is spent.  Client-side latencies are recorded per request;
the report combines them with the service's own cache/batching counters.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from ..serving.service import EstimationService
from ..workload.workload import Workload

__all__ = ["LoadReport", "run_load_test"]


@dataclass(frozen=True)
class LoadReport:
    """Result of one load-test run against one service configuration."""

    mode: str
    concurrency: int
    num_requests: int
    errors: int
    elapsed_seconds: float
    qps: float
    mean_ms: float
    p50_ms: float
    p90_ms: float
    p99_ms: float
    cache_hit_rate: float
    mean_batch_size: float
    forward_passes: int

    def as_table_row(self) -> list:
        """Row matching :func:`repro.eval.reporting.format_serving_table`."""
        return [self.mode, self.concurrency, self.num_requests, self.qps,
                self.p50_ms, self.p90_ms, self.p99_ms,
                self.cache_hit_rate, self.mean_batch_size, self.forward_passes]


def run_load_test(service: EstimationService, workload: Workload,
                  concurrency: int = 8, num_requests: int = 2_000,
                  mode: str | None = None, seed: int = 0) -> LoadReport:
    """Replay ``workload`` at ``concurrency`` threads for ``num_requests``.

    The request stream samples queries from the workload with replacement
    (deterministically from ``seed``), so it contains repeats — the
    situation the estimate cache exists for.  To measure the no-cache cost
    of repeats instead, run the service with ``cache_capacity=0``.
    """
    if concurrency <= 0:
        raise ValueError("concurrency must be positive")
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if len(workload) == 0:
        raise ValueError("cannot load-test with an empty workload")

    rng = np.random.default_rng(seed)
    order = rng.integers(0, len(workload), size=num_requests)
    shares = np.array_split(order, concurrency)
    barrier = threading.Barrier(concurrency + 1)
    latencies: list[np.ndarray] = [np.empty(0)] * concurrency
    errors = [0] * concurrency
    before = service.snapshot()

    def worker(worker_index: int, indices: np.ndarray) -> None:
        samples = np.empty(len(indices), dtype=np.float64)
        barrier.wait()
        for position, query_index in enumerate(indices):
            started = time.perf_counter()
            try:
                service.estimate(workload.queries[int(query_index)])
            except Exception:  # noqa: BLE001 — count, keep the run going
                errors[worker_index] += 1
            samples[position] = time.perf_counter() - started
        latencies[worker_index] = samples

    threads = [threading.Thread(target=worker, args=(index, share), daemon=True)
               for index, share in enumerate(shares)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = max(time.perf_counter() - started, 1e-9)

    after = service.snapshot()
    all_latencies_ms = 1e3 * np.concatenate([array for array in latencies if array.size])
    p50, p90, p99 = np.percentile(all_latencies_ms, [50, 90, 99])
    lookups = ((after.cache_hits - before.cache_hits)
               + (after.cache_misses - before.cache_misses))
    hits = after.cache_hits - before.cache_hits
    forward_passes = after.num_batches - before.num_batches
    batched = after.batched_requests - before.batched_requests
    return LoadReport(
        mode=mode or ("micro-batched" if service.config.micro_batching else "naive"),
        concurrency=concurrency,
        num_requests=num_requests,
        errors=sum(errors),
        elapsed_seconds=elapsed,
        qps=num_requests / elapsed,
        mean_ms=float(all_latencies_ms.mean()),
        p50_ms=float(p50),
        p90_ms=float(p90),
        p99_ms=float(p99),
        cache_hit_rate=hits / lookups if lookups else 0.0,
        mean_batch_size=batched / forward_passes if forward_passes else 0.0,
        forward_passes=forward_passes,
    )
