"""Evaluation harness: metrics, estimator evaluation, experiment drivers."""

from .experiments import (
    SmokeScale,
    compiled_inference_cost,
    ablation_expand_coefficient,
    ablation_hybrid_training,
    ablation_loss_mapping,
    convergence_study,
    figure3_loss_mapping,
    figure4_workload_distribution,
    figure5_lambda_study,
    figure6_scalability,
    figure7_estimation_cost,
    table1_mpsn_comparison,
    table2_accuracy,
    table3_training_throughput,
)
from .harness import (
    EvaluationResult,
    ServingResult,
    TrainedDuet,
    evaluate_estimator,
    evaluate_service,
    train_duet,
)
from .loadgen import LoadReport, SoakReport, run_load_test, run_soak
from .metrics import QErrorSummary, qerror, summarize_qerrors
from .reporting import (
    cumulative_distribution,
    format_series,
    format_serving_table,
    format_table,
)

__all__ = [
    "qerror",
    "QErrorSummary",
    "summarize_qerrors",
    "format_table",
    "format_series",
    "format_serving_table",
    "cumulative_distribution",
    "EvaluationResult",
    "ServingResult",
    "TrainedDuet",
    "evaluate_estimator",
    "evaluate_service",
    "train_duet",
    "LoadReport",
    "run_load_test",
    "SoakReport",
    "run_soak",
    "SmokeScale",
    "figure3_loss_mapping",
    "figure4_workload_distribution",
    "figure5_lambda_study",
    "table1_mpsn_comparison",
    "figure6_scalability",
    "figure7_estimation_cost",
    "compiled_inference_cost",
    "table2_accuracy",
    "convergence_study",
    "table3_training_throughput",
    "ablation_hybrid_training",
    "ablation_expand_coefficient",
    "ablation_loss_mapping",
]
