"""Experiment drivers: one function per table / figure of the paper.

Every driver accepts size knobs (dataset scale, query counts, epochs) so the
same code can run as a quick smoke benchmark or as a full-scale
reproduction.  The defaults are laptop-friendly ("smoke" scale); the
benchmark suite under ``benchmarks/`` calls these drivers and prints the
same rows/series the paper reports.  EXPERIMENTS.md records the
paper-vs-measured comparison for each of them.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass, field

import numpy as np

from ..baselines import (
    DeepDBEstimator,
    IndependenceEstimator,
    MHistEstimator,
    MSCNEstimator,
    NaruEstimator,
    SamplingEstimator,
    UAEEstimator,
)
from ..core import DuetConfig, DuetEstimator, DuetModel, DuetTrainer, MPSNConfig
from ..data import make_dataset
from ..data.table import Table
from ..workload import (
    make_inworkload,
    make_multi_predicate_workload,
    make_random_workload,
)
from .harness import EvaluationResult, evaluate_estimator, train_duet
from .reporting import cumulative_distribution, format_series, format_table

__all__ = [
    "SmokeScale",
    "figure3_loss_mapping",
    "figure4_workload_distribution",
    "figure5_lambda_study",
    "table1_mpsn_comparison",
    "figure6_scalability",
    "figure7_estimation_cost",
    "compiled_inference_cost",
    "table2_accuracy",
    "convergence_study",
    "table3_training_throughput",
    "ablation_hybrid_training",
    "ablation_expand_coefficient",
    "ablation_loss_mapping",
]


# ----------------------------------------------------------------------
# Scale presets
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SmokeScale:
    """Laptop-scale experiment sizes (the defaults used by the benchmarks).

    The paper trains on the full datasets for up to hundreds of epochs on
    GPUs; these settings keep every experiment in the seconds-to-minutes
    range on a CPU while preserving the qualitative shapes.
    """

    dataset_scale: dict[str, float] = field(default_factory=lambda: {
        "dmv": 0.0008, "kddcup98": 0.02, "census": 0.04})
    kdd_columns: int = 20
    num_test_queries: int = 200
    num_train_queries: int = 400
    epochs: int = 4
    hidden_sizes: tuple[int, ...] = (64, 64)

    def dataset(self, name: str, **kwargs) -> Table:
        scale = self.dataset_scale[name]
        if name == "kddcup98":
            kwargs.setdefault("num_columns", self.kdd_columns)
        return make_dataset(name, scale=scale, **kwargs)

    def duet_config(self, **overrides) -> DuetConfig:
        defaults = dict(hidden_sizes=self.hidden_sizes, epochs=self.epochs,
                        batch_size=128, expand_coefficient=2, seed=0)
        defaults.update(overrides)
        return DuetConfig(**defaults)


# ----------------------------------------------------------------------
# Figure 3 — convergence of the raw vs log2-mapped query loss
# ----------------------------------------------------------------------

@dataclass
class LossMappingResult:
    epochs: list[int]
    data_loss: list[float]
    raw_qerror: list[float]
    mapped_query_loss: list[float]

    def render(self) -> str:
        return format_series(
            "epoch", self.epochs,
            {"L_data": self.data_loss, "raw Q-Error": self.raw_qerror,
             "log2(Q-Error+1)": self.mapped_query_loss},
            title="Figure 3: the log2 mapping brings L_query to the scale of L_data")


def figure3_loss_mapping(dataset: str = "dmv", scale: SmokeScale | None = None,
                         epochs: int | None = None) -> LossMappingResult:
    """Reproduce Figure 3: raw Q-Error vs the log2-mapped hybrid loss."""
    scale = scale or SmokeScale()
    epochs = epochs or scale.epochs
    table = scale.dataset(dataset)
    train_queries = make_inworkload(table, num_queries=scale.num_train_queries, seed=42)
    trained = train_duet(table, train_queries, scale.duet_config(epochs=epochs),
                         epochs=epochs)
    history = trained.history
    mapped = [float(np.log2(raw + 1.0)) for raw in history.raw_qerrors]
    return LossMappingResult(
        epochs=list(range(len(history.epochs))),
        data_loss=history.data_losses,
        raw_qerror=history.raw_qerrors,
        mapped_query_loss=mapped,
    )


# ----------------------------------------------------------------------
# Figure 4 — cardinality distribution of the test workloads
# ----------------------------------------------------------------------

@dataclass
class WorkloadDistributionResult:
    dataset: str
    rand_q_cdf: tuple[np.ndarray, np.ndarray]
    in_q_cdf: tuple[np.ndarray, np.ndarray]
    rand_q_median: float
    in_q_median: float

    def render(self) -> str:
        points = min(len(self.rand_q_cdf[0]), 11)
        indices = np.linspace(0, len(self.rand_q_cdf[0]) - 1, points).astype(int)
        return format_series(
            "quantile", [f"{self.rand_q_cdf[1][i]:.2f}" for i in indices],
            {"Rand-Q cardinality": [self.rand_q_cdf[0][i] for i in indices],
             "In-Q cardinality": [self.in_q_cdf[0][i] for i in indices]},
            title=f"Figure 4 ({self.dataset}): cardinality CDF of the test workloads")


def figure4_workload_distribution(dataset: str = "census",
                                  scale: SmokeScale | None = None
                                  ) -> WorkloadDistributionResult:
    """Reproduce Figure 4: Rand-Q and In-Q have very different distributions."""
    scale = scale or SmokeScale()
    table = scale.dataset(dataset)
    rand_q = make_random_workload(table, num_queries=scale.num_test_queries, seed=1234)
    in_q = make_inworkload(table, num_queries=scale.num_test_queries, seed=42)
    return WorkloadDistributionResult(
        dataset=dataset,
        rand_q_cdf=cumulative_distribution(rand_q.cardinalities),
        in_q_cdf=cumulative_distribution(in_q.cardinalities),
        rand_q_median=float(np.median(rand_q.cardinalities)),
        in_q_median=float(np.median(in_q.cardinalities)),
    )


# ----------------------------------------------------------------------
# Figure 5 — hyper-parameter study on the trade-off coefficient lambda
# ----------------------------------------------------------------------

@dataclass
class LambdaStudyResult:
    lambdas: list[float]
    max_qerror: list[float]
    mean_qerror: list[float]
    best_lambda: float

    def render(self) -> str:
        return format_series(
            "lambda", self.lambdas,
            {"max Q-Error (Rand-Q)": self.max_qerror,
             "mean Q-Error (Rand-Q)": self.mean_qerror},
            title="Figure 5: trade-off coefficient study "
                  f"(best lambda = {self.best_lambda})")


def figure5_lambda_study(lambdas: tuple[float, ...] = (1e-3, 1e-2, 1e-1, 1.0),
                         dataset: str = "kddcup98",
                         scale: SmokeScale | None = None) -> LambdaStudyResult:
    """Reproduce Figure 5: accuracy as a function of the hybrid-loss weight."""
    scale = scale or SmokeScale()
    table = scale.dataset(dataset)
    train_queries = make_inworkload(table, num_queries=scale.num_train_queries, seed=42)
    test_queries = make_random_workload(table, num_queries=scale.num_test_queries, seed=1234)
    max_errors: list[float] = []
    mean_errors: list[float] = []
    for lam in lambdas:
        trained = train_duet(table, train_queries,
                             scale.duet_config(lambda_query=lam), seed=0)
        result = evaluate_estimator(trained.estimator, test_queries, table)
        max_errors.append(result.summary.maximum)
        mean_errors.append(result.summary.mean)
    best = lambdas[int(np.argmin(max_errors))]
    return LambdaStudyResult(lambdas=list(lambdas), max_qerror=max_errors,
                             mean_qerror=mean_errors, best_lambda=float(best))


# ----------------------------------------------------------------------
# Table I — MPSN variants
# ----------------------------------------------------------------------

@dataclass
class MPSNComparisonRow:
    name: str
    max_qerror: float
    estimation_cost_ms: float
    training_cost_seconds: float
    best_epoch: int


@dataclass
class MPSNComparisonResult:
    rows: list[MPSNComparisonRow]

    def render(self) -> str:
        return format_table(
            ["name", "max Q-Error", "est cost(ms)", "train cost(s)", "best epoch"],
            [[row.name.upper(), row.max_qerror, row.estimation_cost_ms,
              row.training_cost_seconds, row.best_epoch] for row in self.rows],
            title="Table I: evaluation results for multiple-predicates support")


def table1_mpsn_comparison(kinds: tuple[str, ...] = ("mlp", "recursive", "rnn"),
                           dataset: str = "census",
                           scale: SmokeScale | None = None) -> MPSNComparisonResult:
    """Reproduce Table I: accuracy and cost of the three MPSN candidates."""
    scale = scale or SmokeScale()
    table = scale.dataset(dataset)
    train_queries = make_multi_predicate_workload(table, num_queries=scale.num_train_queries,
                                                  seed=42)
    test_queries = make_multi_predicate_workload(table, num_queries=scale.num_test_queries,
                                                 seed=1234)
    rows: list[MPSNComparisonRow] = []
    for kind in kinds:
        config = scale.duet_config(multi_predicate=True, max_predicates_per_column=2,
                                   mpsn=MPSNConfig(kind=kind, hidden_size=32, num_layers=2))
        model = DuetModel(table, config)
        trainer = DuetTrainer(model, table, train_queries, config)
        estimator = DuetEstimator(model)

        def evaluate_max(_model, _estimator=estimator, _queries=test_queries, _table=table):
            return evaluate_estimator(_estimator, _queries, _table).summary.maximum

        started = time.perf_counter()
        history = trainer.train(evaluation_fn=evaluate_max)
        training_cost = time.perf_counter() - started
        result = evaluate_estimator(estimator, test_queries, table)
        rows.append(MPSNComparisonRow(
            name=kind,
            max_qerror=min(e for e in history.evaluations if e is not None),
            estimation_cost_ms=result.per_query_ms,
            training_cost_seconds=training_cost,
            best_epoch=history.best_epoch(),
        ))
    return MPSNComparisonResult(rows=rows)


# ----------------------------------------------------------------------
# Figure 6 — scalability with the number of predicate columns
# ----------------------------------------------------------------------

@dataclass
class ScalabilityResult:
    column_counts: list[int]
    latencies_ms: dict[str, list[float]]
    breakdowns: dict[str, list[dict[str, float]]]

    def render(self) -> str:
        return format_series("predicate columns", self.column_counts, self.latencies_ms,
                             title="Figure 6: per-query latency (ms) vs predicate columns")


def figure6_scalability(column_counts: tuple[int, ...] = (2, 5, 10, 15, 20),
                        dataset: str = "kddcup98", queries_per_point: int = 5,
                        naru_samples: int = 100,
                        scale: SmokeScale | None = None) -> ScalabilityResult:
    """Reproduce Figure 6: Duet is flat in the predicate count, Naru/UAE are linear."""
    scale = scale or SmokeScale()
    table = scale.dataset(dataset)
    if max(column_counts) > table.num_columns:
        raise ValueError("column_counts exceed the table's column count")

    train_queries = make_inworkload(table, num_queries=scale.num_train_queries, seed=42)
    duet = train_duet(table, train_queries, scale.duet_config(epochs=1), epochs=1)
    naru = NaruEstimator(table, hidden_sizes=scale.hidden_sizes,
                         num_samples=naru_samples, seed=0).fit(epochs=1)
    uae = UAEEstimator(table, hidden_sizes=scale.hidden_sizes, num_samples=naru_samples,
                       num_training_samples=4, query_batch_size=4, seed=0)
    uae.fit(epochs=1, workload=train_queries.subset(range(min(50, len(train_queries)))))

    latencies: dict[str, list[float]] = {"duet": [], "naru": [], "uae": []}
    breakdowns: dict[str, list[dict[str, float]]] = {"duet": [], "naru": [], "uae": []}
    for count in column_counts:
        workload = make_random_workload(table, num_queries=queries_per_point,
                                        seed=1000 + count, max_predicates=count,
                                        label=False)
        # Force exactly `count` predicate columns per query.
        queries = [query for query in workload
                   if len(query.columns) == count] or workload.queries

        duet_breakdown = {"encoding": 0.0, "inference": 0.0}
        started = time.perf_counter()
        for query in queries:
            _, single = duet.estimator.estimate_batch_with_breakdown([query])
            duet_breakdown["encoding"] += single["encoding"]
            duet_breakdown["inference"] += single["inference"]
        latencies["duet"].append(1e3 * (time.perf_counter() - started) / len(queries))
        breakdowns["duet"].append({key: 1e3 * value / len(queries)
                                   for key, value in duet_breakdown.items()})

        for name, estimator in (("naru", naru), ("uae", uae)):
            aggregate = {"encoding": 0.0, "inference": 0.0, "sampling": 0.0}
            started = time.perf_counter()
            for query in queries:
                _, single = estimator.estimate_with_breakdown(query)
                for key in aggregate:
                    aggregate[key] += single.get(key, 0.0)
            latencies[name].append(1e3 * (time.perf_counter() - started) / len(queries))
            breakdowns[name].append({key: 1e3 * value / len(queries)
                                     for key, value in aggregate.items()})
    return ScalabilityResult(column_counts=list(column_counts), latencies_ms=latencies,
                             breakdowns=breakdowns)


# ----------------------------------------------------------------------
# Figure 7 — estimation cost of the learned estimators
# ----------------------------------------------------------------------

@dataclass
class EstimationCostResult:
    dataset: str
    per_query_ms: dict[str, float]

    def render(self) -> str:
        rows = [[name, cost] for name, cost in sorted(self.per_query_ms.items(),
                                                      key=lambda item: item[1])]
        return format_table(["estimator", "per-query ms"], rows,
                            title=f"Figure 7 ({self.dataset}): estimation cost comparison")


def figure7_estimation_cost(dataset: str = "census", scale: SmokeScale | None = None,
                            naru_samples: int = 100) -> EstimationCostResult:
    """Reproduce Figure 7: per-query estimation cost of the learned methods."""
    scale = scale or SmokeScale()
    table = scale.dataset(dataset)
    train_queries = make_inworkload(table, num_queries=scale.num_train_queries, seed=42)
    test_queries = make_random_workload(table, num_queries=min(50, scale.num_test_queries),
                                        seed=1234)

    estimators: dict[str, object] = {}
    duet = train_duet(table, train_queries, scale.duet_config(epochs=1), epochs=1)
    estimators["duet"] = duet.estimator
    duet_d = train_duet(table, None, scale.duet_config(epochs=1, lambda_query=0.0), epochs=1)
    estimators["duet-d"] = duet_d.estimator
    estimators["naru"] = NaruEstimator(table, hidden_sizes=scale.hidden_sizes,
                                       num_samples=naru_samples, seed=0).fit(epochs=1)
    uae = UAEEstimator(table, hidden_sizes=scale.hidden_sizes, num_samples=naru_samples,
                       num_training_samples=4, query_batch_size=4, seed=0)
    uae.fit(epochs=1, workload=train_queries.subset(range(min(50, len(train_queries)))))
    estimators["uae"] = uae
    estimators["mscn"] = MSCNEstimator(table, epochs=5, seed=0).fit(train_queries)
    estimators["deepdb"] = DeepDBEstimator(table, min_instances=128)

    costs = {name: evaluate_estimator(estimator, test_queries, table).per_query_ms
             for name, estimator in estimators.items()}
    return EstimationCostResult(dataset=dataset, per_query_ms=costs)


# ----------------------------------------------------------------------
# Compiled inference — tape vs lowered-plan estimation cost (Fig. 7 style)
# ----------------------------------------------------------------------

@dataclass
class CompiledInferenceResult:
    """Tape vs compiled batch-estimation cost with the Fig.-7 phase split.

    ``paths`` maps an execution-path name (``tape``, ``compiled-float64``,
    ``compiled-float32``) to its measured ``qps``, ``per_query_ms`` and the
    encoding/inference phase split (milliseconds per micro-batch).
    """

    dataset: str
    batch_size: int
    num_queries: int
    paths: dict[str, dict[str, float]]
    max_rel_error_float64: float
    max_rel_error_float32: float

    def speedup(self, path: str = "compiled-float32") -> float:
        return self.paths[path]["qps"] / self.paths["tape"]["qps"]

    def render(self) -> str:
        rows = [[name, metrics["qps"], metrics["per_query_ms"],
                 metrics["encoding_ms"], metrics["inference_ms"],
                 metrics["qps"] / self.paths["tape"]["qps"]]
                for name, metrics in self.paths.items()]
        return format_table(
            ["path", "QPS", "per-query ms", "encoding ms/batch",
             "inference ms/batch", "speedup"],
            rows,
            title=(f"Compiled inference ({self.dataset}, micro-batch "
                   f"{self.batch_size}): tape vs lowered plans"))

    def to_metrics(self) -> dict[str, float]:
        """Flat metric dict for the benchmark snapshot harness."""
        metrics: dict[str, float] = {
            "speedup_float64": self.speedup("compiled-float64"),
            "speedup_float32": self.speedup("compiled-float32"),
            "max_rel_error_float64": self.max_rel_error_float64,
            "max_rel_error_float32": self.max_rel_error_float32,
        }
        for name, path_metrics in self.paths.items():
            key = name.replace("-", "_")
            metrics[f"{key}_qps"] = path_metrics["qps"]
            metrics[f"{key}_per_query_ms"] = path_metrics["per_query_ms"]
        return metrics


def compiled_inference_cost(dataset: str = "dmv", batch_size: int = 8,
                            num_queries: int = 1024, repeats: int = 5,
                            dataset_scale: float = 0.004,
                            config: DuetConfig | None = None,
                            ) -> CompiledInferenceResult:
    """Measure tape vs compiled batch-estimation throughput (Fig. 7 style).

    Uses the paper's DMV setup by default — the high-NDV table and the
    512-256-512-128-1024 architecture — replayed in serving-sized
    micro-batches, the shape of traffic the micro-batcher produces under
    concurrent load.  Weights are random: estimation cost does not depend
    on training, and all three paths share the exact same parameters.
    """
    from ..core.config import dmv_config
    from ..nn import PlanOptions

    config = config or dmv_config(seed=0)
    table = make_dataset(dataset, scale=dataset_scale)
    workload = make_random_workload(table, num_queries=num_queries, seed=3)
    chunks = [workload.queries[index:index + batch_size]
              for index in range(0, num_queries, batch_size)]
    model = DuetModel(table, config)
    estimator = DuetEstimator(model)
    estimator_float32 = DuetEstimator(model).compile(PlanOptions(dtype="float32"))

    def sweep(runner_estimator, compiled):
        encoding = inference = 0.0
        estimates = []
        started = time.perf_counter()
        for chunk in chunks:
            chunk_estimates, breakdown = (
                runner_estimator.estimate_batch_with_breakdown(
                    chunk, compiled=compiled))
            encoding += breakdown["encoding"]
            inference += breakdown["inference"]
            estimates.append(chunk_estimates)
        return time.perf_counter() - started, encoding, inference, estimates

    paths = [("tape", estimator, False),
             ("compiled-float64", estimator, True),
             ("compiled-float32", estimator_float32, None)]
    all_estimates: dict[str, np.ndarray] = {}
    best: dict[str, tuple] = {}
    for name, runner, compiled in paths:  # warm-up: buffers, caches, estimates
        all_estimates[name] = np.concatenate(sweep(runner, compiled)[3])
    # Pause the cyclic GC during the timed windows (the tape path builds
    # large cyclic Tensor graphs, so collection frequency — a function of
    # whatever else the process did before — would otherwise leak into the
    # comparison), and *interleave* the paths round-robin so a transient
    # host stall lands on every path rather than skewing one side; the
    # per-path minimum over rounds then discards the disturbed sweeps.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            for name, runner, compiled in paths:
                run = sweep(runner, compiled)
                if name not in best or run[0] < best[name][0]:
                    best[name] = run[:3]
    finally:
        if gc_was_enabled:
            gc.enable()
        gc.collect()

    def metrics(name):
        total, encoding, inference = best[name]
        return {
            "qps": num_queries / total,
            "per_query_ms": 1e3 * total / num_queries,
            "encoding_ms": 1e3 * encoding / len(chunks),
            "inference_ms": 1e3 * inference / len(chunks),
        }

    tape_estimates = all_estimates["tape"]

    def max_rel_error(name):
        return float(np.max(np.abs(all_estimates[name] - tape_estimates)
                            / np.maximum(np.abs(tape_estimates), 1.0)))

    return CompiledInferenceResult(
        dataset=dataset, batch_size=batch_size, num_queries=num_queries,
        paths={name: metrics(name) for name, _, _ in paths},
        max_rel_error_float64=max_rel_error("compiled-float64"),
        max_rel_error_float32=max_rel_error("compiled-float32"))


# ----------------------------------------------------------------------
# Table II — accuracy of all methods
# ----------------------------------------------------------------------

@dataclass
class AccuracyTableResult:
    dataset: str
    in_workload: dict[str, EvaluationResult]
    random: dict[str, EvaluationResult]
    sizes_mb: dict[str, float]
    costs_ms: dict[str, float]

    def render(self) -> str:
        headers = ["estimator", "size(MB)", "cost(ms)",
                   "InQ mean", "InQ median", "InQ 75th", "InQ 99th", "InQ max",
                   "RandQ mean", "RandQ median", "RandQ 75th", "RandQ 99th", "RandQ max"]
        rows = []
        for name in self.in_workload:
            in_summary = self.in_workload[name].summary
            rand_summary = self.random[name].summary
            rows.append([name, self.sizes_mb[name], self.costs_ms[name]]
                        + in_summary.as_row() + rand_summary.as_row())
        return format_table(headers, rows,
                            title=f"Table II ({self.dataset}): accuracy of all methods")


_DEFAULT_TABLE2_ESTIMATORS = ("sampling", "indep", "mhist", "mscn", "deepdb",
                              "naru", "uae", "duet-d", "duet")


def table2_accuracy(dataset: str = "census",
                    estimators: tuple[str, ...] = _DEFAULT_TABLE2_ESTIMATORS,
                    scale: SmokeScale | None = None,
                    naru_samples: int = 100,
                    epochs: int | None = None) -> AccuracyTableResult:
    """Reproduce one dataset block of Table II (all estimators, both workloads)."""
    scale = scale or SmokeScale()
    epochs = epochs or scale.epochs
    table = scale.dataset(dataset)
    train_queries = make_inworkload(table, num_queries=scale.num_train_queries, seed=42)
    in_q = make_inworkload(table, num_queries=scale.num_test_queries, seed=42)
    rand_q = make_random_workload(table, num_queries=scale.num_test_queries, seed=1234)

    built: dict[str, object] = {}
    for name in estimators:
        if name == "sampling":
            built[name] = SamplingEstimator(table, sample_fraction=0.05, seed=0)
        elif name == "indep":
            built[name] = IndependenceEstimator(table)
        elif name == "mhist":
            built[name] = MHistEstimator(table, num_buckets=200)
        elif name == "mscn":
            built[name] = MSCNEstimator(table, epochs=max(10, epochs * 3),
                                        seed=0).fit(train_queries)
        elif name == "deepdb":
            built[name] = DeepDBEstimator(table, min_instances=128)
        elif name == "naru":
            built[name] = NaruEstimator(table, hidden_sizes=scale.hidden_sizes,
                                        num_samples=naru_samples, seed=0).fit(epochs=epochs)
        elif name == "uae":
            uae = UAEEstimator(table, hidden_sizes=scale.hidden_sizes,
                               num_samples=naru_samples, num_training_samples=4,
                               query_batch_size=4, seed=0)
            uae.fit(epochs=max(1, epochs - 1), workload=train_queries.subset(range(min(100, len(train_queries)))))
            built[name] = uae
        elif name == "duet-d":
            built[name] = train_duet(table, None,
                                     scale.duet_config(epochs=epochs, lambda_query=0.0),
                                     epochs=epochs).estimator
        elif name == "duet":
            built[name] = train_duet(table, train_queries,
                                     scale.duet_config(epochs=epochs),
                                     epochs=epochs).estimator
        else:
            raise KeyError(f"unknown estimator {name!r}")

    in_results = {name: evaluate_estimator(est, in_q, table) for name, est in built.items()}
    rand_results = {name: evaluate_estimator(est, rand_q, table) for name, est in built.items()}
    sizes = {name: est.size_bytes() / 1e6 for name, est in built.items()}
    costs = {name: rand_results[name].per_query_ms for name in built}
    return AccuracyTableResult(dataset=dataset, in_workload=in_results,
                               random=rand_results, sizes_mb=sizes, costs_ms=costs)


# ----------------------------------------------------------------------
# Figures 8 and 9 — convergence speed
# ----------------------------------------------------------------------

@dataclass
class ConvergenceResult:
    workload_kind: str
    epochs: list[int]
    max_qerror: dict[str, list[float]]

    def render(self) -> str:
        title = ("Figure 8" if self.workload_kind == "rand-q" else "Figure 9")
        return format_series("epoch", self.epochs, self.max_qerror,
                             title=f"{title}: max Q-Error convergence on {self.workload_kind}")


def convergence_study(workload_kind: str = "rand-q", dataset: str = "census",
                      epochs: int | None = None, naru_samples: int = 100,
                      scale: SmokeScale | None = None) -> ConvergenceResult:
    """Reproduce Figures 8/9: max Q-Error per epoch for Duet, DuetD, Naru, UAE."""
    if workload_kind not in ("rand-q", "in-q"):
        raise ValueError("workload_kind must be 'rand-q' or 'in-q'")
    scale = scale or SmokeScale()
    epochs = epochs or scale.epochs
    table = scale.dataset(dataset)
    train_queries = make_inworkload(table, num_queries=scale.num_train_queries, seed=42)
    if workload_kind == "rand-q":
        test_queries = make_random_workload(table, num_queries=scale.num_test_queries,
                                            seed=1234)
    else:
        test_queries = make_inworkload(table, num_queries=scale.num_test_queries, seed=42)

    curves: dict[str, list[float]] = {"duet": [], "duet-d": [], "naru": [], "uae": []}

    def duet_curve(training_workload, lambda_query):
        config = scale.duet_config(epochs=epochs, lambda_query=lambda_query)
        model = DuetModel(table, config)
        trainer = DuetTrainer(model, table, training_workload, config)
        estimator = DuetEstimator(model)
        values = []
        for epoch in range(epochs):
            trainer.train_epoch(epoch)
            values.append(evaluate_estimator(estimator, test_queries, table).summary.maximum)
        return values

    curves["duet"] = duet_curve(train_queries, 0.1)
    curves["duet-d"] = duet_curve(None, 0.0)

    naru = NaruEstimator(table, hidden_sizes=scale.hidden_sizes,
                         num_samples=naru_samples, seed=0)
    for _ in range(epochs):
        naru.fit_epoch()
        curves["naru"].append(evaluate_estimator(naru, test_queries, table).summary.maximum)

    uae = UAEEstimator(table, hidden_sizes=scale.hidden_sizes, num_samples=naru_samples,
                       num_training_samples=4, query_batch_size=4, seed=0)
    uae.attach_workload(train_queries.subset(range(min(100, len(train_queries)))))
    for _ in range(epochs):
        uae.fit_epoch()
        curves["uae"].append(evaluate_estimator(uae, test_queries, table).summary.maximum)

    return ConvergenceResult(workload_kind=workload_kind,
                             epochs=list(range(epochs)), max_qerror=curves)


# ----------------------------------------------------------------------
# Table III — training throughput (and memory discussion)
# ----------------------------------------------------------------------

@dataclass
class ThroughputResult:
    dataset: str
    tuples_per_second: dict[str, float]
    peak_activation_elements: dict[str, float]

    def render(self) -> str:
        rows = [[name, self.tuples_per_second[name], self.peak_activation_elements[name]]
                for name in self.tuples_per_second]
        return format_table(["estimator", "tuples/s", "peak activation elements"],
                            rows,
                            title=f"Table III ({self.dataset}): training throughput; the "
                                  "activation column is the analytical stand-in for the "
                                  "paper's GPU-memory discussion")


def table3_training_throughput(dataset: str = "census", scale: SmokeScale | None = None,
                               naru_samples: int = 100) -> ThroughputResult:
    """Reproduce Table III: training throughput of Naru, UAE, DuetD and Duet."""
    scale = scale or SmokeScale()
    table = scale.dataset(dataset)
    train_queries = make_inworkload(table, num_queries=scale.num_train_queries, seed=42)

    throughput: dict[str, float] = {}
    activations: dict[str, float] = {}
    hidden = max(scale.hidden_sizes)
    batch_size = 256

    naru = NaruEstimator(table, hidden_sizes=scale.hidden_sizes, batch_size=batch_size,
                         num_samples=naru_samples, seed=0)
    started = time.perf_counter()
    naru.fit_epoch()
    throughput["naru"] = table.num_rows / (time.perf_counter() - started)
    activations["naru"] = float(batch_size * hidden)

    uae = UAEEstimator(table, hidden_sizes=scale.hidden_sizes, batch_size=batch_size,
                       num_samples=naru_samples, num_training_samples=4,
                       query_batch_size=4, seed=0)
    uae.attach_workload(train_queries.subset(range(min(100, len(train_queries)))))
    started = time.perf_counter()
    uae.fit_epoch()
    throughput["uae"] = table.num_rows / (time.perf_counter() - started)
    # UAE's query loss tracks gradients through query_batch x samples paths
    # and one forward pass per constrained column — the memory blow-up the
    # paper reports as OOM on real GPUs.  The activation figure is computed
    # with the full progressive-sampling budget (`naru_samples`, the value a
    # faithful UAE would also use during training); this run reduces the
    # training sample count to stay within CPU time, exactly the compromise
    # the paper says UAE is forced into.
    activations["uae"] = float(batch_size * hidden
                               + uae.query_batch_size * naru_samples
                               * hidden * table.num_columns)

    for name, workload, lam in (("duet-d", None, 0.0), ("duet", train_queries, 0.1)):
        config = scale.duet_config(epochs=1, lambda_query=lam, batch_size=batch_size)
        model = DuetModel(table, config)
        trainer = DuetTrainer(model, table, workload, config)
        stats = trainer.train_epoch(0)
        throughput[name] = stats.tuples_per_second
        query_term = config.query_batch_size * hidden if workload is not None else 0
        activations[name] = float(batch_size * config.expand_coefficient * hidden + query_term)

    return ThroughputResult(dataset=dataset, tuples_per_second=throughput,
                            peak_activation_elements=activations)


# ----------------------------------------------------------------------
# Ablations called out in DESIGN.md
# ----------------------------------------------------------------------

@dataclass
class AblationResult:
    name: str
    rows: list[list]
    headers: list[str]

    def render(self) -> str:
        return format_table(self.headers, self.rows, title=self.name)


def ablation_hybrid_training(dataset: str = "census",
                             scale: SmokeScale | None = None) -> AblationResult:
    """Duet vs DuetD (hybrid vs data-only) on both workloads."""
    scale = scale or SmokeScale()
    table = scale.dataset(dataset)
    train_queries = make_inworkload(table, num_queries=scale.num_train_queries, seed=42)
    in_q = make_inworkload(table, num_queries=scale.num_test_queries, seed=42)
    rand_q = make_random_workload(table, num_queries=scale.num_test_queries, seed=1234)
    rows = []
    for name, workload, lam in (("duet-d", None, 0.0), ("duet", train_queries, 0.1)):
        trained = train_duet(table, workload, scale.duet_config(lambda_query=lam))
        in_result = evaluate_estimator(trained.estimator, in_q, table)
        rand_result = evaluate_estimator(trained.estimator, rand_q, table)
        rows.append([name, in_result.summary.mean, in_result.summary.maximum,
                     rand_result.summary.mean, rand_result.summary.maximum])
    return AblationResult(
        name=f"Ablation ({dataset}): hybrid vs data-only training",
        headers=["estimator", "InQ mean", "InQ max", "RandQ mean", "RandQ max"],
        rows=rows)


def ablation_expand_coefficient(dataset: str = "census",
                                coefficients: tuple[int, ...] = (1, 2, 4),
                                scale: SmokeScale | None = None) -> AblationResult:
    """Effect of the expand coefficient mu used by Algorithm 1."""
    scale = scale or SmokeScale()
    table = scale.dataset(dataset)
    rand_q = make_random_workload(table, num_queries=scale.num_test_queries, seed=1234)
    rows = []
    for mu in coefficients:
        trained = train_duet(table, None, scale.duet_config(expand_coefficient=mu,
                                                            lambda_query=0.0))
        result = evaluate_estimator(trained.estimator, rand_q, table)
        rows.append([mu, result.summary.mean, result.summary.maximum,
                     trained.history.mean_throughput])
    return AblationResult(
        name=f"Ablation ({dataset}): expand coefficient mu",
        headers=["mu", "RandQ mean", "RandQ max", "tuples/s"],
        rows=rows)


def ablation_loss_mapping(dataset: str = "census",
                          scale: SmokeScale | None = None) -> AblationResult:
    """log2(QError+1) mapping vs raw Q-Error as the hybrid query loss."""
    scale = scale or SmokeScale()
    table = scale.dataset(dataset)
    train_queries = make_inworkload(table, num_queries=scale.num_train_queries, seed=42)
    rand_q = make_random_workload(table, num_queries=scale.num_test_queries, seed=1234)

    rows = []
    for label, mapped in (("log2(QError+1)", True), ("raw QError", False)):
        config = scale.duet_config()
        model = DuetModel(table, config)
        trainer = DuetTrainer(model, table, train_queries, config)
        if not mapped:
            # Swap the mapped loss for the raw Q-Error to show why the paper
            # introduces the mapping (instability / slower convergence).
            from ..nn import functional as F

            def raw_query_loss(self=trainer):
                values, ops, masks, cards = self._query_batch()
                outputs = self.model.forward(values, ops)
                selectivity = self.model.selectivity_from_outputs(outputs, masks)
                estimates = selectivity * float(self.table.num_rows)
                raw = F.qerror(estimates, cards)
                return raw.mean(), float(raw.numpy().mean())

            trainer._query_loss = raw_query_loss
        trainer.train()
        result = evaluate_estimator(DuetEstimator(model), rand_q, table)
        rows.append([label, result.summary.mean, result.summary.maximum])
    return AblationResult(
        name=f"Ablation ({dataset}): hybrid query-loss mapping",
        headers=["query loss", "RandQ mean", "RandQ max"],
        rows=rows)
