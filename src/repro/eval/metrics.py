"""Q-Error metric and summary statistics (the paper's §V-A3)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["qerror", "QErrorSummary", "summarize_qerrors"]


def qerror(estimates: np.ndarray, actuals: np.ndarray, floor: float = 1.0) -> np.ndarray:
    """Elementwise Q-Error ``max(est, act) / min(est, act)``.

    Estimates and actuals are clamped below by ``floor`` (one tuple), the
    convention used by the paper and the benchmark it follows, so empty
    results do not yield infinite errors.
    """
    estimates = np.maximum(np.asarray(estimates, dtype=np.float64), floor)
    actuals = np.maximum(np.asarray(actuals, dtype=np.float64), floor)
    return np.maximum(estimates / actuals, actuals / estimates)


@dataclass(frozen=True)
class QErrorSummary:
    """The five statistics the paper's Table II reports per workload."""

    mean: float
    median: float
    percentile_75: float
    percentile_99: float
    maximum: float
    count: int

    def as_row(self) -> list[float]:
        """Row in the paper's column order (mean, median, 75th, 99th, max)."""
        return [self.mean, self.median, self.percentile_75, self.percentile_99, self.maximum]

    def __str__(self) -> str:
        return (f"mean={self.mean:.3f} median={self.median:.3f} "
                f"75th={self.percentile_75:.3f} 99th={self.percentile_99:.3f} "
                f"max={self.maximum:.3f}")


def summarize_qerrors(values: np.ndarray) -> QErrorSummary:
    """Aggregate an array of Q-Errors into the paper's summary statistics."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot summarise an empty Q-Error array")
    return QErrorSummary(
        mean=float(values.mean()),
        median=float(np.median(values)),
        percentile_75=float(np.percentile(values, 75)),
        percentile_99=float(np.percentile(values, 99)),
        maximum=float(values.max()),
        count=int(values.size),
    )
