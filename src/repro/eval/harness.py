"""Evaluation harness: run estimators over workloads, collect accuracy and cost.

This is the machinery behind every table and figure reproduction: it trains
(or builds) an estimator, runs it over a labelled workload, and records the
Q-Error summary, per-query latency and model size — the columns of the
paper's Table II.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core import (
    DuetConfig,
    DuetEstimator,
    DuetModel,
    DuetTrainer,
    TrainingHistory,
)
from ..core.interface import CardinalityEstimator
from ..data.table import Table
from ..serving.registry import SchemaTable
from ..serving.service import EstimationService
from ..workload.workload import Workload
from .loadgen import LoadReport, run_load_test
from .metrics import QErrorSummary, qerror, summarize_qerrors

__all__ = ["EvaluationResult", "ServingResult", "evaluate_estimator",
           "evaluate_service", "train_duet", "TrainedDuet"]


@dataclass(frozen=True)
class EvaluationResult:
    """Accuracy and cost of one estimator on one workload."""

    estimator_name: str
    workload_name: str
    summary: QErrorSummary
    qerrors: np.ndarray
    estimates: np.ndarray
    total_seconds: float
    per_query_ms: float
    size_bytes: int

    def as_table_row(self) -> list:
        """Row matching the paper's Table II layout."""
        return ([self.estimator_name, self.size_bytes / 1e6, self.per_query_ms]
                + self.summary.as_row())


def evaluate_estimator(estimator: CardinalityEstimator, workload: Workload,
                       table: Table | None = None) -> EvaluationResult:
    """Run ``estimator`` over every query of ``workload`` and summarise."""
    table = table or estimator.table
    if not workload.is_labeled:
        workload.label(table)
    started = time.perf_counter()
    estimates = estimator.estimate_batch(workload.queries)
    elapsed = time.perf_counter() - started
    errors = qerror(estimates, workload.cardinalities)
    return EvaluationResult(
        estimator_name=estimator.name,
        workload_name=workload.name,
        summary=summarize_qerrors(errors),
        qerrors=errors,
        estimates=np.asarray(estimates, dtype=np.float64),
        total_seconds=elapsed,
        per_query_ms=1e3 * elapsed / max(len(workload), 1),
        size_bytes=estimator.size_bytes(),
    )


@dataclass(frozen=True)
class ServingResult:
    """Throughput *and* accuracy of one service configuration.

    The serving counterpart of :class:`EvaluationResult`: the load report
    covers QPS/latency/cache/batching under concurrency, the Q-Error summary
    confirms the served estimates are still the model's estimates.
    """

    estimator_name: str
    workload_name: str
    report: LoadReport
    summary: QErrorSummary

    def as_table_row(self) -> list:
        return [self.estimator_name] + self.report.as_table_row() + self.summary.as_row()


def evaluate_service(service: EstimationService, workload: Workload,
                     concurrency: int = 8, num_requests: int = 2_000,
                     table: Table | None = None, seed: int = 0) -> ServingResult:
    """Load-test ``service`` on ``workload`` and check served accuracy.

    Runs the concurrent load phase first, then asks the service for every
    workload query once (through the cache) and summarises Q-Errors against
    the true cardinalities.  A registry-loaded service only carries the
    data-less schema table, which cannot label a workload — pass the data
    table via ``table=`` (or a pre-labelled workload) in that case.
    """
    table = table or service.table
    if not workload.is_labeled:
        if isinstance(table, SchemaTable):
            raise ValueError(
                f"table {table.name!r} is a data-less schema stand-in and cannot "
                f"label workload {workload.name!r}; pass the data table via "
                f"table= or label the workload first")
        workload.label(table)
    report = run_load_test(service, workload, concurrency=concurrency,
                           num_requests=num_requests, seed=seed)
    estimates = service.estimate_batch(workload.queries)
    errors = qerror(estimates, workload.cardinalities)
    return ServingResult(
        estimator_name=service.estimator.name,
        workload_name=workload.name,
        report=report,
        summary=summarize_qerrors(errors),
    )


@dataclass
class TrainedDuet:
    """A trained Duet model together with its estimator and history."""

    model: DuetModel
    estimator: DuetEstimator
    trainer: DuetTrainer
    history: TrainingHistory

    @property
    def hybrid(self) -> bool:
        return self.trainer.hybrid


def train_duet(table: Table, training_workload: Workload | None = None,
               config: DuetConfig | None = None, epochs: int | None = None,
               evaluation_fn=None, seed: int | None = None) -> TrainedDuet:
    """Train Duet (hybrid when a workload is given, DuetD otherwise)."""
    config = config or DuetConfig()
    model = DuetModel(table, config)
    trainer = DuetTrainer(model, table, training_workload, config, seed=seed)
    history = trainer.train(epochs=epochs, evaluation_fn=evaluation_fn)
    return TrainedDuet(model=model, estimator=DuetEstimator(model),
                       trainer=trainer, history=history)
