"""Metrics exporter: periodic registry snapshots appended to a JSONL file.

One :class:`MetricsExporter` watches one :class:`~repro.obs.MetricsRegistry`
and appends a timestamped JSON snapshot line every ``interval_seconds`` —
a scrape-able timeline a soak run (or an operator's ``tail -f``) can read
back without any metrics backend.  ``stop()`` always writes one final
snapshot, so even a run shorter than the interval leaves a usable file.
On-demand Prometheus text exposition is a pass-through to the registry.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

from .metrics import MetricsRegistry

__all__ = ["MetricsExporter"]


class MetricsExporter:
    """Background snapshot-to-file loop plus on-demand text exposition."""

    def __init__(self, registry: MetricsRegistry, path,
                 interval_seconds: float = 5.0) -> None:
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        self.registry = registry
        self.path = Path(path)
        self.interval_seconds = interval_seconds
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._write_lock = threading.Lock()
        self._snapshots_written = 0

    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def snapshots_written(self) -> int:
        return self._snapshots_written

    def start(self) -> "MetricsExporter":
        """Start the periodic loop (idempotent); returns ``self``."""
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="repro-metrics-exporter")
        self._thread.start()
        return self

    def stop(self, final_snapshot: bool = True) -> None:
        """Stop the loop; by default flush one last snapshot line."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if final_snapshot:
            self.write_snapshot()

    def __enter__(self) -> "MetricsExporter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            try:
                self.write_snapshot()
            except Exception:  # noqa: BLE001 — a full disk must not kill
                pass           # the owning process; the next tick retries

    # ------------------------------------------------------------------
    def write_snapshot(self) -> dict:
        """Append one ``{"t": ..., "metrics": ...}`` line; returns it."""
        record = {"t": time.time(), "metrics": self.registry.snapshot()}
        line = json.dumps(record, separators=(",", ":"))
        with self._write_lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as sink:
                sink.write(line + "\n")
            self._snapshots_written += 1
        return record

    def exposition(self) -> str:
        """Current Prometheus text exposition of the watched registry."""
        return self.registry.exposition()

    # ------------------------------------------------------------------
    @staticmethod
    def read_timeline(path) -> list[dict]:
        """Parse a snapshot file back into its list of records."""
        records = []
        with Path(path).open(encoding="utf-8") as source:
            for line in source:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        return records

    @staticmethod
    def series(records: list[dict], metric: str,
               labels: dict | None = None) -> list[tuple[float, float]]:
        """Extract one metric's ``(timestamp, value)`` series from records.

        For plain counters/gauges only (histograms carry structured
        samples); ``labels`` selects one labeled child (``None`` matches
        the unlabeled sample).  Timestamps are the snapshot times.
        """
        wanted = labels or {}
        points: list[tuple[float, float]] = []
        for record in records:
            entry = record.get("metrics", {}).get(metric)
            if entry is None:
                continue
            for sample in entry.get("samples", ()):
                if sample.get("labels", {}) == wanted and "value" in sample:
                    points.append((record["t"], sample["value"]))
                    break
        return points
