"""Request tracing: sampled span trees over the serving hot path.

A :class:`Tracer` decides per request whether to record a trace
(``sample_rate``); the untraced path costs one attribute read and one
float compare — no allocation, no lock.  A sampled request carries a
:class:`Trace` through the service: the cache probe, the micro-batch
hand-off, and the per-stage breakdown of the forward pass that served it
(translate / encode / forward) become :class:`Span` nodes of one tree.
Finished traces feed a bounded slowest-N reservoir, so "show me the worst
requests and where they spent their time" is one
:meth:`Tracer.slowest` call on a live service.

Spans inside a micro-batch are *attributed*: the batch runner measures
each stage once per forward pass and every traced request of that batch
receives the same durations (stages are shared work — that is the point
of batching).  Stage durations therefore sum to the pass cost, and the
gap to the enclosing ``batch`` span is the time the request spent queued
behind the batcher (materialised as a ``wait`` span).
"""

from __future__ import annotations

import heapq
import itertools
import random
import threading
import time

__all__ = ["Span", "Trace", "Tracer"]

#: breakdown keys of the batch runner, in execution order, with the span
#: name each is recorded under (``inference`` covers the network forward
#: pass plus the fused zero-out, so the span is called ``forward``)
_STAGE_SPANS = (("translate", "translate"), ("encode", "encode"),
                ("inference", "forward"))


class Span:
    """One named, timed node of a trace tree (durations in seconds)."""

    __slots__ = ("name", "start", "duration", "children")

    def __init__(self, name: str, start: float = 0.0,
                 duration: float = 0.0) -> None:
        self.name = name
        self.start = start          # offset from the trace start
        self.duration = duration
        self.children: list[Span] = []

    def child(self, name: str, start: float = 0.0,
              duration: float = 0.0) -> "Span":
        span = Span(name, start, duration)
        self.children.append(span)
        return span

    def walk(self):
        """Yield this span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def tree_lines(self, indent: int = 0) -> list[str]:
        lines = [f"{'  ' * indent}{self.name:<14} "
                 f"{1e3 * self.duration:8.3f} ms"]
        for child in self.children:
            lines.extend(child.tree_lines(indent + 1))
        return lines

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, {1e3 * self.duration:.3f}ms, "
                f"{len(self.children)} children)")


class Trace:
    """One sampled request's span tree, rooted at the request itself."""

    __slots__ = ("root", "detail", "cache_hit", "_tracer", "_started",
                 "_breakdown", "batch_size")

    def __init__(self, tracer: "Tracer", name: str, detail=None) -> None:
        self.root = Span(name)
        self.detail = detail
        self.cache_hit = False
        self.batch_size = 0
        self._tracer = tracer
        self._started = time.perf_counter()
        self._breakdown: dict | None = None

    @property
    def duration(self) -> float:
        return self.root.duration

    def elapsed(self) -> float:
        return time.perf_counter() - self._started

    # ------------------------------------------------------------------
    def add(self, name: str, duration: float) -> Span:
        """Record a just-finished stage of ``duration`` seconds."""
        start = max(self.elapsed() - duration, 0.0)
        return self.root.child(name, start, duration)

    def attach_breakdown(self, breakdown, batch_size: int = 1) -> None:
        """Stash the forward pass's stage breakdown (batcher-thread safe).

        Called from whichever thread ran the forward pass, strictly before
        the request's future resolves — the future hand-off orders this
        write before :meth:`add_batch_span` reads it.
        """
        self._breakdown = dict(breakdown) if breakdown is not None else None
        self.batch_size = batch_size

    def add_batch_span(self, duration: float) -> Span:
        """Record the submit-to-result window, expanded into stage spans."""
        batch = self.add("batch", duration)
        breakdown = self._breakdown
        if not breakdown:
            return batch
        offset = batch.start
        staged = 0.0
        for key, span_name in _STAGE_SPANS:
            stage_seconds = breakdown.get(key)
            if stage_seconds is None:
                continue
            staged += stage_seconds
        # Time queued behind the batcher (and any stage the runner did not
        # meter) before the metered stages ran.
        wait = duration - staged
        if wait > 0:
            batch.child("wait", offset, wait)
            offset += wait
        for key, span_name in _STAGE_SPANS:
            stage_seconds = breakdown.get(key)
            if stage_seconds is None:
                continue
            batch.child(span_name, offset, stage_seconds)
            offset += stage_seconds
        return batch

    def finish(self, cache_hit: bool = False) -> None:
        """Close the root span and hand the trace to the tracer."""
        self.cache_hit = cache_hit
        self.root.duration = self.elapsed()
        self._tracer._record(self)

    # ------------------------------------------------------------------
    def stage_names(self) -> set[str]:
        return {span.name for span in self.root.walk()} - {self.root.name}

    def format_tree(self) -> str:
        header = f"trace {1e3 * self.duration:.3f} ms"
        if self.detail is not None:
            header += f"  {self.detail}"
        if self.batch_size:
            header += f"  (batch of {self.batch_size})"
        return "\n".join([header] + [line for child in self.root.children
                                     for line in child.tree_lines(1)])


class Tracer:
    """Samples requests into traces and retains the slowest N of them."""

    def __init__(self, sample_rate: float = 0.0, keep_slowest: int = 32,
                 seed: int | None = None) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        if keep_slowest <= 0:
            raise ValueError("keep_slowest must be positive")
        self.sample_rate = sample_rate
        self.keep_slowest = keep_slowest
        self._random = (random.Random(seed).random if seed is not None
                        else random.random)
        self._lock = threading.Lock()
        self._heap: list[tuple[float, int, Trace]] = []
        self._seq = itertools.count()
        self._traces_started = 0

    @property
    def enabled(self) -> bool:
        return self.sample_rate > 0.0

    @property
    def traces_started(self) -> int:
        return self._traces_started

    # ------------------------------------------------------------------
    def maybe_trace(self, detail=None, name: str = "request") -> Trace | None:
        """A new :class:`Trace` for this request, or ``None`` when unsampled.

        The ``None`` path is the hot one: with ``sample_rate == 0`` it is a
        single comparison — no RNG draw, no allocation.
        """
        rate = self.sample_rate
        if rate <= 0.0:
            return None
        if rate < 1.0 and self._random() >= rate:
            return None
        with self._lock:
            self._traces_started += 1
        return Trace(self, name, detail)

    def _record(self, trace: Trace) -> None:
        with self._lock:
            heapq.heappush(self._heap,
                           (trace.duration, next(self._seq), trace))
            while len(self._heap) > self.keep_slowest:
                heapq.heappop(self._heap)

    # ------------------------------------------------------------------
    def slowest(self, n: int | None = None) -> list[Trace]:
        """The retained traces, slowest first (up to ``n`` of them)."""
        with self._lock:
            ranked = sorted(self._heap, key=lambda item: -item[0])
        traces = [trace for _, _, trace in ranked]
        return traces if n is None else traces[:n]

    def clear(self) -> None:
        with self._lock:
            self._heap.clear()
