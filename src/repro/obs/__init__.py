"""Unified observability layer: metrics, request tracing, export.

Dependency-free (stdlib-only) substrate the rest of the system reports
through:

* :class:`MetricsRegistry` — thread-safe labeled counters, gauges and
  fixed-bucket histograms with Prometheus-style text
  :meth:`~MetricsRegistry.exposition` and a JSON-safe
  :meth:`~MetricsRegistry.snapshot`;
* :class:`Tracer` / :class:`Trace` / :class:`Span` — sampled span trees
  over the serving hot path, with slowest-N retention;
* :class:`MetricsExporter` — periodic snapshot-to-JSONL timeline plus
  on-demand exposition;
* :func:`parse_exposition` — exposition text back into ``{(name, labels):
  value}`` (test/scrape helper).

The serving and lifecycle layers register their instruments here (see the
README's Observability section for the metric catalogue); everything is
importable without NumPy so telemetry can be consumed anywhere.
"""

from .exporter import MetricsExporter
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_exposition,
)
from .tracing import Span, Trace, Tracer

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "parse_exposition",
    "Tracer",
    "Trace",
    "Span",
    "MetricsExporter",
]
