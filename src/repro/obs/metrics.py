"""Metrics substrate: a thread-safe registry of labeled instruments.

Every subsystem that counts something — serving, lifecycle control, the
data store — registers its counters, gauges and histograms in one
:class:`MetricsRegistry` and the registry is the *single* observable
surface: a Prometheus-style text :meth:`~MetricsRegistry.exposition` for
scrapers and a JSON-safe :meth:`~MetricsRegistry.snapshot` for the
periodic file exporter.  The registry is dependency-free (stdlib only) and
instruments are cheap enough for request hot paths: one small lock per
instrument, no allocation on the increment path once a labeled child is
bound.

Naming follows the Prometheus conventions: ``repro_`` prefix, base units
in the name (``_seconds``, ``_rows``), counters end in ``_total``::

    registry = MetricsRegistry()
    requests = registry.counter("repro_requests_total",
                                "Requests served.", labels=("cache",))
    hits = requests.labels(cache="hit")     # bind once, inc forever
    hits.inc()

    latency = registry.histogram("repro_request_latency_seconds",
                                 "Request latency.")
    latency.observe(0.0021)

    print(registry.exposition())            # text format
    registry.snapshot()                     # nested JSON-safe dict
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Callable, Iterable, Sequence

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "parse_exposition",
    "DEFAULT_LATENCY_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: default histogram buckets, tuned for request/tune latencies (seconds)
DEFAULT_LATENCY_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
                           0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 10.0)


def _validate_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _validate_labels(label_names: Sequence[str]) -> tuple[str, ...]:
    names = tuple(label_names)
    for label in names:
        if not _LABEL_RE.match(label):
            raise ValueError(f"invalid label name {label!r}")
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate label names in {names!r}")
    return names


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _format_value(value: float) -> str:
    """Shortest round-tripping representation (text == JSON parity)."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _format_le(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else _format_value(bound)


class _Instrument:
    """Shared plumbing: one lock, labeled children keyed by value tuples."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = ()) -> None:
        self.name = _validate_name(name)
        self.help = help
        self.label_names = _validate_labels(label_names)
        self._lock = threading.Lock()
        self._children: dict[tuple, object] = {}

    def _child_key(self, labels: dict) -> tuple:
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, "
                f"got {tuple(sorted(labels))}")
        return tuple(str(labels[name]) for name in self.label_names)

    def labels(self, **labels):
        """The child bound to these label values (created on first use)."""
        key = self._child_key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def _make_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def _reset(self) -> None:
        """Zero every child *in place* (bound children stay valid).

        Internal: :meth:`repro.serving.ServiceStats.reset` restarts its
        measurement window through this; ordinary consumers never reset
        (counters are monotonic by contract).
        """
        with self._lock:
            for child in self._children.values():
                child._zero()

    # -- collection -----------------------------------------------------
    def _collect(self) -> list[tuple[dict, object]]:
        """``(labels_dict, child_state)`` pairs, consistent under the lock."""
        with self._lock:
            items = list(self._children.items())
        return [(dict(zip(self.label_names, key)), child)
                for key, child in items]


class _CounterCell:
    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _zero(self) -> None:
        self._value = 0.0  # caller holds the instrument lock


class Counter(_Instrument):
    """Monotonically increasing count, optionally split by labels."""

    kind = "counter"

    def _make_child(self) -> _CounterCell:
        return _CounterCell(self._lock)

    def inc(self, amount: float = 1.0, **labels) -> None:
        self.labels(**labels).inc(amount)

    def value(self, **labels) -> float:
        """Current count for one label combination (0 if never touched)."""
        key = self._child_key(labels)
        with self._lock:
            child = self._children.get(key)
            return child._value if child is not None else 0.0

    def total(self) -> float:
        """Sum over every label combination."""
        with self._lock:
            return sum(child._value for child in self._children.values())

    def items(self) -> list[tuple[dict, float]]:
        return [(labels, cell._value) for labels, cell in self._collect()]


class _GaugeCell:
    __slots__ = ("_lock", "_value", "_fn")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0
        self._fn: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        with self._lock:
            self._fn = None
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Collect-time callback; errors during collection read as NaN."""
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        with self._lock:
            fn = self._fn
            if fn is None:
                return self._value
        try:
            return float(fn())
        except Exception:  # noqa: BLE001 — collection must never raise
            return math.nan

    def _zero(self) -> None:
        if self._fn is None:  # caller holds the instrument lock
            self._value = 0.0


class Gauge(_Instrument):
    """A value that can go up and down, or be computed at collection time."""

    kind = "gauge"

    def _make_child(self) -> _GaugeCell:
        return _GaugeCell(self._lock)

    def set(self, value: float, **labels) -> None:
        self.labels(**labels).set(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        self.labels(**labels).inc(amount)

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.labels(**labels).dec(amount)

    def set_function(self, fn: Callable[[], float], **labels) -> None:
        self.labels(**labels).set_function(fn)

    def value(self, **labels):
        return self.labels(**labels).value

    def items(self) -> list[tuple[dict, float]]:
        return [(labels, cell.value) for labels, cell in self._collect()]


class _HistogramCell:
    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, lock: threading.Lock, bounds: tuple[float, ...]) -> None:
        self._lock = lock
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot: +Inf overflow
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def state(self) -> tuple[list[int], float, int]:
        with self._lock:
            return list(self._counts), self._sum, self._count

    def _zero(self) -> None:
        self._counts = [0] * len(self._counts)  # caller holds the lock
        self._sum = 0.0
        self._count = 0


class Histogram(_Instrument):
    """Fixed-bucket distribution: per-bucket counts plus sum and count."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        super().__init__(name, help, label_names)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram buckets must be strictly increasing")
        self.buckets = bounds

    def _make_child(self) -> _HistogramCell:
        return _HistogramCell(self._lock, self.buckets)

    def observe(self, value: float, **labels) -> None:
        self.labels(**labels).observe(value)

    def items(self) -> list[tuple[dict, tuple[list[int], float, int]]]:
        return [(labels, cell.state()) for labels, cell in self._collect()]


class MetricsRegistry:
    """Thread-safe get-or-create home of every instrument.

    Re-registering a name returns the existing instrument when kind and
    labels match (so independent components can share one metric) and
    raises when they conflict (two meanings under one name is a telemetry
    bug worth failing loudly on).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Instrument] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str,
                       labels: Sequence[str], **extra) -> _Instrument:
        label_names = _validate_labels(labels)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, cannot re-register as {cls.kind}")
                if existing.label_names != label_names:
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.label_names}, got {label_names}")
                if (isinstance(existing, Histogram) and "buckets" in extra
                        and tuple(float(b) for b in extra["buckets"])
                        != existing.buckets):
                    raise ValueError(
                        f"metric {name!r} already registered with different "
                        f"buckets")
                return existing
            metric = cls(name, help, label_names, **extra)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = (),
              fn: Callable[[], float] | None = None) -> Gauge:
        gauge = self._get_or_create(Gauge, name, help, labels)
        if fn is not None:
            if labels:
                raise ValueError("fn= shorthand only works on unlabeled "
                                 "gauges; use set_function(fn, **labels)")
            gauge.set_function(fn)
        return gauge

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
                  ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels,
                                   buckets=buckets)

    # ------------------------------------------------------------------
    def metrics(self) -> list[_Instrument]:
        with self._lock:
            return list(self._metrics.values())

    def get(self, name: str) -> _Instrument | None:
        with self._lock:
            return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe dump: every instrument's current samples.

        Histograms report *cumulative* bucket counts (Prometheus ``le``
        semantics) as ``[upper_bound, count]`` pairs ending in ``"+Inf"``,
        so the JSON dump and the text exposition carry identical numbers.
        """
        dump: dict = {}
        for metric in self.metrics():
            samples: list[dict] = []
            if isinstance(metric, Histogram):
                for labels, (counts, total, count) in metric.items():
                    cumulative, running = [], 0
                    for bound, bucket in zip(metric.buckets, counts):
                        running += bucket
                        cumulative.append([bound, running])
                    cumulative.append(["+Inf", running + counts[-1]])
                    samples.append({"labels": labels, "buckets": cumulative,
                                    "sum": total, "count": count})
            else:
                for labels, value in metric.items():
                    samples.append({"labels": labels, "value": value})
            dump[metric.name] = {"type": metric.kind, "help": metric.help,
                                 "samples": samples}
        return dump

    def exposition(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for metric in self.metrics():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                for labels, (counts, total, count) in metric.items():
                    running = 0
                    for bound, bucket in zip(metric.buckets, counts):
                        running += bucket
                        lines.append(_sample_line(
                            f"{metric.name}_bucket",
                            {**labels, "le": _format_le(bound)}, running))
                    lines.append(_sample_line(
                        f"{metric.name}_bucket",
                        {**labels, "le": "+Inf"}, running + counts[-1]))
                    lines.append(_sample_line(f"{metric.name}_sum", labels,
                                              total))
                    lines.append(_sample_line(f"{metric.name}_count", labels,
                                              count))
            else:
                for labels, value in metric.items():
                    lines.append(_sample_line(metric.name, labels, value))
        return "\n".join(lines) + ("\n" if lines else "")


def _sample_line(name: str, labels: dict, value: float) -> str:
    if labels:
        rendered = ",".join(
            f'{key}="{_escape_label_value(str(val))}"'
            for key, val in sorted(labels.items()))
        return f"{name}{{{rendered}}} {_format_value(float(value))}"
    return f"{name} {_format_value(float(value))}"


_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$")
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape_label_value(value: str) -> str:
    return (value.replace(r'\"', '"').replace(r"\n", "\n")
            .replace(r"\\", "\\"))


def parse_exposition(text: str | Iterable[str]
                     ) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse exposition text back into ``{(name, labels): value}``.

    ``labels`` is a sorted tuple of ``(key, value)`` pairs.  Histogram
    series appear under their ``_bucket``/``_sum``/``_count`` sample names.
    Used by tests to assert text/JSON parity, and handy for scraping the
    exporter output without a Prometheus client.
    """
    lines = text.splitlines() if isinstance(text, str) else text
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for line in lines:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {line!r}")
        name, raw_labels, raw_value = match.groups()
        labels: list[tuple[str, str]] = []
        if raw_labels:
            consumed = 0
            for pair in _LABEL_PAIR_RE.finditer(raw_labels):
                labels.append((pair.group(1),
                               _unescape_label_value(pair.group(2))))
                consumed = pair.end()
            leftover = raw_labels[consumed:].strip(", ")
            if leftover:
                raise ValueError(f"unparseable labels in line: {line!r}")
        value = float("inf") if raw_value == "+Inf" else (
            float("-inf") if raw_value == "-Inf" else float(raw_value))
        samples[(name, tuple(sorted(labels)))] = value
    return samples
