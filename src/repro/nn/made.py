"""Masked autoregressive networks (MADE and ResMADE).

Both Duet and the Naru / UAE baselines are built on MADE [Germain et al.,
2015]: a feed-forward network whose weight masks enforce that the output
block for column ``i`` only depends on the input blocks of columns ``< i``.

The network is *column-blocked*: each column ``i`` owns a contiguous slice of
the input vector (its encoded value for Naru, its encoded predicate for Duet)
and a contiguous slice of the output vector (logits over the column's
distinct values).  ``ColumnBlockSpec`` records those slices so that callers
can encode inputs and decode outputs without duplicating offset arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .layers import MaskedLinear, Module
from .tensor import Tensor

__all__ = ["ColumnBlockSpec", "MADE"]


@dataclass(frozen=True)
class ColumnBlockSpec:
    """Input/output slice owned by one column in a column-blocked MADE."""

    column_index: int
    input_start: int
    input_end: int
    output_start: int
    output_end: int

    @property
    def input_width(self) -> int:
        return self.input_end - self.input_start

    @property
    def output_width(self) -> int:
        return self.output_end - self.output_start


class MADE(Module):
    """Column-blocked Masked Autoencoder for Distribution Estimation.

    Parameters
    ----------
    input_bins:
        Encoded input width of each column (predicate encoding width for
        Duet, value encoding width for Naru).
    output_bins:
        Number of distinct values of each column; the output block for
        column ``i`` holds that many logits.
    hidden_sizes:
        Sizes of the hidden layers, e.g. ``[512, 256, 512, 128, 1024]`` for
        the paper's DMV configuration.
    residual:
        When True, add identity skip connections between consecutive hidden
        layers of equal width (the "ResMADE" variant used for Kddcup98 and
        Census in the paper).
    """

    def __init__(
        self,
        input_bins: list[int],
        output_bins: list[int],
        hidden_sizes: list[int],
        residual: bool = False,
        seed: int | None = 0,
    ) -> None:
        super().__init__()
        if len(input_bins) != len(output_bins):
            raise ValueError("input_bins and output_bins must describe the same columns")
        if not input_bins:
            raise ValueError("at least one column is required")
        if any(width <= 0 for width in input_bins + output_bins):
            raise ValueError("all block widths must be positive")

        self.input_bins = list(input_bins)
        self.output_bins = list(output_bins)
        self.hidden_sizes = list(hidden_sizes)
        self.residual = residual
        self.num_columns = len(input_bins)

        rng = np.random.default_rng(seed)

        self.blocks = self._build_block_specs()
        self.total_input = sum(input_bins)
        self.total_output = sum(output_bins)

        input_degrees = np.concatenate(
            [np.full(width, index) for index, width in enumerate(input_bins)])
        output_degrees = np.concatenate(
            [np.full(width, index) for index, width in enumerate(output_bins)])

        # Hidden-unit degrees cycle over 0..N-2 so that every conditional
        # P(C_i | . < i) for i >= 1 has hidden capacity.  With a single
        # column there is nothing to condition on and all masks to the
        # output are zero (the output is learned through the bias alone).
        max_degree = max(self.num_columns - 1, 1)
        hidden_degrees = [
            np.arange(size) % max_degree for size in hidden_sizes
        ]

        self._layers: list[MaskedLinear] = []
        previous_degrees = input_degrees
        previous_size = self.total_input
        for layer_index, size in enumerate(hidden_sizes):
            layer = MaskedLinear(previous_size, size, rng=rng)
            degrees = hidden_degrees[layer_index]
            mask = (degrees[None, :] >= previous_degrees[:, None]).astype(np.float64)
            layer.set_mask(mask)
            setattr(self, f"hidden{layer_index}", layer)
            self._layers.append(layer)
            previous_degrees = degrees
            previous_size = size

        self.output_layer = MaskedLinear(previous_size, self.total_output, rng=rng)
        output_mask = (output_degrees[None, :] > previous_degrees[:, None]).astype(np.float64)
        self.output_layer.set_mask(output_mask)

        self._hidden_degrees = hidden_degrees

    # ------------------------------------------------------------------
    def _build_block_specs(self) -> list[ColumnBlockSpec]:
        blocks: list[ColumnBlockSpec] = []
        input_offset = 0
        output_offset = 0
        for index, (in_width, out_width) in enumerate(zip(self.input_bins, self.output_bins)):
            blocks.append(ColumnBlockSpec(
                column_index=index,
                input_start=input_offset,
                input_end=input_offset + in_width,
                output_start=output_offset,
                output_end=output_offset + out_width,
            ))
            input_offset += in_width
            output_offset += out_width
        return blocks

    # ------------------------------------------------------------------
    def forward(self, inputs: Tensor) -> Tensor:
        """Map a batch of encoded inputs to concatenated per-column logits."""
        if inputs.shape[-1] != self.total_input:
            raise ValueError(f"expected input width {self.total_input}, "
                             f"got {inputs.shape[-1]}")
        hidden = inputs
        previous: Tensor | None = None
        for layer_index, layer in enumerate(self._layers):
            pre_activation = layer(hidden)
            activated = pre_activation.relu()
            can_skip = (
                self.residual
                and previous is not None
                and previous.shape[-1] == activated.shape[-1]
                and np.array_equal(self._hidden_degrees[layer_index - 1],
                                   self._hidden_degrees[layer_index])
            )
            if can_skip:
                activated = activated + previous
            previous = activated
            hidden = activated
        return self.output_layer(hidden)

    # ------------------------------------------------------------------
    def export_stage_specs(self) -> list:
        """Lower the network into compiled stage specs (masks folded once).

        The spec list mirrors :meth:`forward` exactly: every hidden layer
        becomes a fused linear+ReLU stage whose weight already carries the
        autoregressive mask, ResMADE skip connections become ``residual_from``
        links, and the output layer is the final linear stage.
        """
        from .inference import StageSpec

        specs: list[StageSpec] = []
        for layer_index, layer in enumerate(self._layers):
            weight, bias = layer.export_weights()
            residual_from = None
            if (self.residual and layer_index > 0
                    and self.hidden_sizes[layer_index - 1] == self.hidden_sizes[layer_index]
                    and np.array_equal(self._hidden_degrees[layer_index - 1],
                                       self._hidden_degrees[layer_index])):
                residual_from = layer_index - 1
            specs.append(StageSpec(weight, bias, activation="relu",
                                   residual_from=residual_from))
        weight, bias = self.output_layer.export_weights()
        specs.append(StageSpec(weight, bias))
        return specs

    def output_block_slices(self) -> list[tuple[int, int]]:
        """Per-column ``(start, end)`` logit slices, for the fused zero-out."""
        return [(block.output_start, block.output_end) for block in self.blocks]

    # ------------------------------------------------------------------
    def column_logits(self, outputs: Tensor, column_index: int) -> Tensor:
        """Slice the logits block of ``column_index`` out of the full output."""
        block = self.blocks[column_index]
        return outputs[..., block.output_start:block.output_end]

    def autoregressive_mask_matrix(self) -> np.ndarray:
        """Return the end-to-end connectivity matrix (inputs x outputs).

        Entry ``(i, o)`` is nonzero when input unit ``i`` can influence output
        unit ``o``.  Tests use this to verify the autoregressive property:
        the output block of column ``c`` must have zero connectivity to the
        input blocks of columns ``>= c``.
        """
        connectivity = self._layers[0].mask if self._layers else None
        if connectivity is None:
            return self.output_layer.mask
        for layer in self._layers[1:]:
            connectivity = connectivity @ layer.mask
        return connectivity @ self.output_layer.mask
