"""Gradient-descent optimisers (SGD with momentum, Adam)."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


class Optimizer:
    """Base class holding a parameter list and the zero-grad helper."""

    def __init__(self, parameters) -> None:
        self.parameters: list[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters, lr: float = 1e-2, momentum: float = 0.0,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            if self.weight_decay:
                gradient = gradient + self.weight_decay * parameter.data
            if self.momentum:
                velocity *= self.momentum
                velocity += gradient
                update = velocity
            else:
                update = gradient
            parameter.data = parameter.data - self.lr * update


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015), the paper's default."""

    def __init__(self, parameters, lr: float = 2e-3, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._first_moment = [np.zeros_like(p.data) for p in self.parameters]
        self._second_moment = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias_correction1 = 1.0 - self.beta1 ** self._step_count
        bias_correction2 = 1.0 - self.beta2 ** self._step_count
        for parameter, first, second in zip(self.parameters, self._first_moment,
                                            self._second_moment):
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            if self.weight_decay:
                gradient = gradient + self.weight_decay * parameter.data
            first *= self.beta1
            first += (1.0 - self.beta1) * gradient
            second *= self.beta2
            second += (1.0 - self.beta2) * gradient ** 2
            corrected_first = first / bias_correction1
            corrected_second = second / bias_correction2
            parameter.data = parameter.data - self.lr * corrected_first / (
                np.sqrt(corrected_second) + self.eps)


def clip_grad_norm(parameters, max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the norm before clipping (useful for monitoring).
    """
    parameters = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in parameters)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for parameter in parameters:
            parameter.grad = parameter.grad * scale
    return total
