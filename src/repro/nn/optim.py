"""Gradient-descent optimisers (SGD with momentum, Adam).

Both optimisers update ``parameter.data`` strictly in place: moment buffers
are preallocated once, each step works through a single reusable scratch
buffer per parameter, and no ``gradient ** 2`` / ``corrected_*`` temporaries
are materialised.  A training step therefore allocates nothing proportional
to the model size, which keeps large-model epochs out of the allocator (the
training-step micro-benchmark guards this).
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


class Optimizer:
    """Base class holding a parameter list and the zero-grad helper."""

    def __init__(self, parameters) -> None:
        self.parameters: list[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        #: one scratch buffer per parameter, reused by every step
        self._scratch = [np.empty_like(p.data) for p in self.parameters]

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def _gradient_into(self, parameter: Tensor, scratch: np.ndarray,
                       weight_decay: float) -> np.ndarray:
        """The effective gradient (with weight decay folded in), no copies.

        Returns ``parameter.grad`` directly when there is no weight decay;
        otherwise writes ``grad + wd * data`` into ``scratch`` and returns it.
        """
        if not weight_decay:
            return parameter.grad
        np.multiply(parameter.data, weight_decay, out=scratch)
        scratch += parameter.grad
        return scratch


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters, lr: float = 1e-2, momentum: float = 0.0,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity, scratch in zip(self.parameters, self._velocity,
                                                self._scratch):
            if parameter.grad is None:
                continue
            gradient = self._gradient_into(parameter, scratch, self.weight_decay)
            if self.momentum:
                velocity *= self.momentum
                velocity += gradient
                update = velocity
            else:
                update = gradient
            # parameter.data -= lr * update, without a temporary and without
            # rebinding .data (views held elsewhere keep seeing the update).
            np.multiply(update, -self.lr, out=scratch)
            parameter.data += scratch


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015), the paper's default."""

    def __init__(self, parameters, lr: float = 2e-3, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._first_moment = [np.zeros_like(p.data) for p in self.parameters]
        self._second_moment = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias_correction1 = 1.0 - self.beta1 ** self._step_count
        bias_correction2 = 1.0 - self.beta2 ** self._step_count
        inv_sqrt_correction2 = 1.0 / np.sqrt(bias_correction2)
        step_size = self.lr / bias_correction1
        for parameter, first, second, scratch in zip(
                self.parameters, self._first_moment, self._second_moment,
                self._scratch):
            if parameter.grad is None:
                continue
            gradient = self._gradient_into(parameter, scratch, self.weight_decay)
            # first = beta1 * first + (1 - beta1) * gradient, in place.  The
            # axpy form avoids a (1 - beta1) * gradient temporary.
            first *= self.beta1 / (1.0 - self.beta1)
            first += gradient
            first *= 1.0 - self.beta1
            # second = beta2 * second + (1 - beta2) * gradient**2, in place.
            second *= self.beta2 / (1.0 - self.beta2)
            np.multiply(gradient, gradient, out=scratch)
            second += scratch
            second *= 1.0 - self.beta2
            # data -= step_size * first / (sqrt(second) * inv_bc2 + eps).
            np.sqrt(second, out=scratch)
            scratch *= inv_sqrt_correction2
            scratch += self.eps
            np.divide(first, scratch, out=scratch)
            scratch *= -step_size
            parameter.data += scratch


def clip_grad_norm(parameters, max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Single pass, allocation-free: the squared norm is accumulated with
    ``np.dot`` on flattened views (no ``grad ** 2`` temporaries) and the
    rescale writes back into each gradient with ``out=``.  Returns the norm
    before clipping (useful for monitoring).
    """
    parameters = [p for p in parameters if p.grad is not None]
    total_sq = 0.0
    for parameter in parameters:
        flat = parameter.grad.ravel()
        total_sq += float(np.dot(flat, flat))
    total = float(np.sqrt(total_sq))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for parameter in parameters:
            np.multiply(parameter.grad, scale, out=parameter.grad)
    return total
