"""Pure-NumPy neural-network substrate used by the Duet reproduction.

This package replaces PyTorch (not available offline) with a small
reverse-mode autograd engine plus the layers, masked autoregressive
networks, losses, and optimisers that the paper's models require.
"""

from . import functional, inference, init
from .inference import ForwardPlan, PlanOptions, StageSpec, lower_module, masked_block_mass
from .layers import (
    LSTM,
    Embedding,
    Identity,
    Linear,
    LSTMCell,
    MaskedLinear,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from .made import MADE, ColumnBlockSpec
from .optim import SGD, Adam, Optimizer, clip_grad_norm
from .serialization import load_module, save_module
from .tensor import Tensor, is_grad_enabled, no_grad

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "inference",
    "init",
    "ForwardPlan",
    "PlanOptions",
    "StageSpec",
    "lower_module",
    "masked_block_mass",
    "Module",
    "Linear",
    "MaskedLinear",
    "Embedding",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "Sequential",
    "LSTMCell",
    "LSTM",
    "MADE",
    "ColumnBlockSpec",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "save_module",
    "load_module",
]
