"""Compiled grad-free inference: lowered forward plans over raw NumPy arrays.

The autograd :class:`~repro.nn.tensor.Tensor` tape is the right substrate for
training, but a serving hot path pays for it on every request: per-operator
Python dispatch, graph-bookkeeping closures, fresh ``float64`` temporaries,
and (for MADE) an ``in x out`` mask multiplication re-materialised on every
forward.  This module lowers a trained network *once* into a
:class:`ForwardPlan` — a flat list of fused linear(+activation) stages whose

* MADE masks are folded into the weight matrices at compile time
  (``W_folded = W * mask``),
* output buffers are preallocated and reused across micro-batches
  (``np.dot(..., out=...)`` writes straight into them), and
* arithmetic optionally runs in ``float32`` (half the memory traffic; the
  paper's models are trained well within ``float32`` head-room).

The companion :func:`masked_block_mass` kernel fuses Algorithm 3's zero-out:
it computes each constrained column's masked probability mass directly from
the raw logits (stable ``exp``-shift, one masked row-sum against the full
block sum) and skips unconstrained columns entirely — no dense softmax over
every column, no all-ones masks.

Plans are deliberately *not* thread-safe: buffers are shared across calls.
Wrap concurrent use in a lock (see :class:`repro.core.compiled.CompiledDuetModel`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "PlanOptions",
    "StageSpec",
    "ForwardPlan",
    "masked_block_mass",
    "stable_softmax",
    "stable_sigmoid",
    "lower_module",
]

_DTYPES = {"float32": np.float32, "float64": np.float64}
_ACTIVATIONS = ("relu", "tanh", "sigmoid")


@dataclass(frozen=True)
class PlanOptions:
    """Compile-time knobs of a lowered plan.

    ``dtype`` selects the arithmetic precision of every stage:

    * ``"float64"`` (default) — matches the tape path to ~1e-15 relative;
    * ``"float32"`` — halves memory traffic; selectivities agree with the
      tape path to roughly single-precision resolution (~1e-5 relative),
      which is far below the model's own estimation error.
    """

    dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.dtype not in _DTYPES:
            raise ValueError(f"unknown plan dtype {self.dtype!r}; "
                             f"choose from {tuple(_DTYPES)}")

    @property
    def numpy_dtype(self) -> type:
        return _DTYPES[self.dtype]

    # -- registry persistence -------------------------------------------
    def to_dict(self) -> dict:
        return {"dtype": self.dtype}

    @classmethod
    def from_dict(cls, payload: dict) -> "PlanOptions":
        return cls(**payload)


class StageSpec:
    """One fused stage: ``y = act(x @ weight + bias [+ skip])``.

    ``residual_from`` is the index of an earlier stage whose output is added
    *after* this stage's activation (``y = act(x @ W + b) + y_skip``, the
    ResMADE convention); ``None`` means no skip.  ``activation`` is one of
    ``"relu"``, ``"tanh"``, ``"sigmoid"`` or ``None`` (linear output stage).
    """

    __slots__ = ("weight", "bias", "activation", "residual_from")

    def __init__(self, weight: np.ndarray, bias: np.ndarray | None,
                 activation: str | None = None,
                 residual_from: int | None = None) -> None:
        if activation is not None and activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        self.weight = np.asarray(weight)
        self.bias = None if bias is None else np.asarray(bias)
        self.activation = activation
        self.residual_from = residual_from

    @property
    def in_features(self) -> int:
        return self.weight.shape[0]

    @property
    def out_features(self) -> int:
        return self.weight.shape[1]


def _apply_activation(buffer: np.ndarray, activation: str | None) -> None:
    """Apply ``activation`` to ``buffer`` in place (no temporaries)."""
    if activation is None:
        return
    if activation == "relu":
        np.maximum(buffer, 0.0, out=buffer)
    elif activation == "tanh":
        np.tanh(buffer, out=buffer)
    else:
        stable_sigmoid(buffer, out=buffer)


class ForwardPlan:
    """A lowered feed-forward network: fused stages over preallocated buffers.

    ``run`` returns a **view into an internal buffer** that is valid until
    the next ``run``/``reserve`` call; callers that need the result beyond
    that must copy.  Buffers grow to the largest batch seen and are then
    reused (a micro-batching server therefore allocates exactly once per
    stage for its whole lifetime).
    """

    def __init__(self, stages: Sequence[StageSpec],
                 options: PlanOptions | None = None) -> None:
        if not stages:
            raise ValueError("a plan needs at least one stage")
        self.options = options or PlanOptions()
        dtype = self.options.numpy_dtype
        self.stages: list[StageSpec] = []
        for index, stage in enumerate(stages):
            if stage.residual_from is not None and not 0 <= stage.residual_from < index:
                raise ValueError(f"stage {index} has residual_from="
                                 f"{stage.residual_from}, expected an earlier stage")
            # Always copy: the in-place optimisers mutate parameter arrays,
            # and a compiled plan must stay a snapshot of compile time.
            self.stages.append(StageSpec(
                np.array(stage.weight, dtype=dtype, order="C"),
                None if stage.bias is None
                else np.array(stage.bias, dtype=dtype, order="C"),
                stage.activation, stage.residual_from))
        widths = [s.in_features for s in self.stages] + [self.stages[-1].out_features]
        for left, right in zip(self.stages[:-1], self.stages[1:]):
            if left.out_features != right.in_features:
                raise ValueError(f"stage width mismatch: {left.out_features} "
                                 f"-> {right.in_features}")
        self.input_width = widths[0]
        self.output_width = widths[-1]
        self.dtype = dtype
        self._capacity = 0
        self._buffers: list[np.ndarray] = []
        self._input_buffer: np.ndarray | None = None
        # Per-stage profiling: cumulative wall time and invocation counts,
        # populated only while enable_profiling(True) is in effect (the
        # profiled loop reads the clock twice per stage, so it is opt-in).
        self._profile = False
        self.stage_seconds = [0.0] * len(self.stages)
        self.stage_calls = [0] * len(self.stages)

    # ------------------------------------------------------------------
    def reserve(self, batch: int) -> None:
        """Preallocate every stage buffer for ``batch`` rows."""
        if batch <= self._capacity:
            return
        self._buffers = [np.empty((batch, stage.out_features), dtype=self.dtype)
                         for stage in self.stages]
        self._input_buffer = np.empty((batch, self.input_width), dtype=self.dtype)
        self._capacity = batch

    @property
    def buffer_bytes(self) -> int:
        """Current footprint of the reusable buffers (monitoring aid)."""
        total = sum(buffer.nbytes for buffer in self._buffers)
        if self._input_buffer is not None:
            total += self._input_buffer.nbytes
        return total

    # ------------------------------------------------------------------
    # Per-stage profiling
    # ------------------------------------------------------------------
    @property
    def profiling(self) -> bool:
        return self._profile

    def enable_profiling(self, enabled: bool = True) -> None:
        """Toggle per-stage wall-time/invocation accounting on ``run``."""
        self._profile = enabled

    def reset_profile(self) -> None:
        self.stage_seconds = [0.0] * len(self.stages)
        self.stage_calls = [0] * len(self.stages)

    def profile_report(self) -> list[dict]:
        """Accumulated per-stage cost, in execution order.

        One entry per :class:`StageSpec`: shape, activation, invocation
        count, cumulative seconds.  All zeros until profiling is enabled.
        """
        return [
            {"stage": index,
             "in_features": stage.in_features,
             "out_features": stage.out_features,
             "activation": stage.activation,
             "residual_from": stage.residual_from,
             "calls": self.stage_calls[index],
             "seconds": self.stage_seconds[index]}
            for index, stage in enumerate(self.stages)
        ]

    # ------------------------------------------------------------------
    def run(self, inputs: np.ndarray) -> np.ndarray:
        """Execute the plan; returns a buffer view valid until the next call."""
        inputs = np.asarray(inputs)
        if inputs.ndim != 2 or inputs.shape[1] != self.input_width:
            raise ValueError(f"expected inputs of shape (batch, {self.input_width}), "
                             f"got {inputs.shape}")
        batch = inputs.shape[0]
        if batch == 0:
            return np.empty((0, self.output_width), dtype=self.dtype)
        self.reserve(batch)
        if inputs.dtype != self.dtype or not inputs.flags.c_contiguous:
            staged = self._input_buffer[:batch]
            np.copyto(staged, inputs, casting="same_kind" if
                      inputs.dtype.kind == "f" else "unsafe")
            current = staged
        else:
            current = inputs
        outputs: list[np.ndarray] = []
        profile = self._profile  # hoisted: the off path stays one bool test
        for index, stage in enumerate(self.stages):
            if profile:
                stage_started = time.perf_counter()
            out = self._buffers[index][:batch]
            np.dot(current, stage.weight, out=out)
            if stage.bias is not None:
                out += stage.bias
            _apply_activation(out, stage.activation)
            if stage.residual_from is not None:
                out += outputs[stage.residual_from]
            outputs.append(out)
            current = out
            if profile:
                self.stage_seconds[index] += time.perf_counter() - stage_started
                self.stage_calls[index] += 1
        return current

    __call__ = run


# ----------------------------------------------------------------------
# Fused masked selectivity (Algorithm 3's zero-out, straight from logits)
# ----------------------------------------------------------------------

def masked_block_mass(logits: np.ndarray,
                      blocks: Sequence[tuple[int, int]],
                      masks: Sequence[np.ndarray | None]) -> np.ndarray:
    """Product over constrained columns of the masked softmax mass.

    ``logits`` is the raw ``(batch, total_output)`` network output;
    ``blocks[i] = (start, end)`` is column ``i``'s logit slice; ``masks[i]``
    is either ``None`` (column unconstrained — skipped entirely, its factor
    is exactly 1) or the dense ``(batch, NDV_i)`` valid-value mask.

    For each constrained column the masked probability mass is computed
    directly from the logits::

        mass = sum_{v in mask} exp(l_v - m) / sum_v exp(l_v - m)

    All constrained blocks are gathered into one contiguous matrix and the
    per-block max/sum/masked-sum run as ``reduceat`` segments, so the kernel
    costs a fixed ~10 NumPy calls however many columns are constrained — no
    full softmax distribution is materialised and nothing at all is computed
    for unconstrained columns.  Returns a fresh ``(batch,)`` array.
    """
    logits = np.asarray(logits)
    batch = logits.shape[0]
    dtype = logits.dtype
    gathered = [(start, end, mask)
                for (start, end), mask in zip(blocks, masks) if mask is not None]
    if not gathered:
        return np.ones(batch, dtype=dtype)
    widths = np.array([end - start for start, end, _ in gathered])
    segments = np.zeros(len(gathered), dtype=np.intp)
    np.cumsum(widths[:-1], out=segments[1:])
    shifted = np.concatenate([logits[:, start:end] for start, end, _ in gathered],
                             axis=1)
    maxima = np.maximum.reduceat(shifted, segments, axis=1)
    shifted -= np.repeat(maxima, widths, axis=1)
    np.exp(shifted, out=shifted)
    denominator = np.add.reduceat(shifted, segments, axis=1)
    mask_matrix = (gathered[0][2] if len(gathered) == 1
                   else np.concatenate([mask for _, _, mask in gathered], axis=1))
    np.multiply(shifted, mask_matrix, out=shifted)
    numerator = np.add.reduceat(shifted, segments, axis=1)
    numerator /= denominator
    return numerator.prod(axis=1)


def stable_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Plain-NumPy stable softmax (compiled counterpart of ``F.softmax``)."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    np.exp(shifted, out=shifted)
    shifted /= shifted.sum(axis=axis, keepdims=True)
    return shifted


def stable_sigmoid(values: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Plain-NumPy clipped sigmoid matching ``Tensor.sigmoid``.

    Pass ``out=values`` (as the plan activations do) to run fully in place.
    """
    out = np.clip(values, -60.0, 60.0, out=out)
    np.negative(out, out=out)
    np.exp(out, out=out)
    out += 1.0
    np.reciprocal(out, out=out)
    return out


# ----------------------------------------------------------------------
# Lowering
# ----------------------------------------------------------------------

def lower_module(module, options: PlanOptions | None = None) -> ForwardPlan:
    """Lower a module that provides ``export_stage_specs`` into a plan.

    ``Linear``/``MaskedLinear``, ``Sequential`` chains of linear layers and
    activations, and ``MADE`` all export stage specs (masks folded, residual
    links resolved); anything else raises ``TypeError``.
    """
    export = getattr(module, "export_stage_specs", None)
    if export is None:
        raise TypeError(f"{type(module).__name__} cannot be lowered: "
                        f"it does not export stage specs")
    return ForwardPlan(export(), options)
