"""Numerically stable functional operations used by the models.

These mirror the subset of ``torch.nn.functional`` that the Duet paper's
models rely on: softmax / log-softmax, cross-entropy with integer targets,
the Gumbel-Softmax relaxation used by the UAE baseline, and the Q-Error
losses used for hybrid training.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "binary_cross_entropy",
    "gumbel_softmax",
    "qerror",
    "mapped_qerror_loss",
]


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis`` computed in a numerically stable way.

    The max subtraction uses a detached constant; subtracting a constant does
    not change the softmax, so gradients remain exact.
    """
    shift = Tensor(logits.data.max(axis=axis, keepdims=True))
    shifted = logits - shift
    log_norm = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - log_norm


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis``."""
    return log_softmax(logits, axis=axis).exp()


def nll_loss(log_probs: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood for integer class targets.

    ``log_probs`` has shape ``(batch, num_classes)`` and ``targets`` holds an
    integer class index per row.
    """
    targets = np.asarray(targets, dtype=np.int64)
    batch = np.arange(log_probs.shape[0])
    picked = log_probs[batch, targets]
    loss = -picked
    return _reduce(loss, reduction)


def cross_entropy(logits: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Cross-entropy between raw ``logits`` and integer class ``targets``."""
    return nll_loss(log_softmax(logits, axis=-1), targets, reduction=reduction)


def mse_loss(prediction: Tensor, target: Tensor | np.ndarray, reduction: str = "mean") -> Tensor:
    """Mean squared error."""
    target = Tensor.ensure(target)
    diff = prediction - target
    return _reduce(diff * diff, reduction)


def binary_cross_entropy(probabilities: Tensor, target: Tensor | np.ndarray,
                         epsilon: float = 1e-12, reduction: str = "mean") -> Tensor:
    """Binary cross-entropy on probabilities in ``(0, 1)``."""
    target = Tensor.ensure(target)
    clipped = probabilities.clip(epsilon, 1.0 - epsilon)
    loss = -(target * clipped.log() + (1.0 - target) * (1.0 - clipped).log())
    return _reduce(loss, reduction)


def gumbel_softmax(logits: Tensor, temperature: float = 1.0,
                   rng: np.random.Generator | None = None) -> Tensor:
    """Differentiable sample from a categorical distribution (UAE baseline).

    This is the Gumbel-Softmax trick: perturb the logits with Gumbel noise
    and apply a temperature-scaled softmax.  Gradients flow through the
    softmax, which is what lets UAE backpropagate through its progressive
    sampling.
    """
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    rng = rng or np.random.default_rng()
    uniform = rng.uniform(low=np.finfo(np.float64).tiny, high=1.0, size=logits.shape)
    gumbel_noise = Tensor(-np.log(-np.log(uniform)))
    return softmax((logits + gumbel_noise) / temperature, axis=-1)


def qerror(estimate: Tensor, actual: Tensor | np.ndarray, floor: float = 1.0) -> Tensor:
    """Differentiable Q-Error ``max(est, act) / min(est, act)``.

    Both estimate and actual are clamped below by ``floor`` (one tuple), the
    convention used by the paper and by UAE, so that empty results do not
    produce infinite errors.
    """
    actual = Tensor.ensure(actual)
    est = estimate.clip(minimum=floor)
    act = actual.clip(minimum=floor)
    ratio = est / act
    inverse = act / est
    # max(a, b) == a * 1[a >= b] + b * 1[a < b]; the indicator is a constant
    # w.r.t. the gradient so it is computed on detached data.
    indicator = Tensor((ratio.data >= inverse.data).astype(np.float64))
    return ratio * indicator + inverse * (1.0 - indicator)


def mapped_qerror_loss(estimate: Tensor, actual: Tensor | np.ndarray,
                       floor: float = 1.0) -> Tensor:
    """The paper's hybrid-training query loss ``log2(QError + 1)``.

    Mapping through ``log2(x + 1)`` keeps ``L_query`` on the same order of
    magnitude as ``L_data`` and prevents gradient explosions early in
    training (Figure 3 of the paper).
    """
    q = qerror(estimate, actual, floor=floor)
    return (q + 1.0).log() / float(np.log(2.0))


def _reduce(values: Tensor, reduction: str) -> Tensor:
    if reduction == "mean":
        return values.mean()
    if reduction == "sum":
        return values.sum()
    if reduction == "none":
        return values
    raise ValueError(f"unknown reduction: {reduction!r}")
