"""Saving and loading model parameters with plain ``numpy.savez`` archives."""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from .layers import Module

__all__ = ["npz_path", "save_module", "load_module"]


def npz_path(path: str | Path) -> Path:
    """The file ``numpy.savez`` will actually write for ``path``.

    numpy appends ``".npz"`` to any filename not already ending in it; every
    archive writer must mirror that rule to return a path that exists.
    """
    path = Path(path)
    return path if path.name.endswith(".npz") else path.with_name(path.name + ".npz")


def save_module(module: Module, path: str | Path, metadata: dict | None = None) -> Path:
    """Serialise ``module``'s parameters (and optional JSON metadata) to ``path``.

    The file is a standard ``.npz`` archive; metadata is stored under the
    reserved key ``__metadata__`` as a JSON string.

    The write is atomic: the archive is assembled under a scratch name in
    the same directory and published with ``os.replace``, so a crash
    mid-save leaves either the previous checkpoint or none — never a
    truncated archive under the final name.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    payload = {key.replace(".", "/"): value for key, value in state.items()}
    payload["__metadata__"] = np.array(json.dumps(metadata or {}))
    target = npz_path(path)
    scratch = target.with_name(target.name + ".tmp.npz")
    try:
        np.savez(scratch, **payload)
        os.replace(scratch, target)
    finally:
        scratch.unlink(missing_ok=True)
    return target


def load_module(module: Module, path: str | Path) -> dict:
    """Load parameters saved by :func:`save_module` into ``module``.

    Returns the metadata dictionary stored alongside the parameters.
    """
    path = Path(path)
    if not path.exists() and npz_path(path).exists():
        path = npz_path(path)
    with np.load(path, allow_pickle=False) as archive:
        metadata = json.loads(str(archive["__metadata__"]))
        state = {key.replace("/", "."): archive[key]
                 for key in archive.files if key != "__metadata__"}
    module.load_state_dict(state)
    return metadata
