"""A small reverse-mode automatic differentiation engine on top of NumPy.

The Duet paper builds its models with PyTorch.  PyTorch is not available in
this offline environment, so this module provides the minimal but complete
autograd substrate the reproduction needs: a :class:`Tensor` wrapping a NumPy
array, a tape of parent links, and a topological-order backward pass.

The design goals are explicitness and testability rather than raw speed.
Every operator used by the models in this repository (MADE, ResMADE, MLP
MPSNs, LSTM MPSNs, MSCN, UAE's Gumbel-Softmax relaxation) is implemented
here with full broadcasting support.
"""

from __future__ import annotations

import threading
from typing import Callable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]


class _GradMode(threading.local):
    """Per-thread autograd switch.

    Thread-local so concurrent inference (the serving layer runs
    ``no_grad`` blocks from many worker threads at once) cannot race on a
    shared flag and leave gradient tracking permanently disabled.
    """

    def __init__(self) -> None:
        self.enabled = True


_grad_mode = _GradMode()


class no_grad:
    """Context manager that disables gradient tracking.

    Mirrors ``torch.no_grad()``: operations executed inside the block build
    no autograd graph, which keeps inference cheap and deterministic.  The
    switch is per-thread, like PyTorch's.
    """

    def __enter__(self) -> "no_grad":
        self._previous = _grad_mode.enabled
        _grad_mode.enabled = False
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        _grad_mode.enabled = self._previous


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded for autograd."""
    return _grad_mode.enabled


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape`` after a broadcast op.

    NumPy broadcasting can add leading dimensions and stretch size-1 axes;
    the corresponding gradient must be summed back over those axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over extra leading dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _as_array(value) -> np.ndarray:
    if isinstance(value, Tensor):
        raise TypeError("expected raw data, got Tensor")
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """An n-dimensional array with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
        name: str = "",
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _grad_mode.enabled
        self.grad: np.ndarray | None = None
        self._parents = _parents if self.requires_grad or _parents else ()
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def ensure(value) -> "Tensor":
        """Coerce ``value`` to a Tensor (constants get no gradient)."""
        if isinstance(value, Tensor):
            return value
        return Tensor(np.asarray(value, dtype=np.float64))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying NumPy array (no copy)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError("item() requires a tensor with exactly one element")
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """Return a new Tensor sharing data but cut off from the graph."""
        return Tensor(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{grad_flag})"

    # ------------------------------------------------------------------
    # Graph construction helper
    # ------------------------------------------------------------------
    def _make(
        self,
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _grad_mode.enabled and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        return Tensor(data, requires_grad=True, _parents=parents, _backward=backward)

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = Tensor.ensure(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-Tensor.ensure(other))

    def __rsub__(self, other) -> "Tensor":
        return Tensor.ensure(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = Tensor.ensure(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = Tensor.ensure(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data ** 2))

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor.ensure(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * (self.data ** (exponent - 1)))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = Tensor.ensure(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if grad.ndim == 1
                                     else grad[..., None] * other.data)
                else:
                    self._accumulate(grad @ other.data.swapaxes(-1, -2))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad))
                else:
                    other._accumulate(self.data.swapaxes(-1, -2) @ grad)

        return self._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data ** 2))

        return self._make(out_data, (self,), backward)

    def clip(self, minimum: float | None = None, maximum: float | None = None) -> "Tensor":
        out_data = np.clip(self.data, minimum, maximum)
        pass_through = np.ones_like(self.data)
        if minimum is not None:
            pass_through = pass_through * (self.data >= minimum)
        if maximum is not None:
            pass_through = pass_through * (self.data <= maximum)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * pass_through)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad)
            if axis is None:
                expanded = np.broadcast_to(grad, self.data.shape)
            else:
                if not keepdims:
                    grad = np.expand_dims(grad, axis=axis)
                expanded = np.broadcast_to(grad, self.data.shape)
            self._accumulate(expanded)

        return self._make(out_data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad)
            if axis is None:
                mask = (self.data == self.data.max()).astype(np.float64)
                mask /= mask.sum()
                self._accumulate(grad * mask)
            else:
                expanded_max = self.data.max(axis=axis, keepdims=True)
                mask = (self.data == expanded_max).astype(np.float64)
                mask /= mask.sum(axis=axis, keepdims=True)
                g = grad if keepdims else np.expand_dims(grad, axis=axis)
                self._accumulate(mask * g)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.asarray(grad).reshape(original_shape))

        return self._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.asarray(grad).transpose(inverse))

        return self._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make(out_data, (self,), backward)

    @staticmethod
    def concat(tensors: Sequence["Tensor"], axis: int = -1) -> "Tensor":
        tensors = [Tensor.ensure(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad)
            for tensor, start, end in zip(tensors, offsets[:-1], offsets[1:]):
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, end)
                tensor._accumulate(grad[tuple(slicer)])

        parents = tuple(tensors)
        requires = _grad_mode.enabled and any(t.requires_grad for t in tensors)
        if not requires:
            return Tensor(out_data)
        return Tensor(out_data, requires_grad=True, _parents=parents, _backward=backward)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor.ensure(t) for t in tensors]
        out_data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad)
            pieces = np.split(grad, len(tensors), axis=axis)
            for tensor, piece in zip(tensors, pieces):
                tensor._accumulate(np.squeeze(piece, axis=axis))

        parents = tuple(tensors)
        requires = _grad_mode.enabled and any(t.requires_grad for t in tensors)
        if not requires:
            return Tensor(out_data)
        return Tensor(out_data, requires_grad=True, _parents=parents, _backward=backward)

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (appropriate for scalar losses).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)

        ordering: list[Tensor] = []
        visited: set[int] = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, False)]
            while stack:
                current, processed = stack.pop()
                if processed:
                    ordering.append(current)
                    continue
                if id(current) in visited:
                    continue
                visited.add(id(current))
                stack.append((current, True))
                for parent in current._parents:
                    if id(parent) not in visited:
                        stack.append((parent, False))

        visit(self)
        self._accumulate(grad)
        for node in reversed(ordering):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None
