"""Weight initialisation helpers (Kaiming / Xavier / uniform)."""

from __future__ import annotations

import numpy as np

__all__ = ["kaiming_uniform", "xavier_uniform", "uniform", "zeros"]


def kaiming_uniform(fan_in: int, fan_out: int,
                    rng: np.random.Generator | None = None) -> np.ndarray:
    """Kaiming/He uniform initialisation suited to ReLU networks."""
    rng = rng or np.random.default_rng()
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


def xavier_uniform(fan_in: int, fan_out: int,
                   rng: np.random.Generator | None = None) -> np.ndarray:
    """Xavier/Glorot uniform initialisation suited to tanh/sigmoid networks."""
    rng = rng or np.random.default_rng()
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


def uniform(shape: tuple[int, ...], bound: float,
            rng: np.random.Generator | None = None) -> np.ndarray:
    """Uniform initialisation in ``[-bound, bound]``."""
    rng = rng or np.random.default_rng()
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape)
