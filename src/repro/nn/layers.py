"""Neural-network layers built on the autograd :class:`~repro.nn.tensor.Tensor`.

Provides the building blocks the Duet reproduction needs: plain and masked
linear layers (masked linear layers are the core of MADE), embeddings for
large-domain categorical predicate values, a small LSTM for the RNN variant
of the Multiple Predicates Supporting Network, and a ``Module`` base class
with parameter registration and state-dict (de)serialisation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from . import init
from .tensor import Tensor

__all__ = [
    "Module",
    "Linear",
    "MaskedLinear",
    "Embedding",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "Sequential",
    "LSTMCell",
    "LSTM",
]


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Tensor` parameters and child ``Module``s as
    attributes; they are discovered automatically for ``parameters()`` and
    ``state_dict()``.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Tensor]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # -- attribute registration ---------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # -- parameter access ----------------------------------------------
    def parameters(self) -> Iterator[Tensor]:
        """Yield all trainable parameters, depth first."""
        yield from self._parameters.values()
        for module in self._modules.values():
            yield from module.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        for name, parameter in self._parameters.items():
            yield prefix + name, parameter
        for child_name, module in self._modules.items():
            yield from module.named_parameters(prefix + child_name + ".")

    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return sum(int(p.size) for p in self.parameters())

    def size_bytes(self, bytes_per_parameter: int = 4) -> int:
        """Model size assuming float32 storage, used for the paper's size column."""
        return self.num_parameters() * bytes_per_parameter

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    # -- train / eval mode ----------------------------------------------
    def train(self) -> "Module":
        self.training = True
        for module in self._modules.values():
            module.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for module in self._modules.values():
            module.eval()
        return self

    # -- serialisation ---------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, parameter in own.items():
            loaded = np.asarray(state[name], dtype=np.float64)
            if loaded.shape != parameter.data.shape:
                raise ValueError(f"shape mismatch for {name}: "
                                 f"{loaded.shape} vs {parameter.data.shape}")
            parameter.data = loaded.copy()

    # -- call protocol ----------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Affine transform ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(init.kaiming_uniform(in_features, out_features, rng=rng),
                             requires_grad=True)
        if bias:
            self.bias = Tensor(np.zeros(out_features), requires_grad=True)
        else:
            self.bias = None

    def forward(self, inputs: Tensor) -> Tensor:
        output = inputs @ self.weight
        if self.bias is not None:
            output = output + self.bias
        return output

    # -- compiled-inference export --------------------------------------
    def export_weights(self) -> tuple[np.ndarray, np.ndarray | None]:
        """The effective ``(weight, bias)`` of this layer as raw arrays.

        Subclasses with structural constraints (masks) fold them in here,
        so compiled plans never re-apply them per forward.
        """
        return self.weight.data, None if self.bias is None else self.bias.data

    def export_stage_specs(self) -> list:
        from .inference import StageSpec

        weight, bias = self.export_weights()
        return [StageSpec(weight, bias)]


class MaskedLinear(Linear):
    """Linear layer whose weight is elementwise-multiplied by a fixed mask.

    This is the mechanism MADE uses to enforce the autoregressive property:
    the mask zeroes out connections that would leak information from later
    columns into earlier conditionals.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__(in_features, out_features, bias=bias, rng=rng)
        self.mask = np.ones((in_features, out_features))

    def set_mask(self, mask: np.ndarray) -> None:
        mask = np.asarray(mask, dtype=np.float64)
        if mask.shape != (self.in_features, self.out_features):
            raise ValueError(f"mask shape {mask.shape} does not match weight shape "
                             f"{(self.in_features, self.out_features)}")
        self.mask = mask

    def forward(self, inputs: Tensor) -> Tensor:
        masked_weight = self.weight * Tensor(self.mask)
        output = inputs @ masked_weight
        if self.bias is not None:
            output = output + self.bias
        return output

    def export_weights(self) -> tuple[np.ndarray, np.ndarray | None]:
        """Weight with the autoregressive mask folded in once."""
        return self.weight.data * self.mask, None if self.bias is None else self.bias.data


class Embedding(Module):
    """Lookup table mapping integer codes to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        scale = 1.0 / np.sqrt(embedding_dim)
        self.weight = Tensor(rng.normal(0.0, scale, size=(num_embeddings, embedding_dim)),
                             requires_grad=True)

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.min(initial=0) < 0 or indices.max(initial=0) >= self.num_embeddings:
            raise IndexError("embedding index out of range")
        return self.weight[indices]


class ReLU(Module):
    """Rectified linear unit."""

    activation_name = "relu"

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.relu()


class Tanh(Module):
    """Hyperbolic tangent activation."""

    activation_name = "tanh"

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.tanh()


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    activation_name = "sigmoid"

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.sigmoid()


class Identity(Module):
    """No-op layer, useful as a placeholder."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._layers: list[Module] = []
        for index, module in enumerate(modules):
            setattr(self, f"layer{index}", module)
            self._layers.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)

    def forward(self, inputs: Tensor) -> Tensor:
        output = inputs
        for layer in self._layers:
            output = layer(output)
        return output

    def export_stage_specs(self) -> list:
        """Fuse ``Linear -> activation`` pairs into compiled stage specs."""
        from .inference import StageSpec

        specs: list[StageSpec] = []
        for layer in self._layers:
            if isinstance(layer, Identity):
                continue
            activation = getattr(layer, "activation_name", None)
            if activation is not None:
                if not specs or specs[-1].activation is not None:
                    raise TypeError("activation without a preceding linear stage "
                                    "cannot be lowered")
                specs[-1].activation = activation
                continue
            export = getattr(layer, "export_weights", None)
            if export is None:
                raise TypeError(f"{type(layer).__name__} cannot be lowered into "
                                f"a fused stage")
            weight, bias = export()
            specs.append(StageSpec(weight, bias))
        return specs


class LSTMCell(Module):
    """A single LSTM cell (used by the RNN MPSN variant)."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Tensor(init.xavier_uniform(input_size, 4 * hidden_size, rng=rng),
                                requires_grad=True)
        self.weight_hh = Tensor(init.xavier_uniform(hidden_size, 4 * hidden_size, rng=rng),
                                requires_grad=True)
        self.bias = Tensor(np.zeros(4 * hidden_size), requires_grad=True)

    def forward(self, inputs: Tensor, state: tuple[Tensor, Tensor] | None = None
                ) -> tuple[Tensor, Tensor]:
        batch = inputs.shape[0]
        if state is None:
            hidden = Tensor(np.zeros((batch, self.hidden_size)))
            cell = Tensor(np.zeros((batch, self.hidden_size)))
        else:
            hidden, cell = state
        gates = inputs @ self.weight_ih + hidden @ self.weight_hh + self.bias
        h = self.hidden_size
        input_gate = gates[:, 0:h].sigmoid()
        forget_gate = gates[:, h:2 * h].sigmoid()
        candidate = gates[:, 2 * h:3 * h].tanh()
        output_gate = gates[:, 3 * h:4 * h].sigmoid()
        new_cell = forget_gate * cell + input_gate * candidate
        new_hidden = output_gate * new_cell.tanh()
        return new_hidden, new_cell


class LSTM(Module):
    """Multi-layer LSTM that consumes a sequence and returns per-step outputs."""

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self._cells: list[LSTMCell] = []
        for layer in range(num_layers):
            cell = LSTMCell(input_size if layer == 0 else hidden_size, hidden_size, rng=rng)
            setattr(self, f"cell{layer}", cell)
            self._cells.append(cell)

    def forward(self, sequence: list[Tensor]) -> list[Tensor]:
        """Run the LSTM over ``sequence`` (a list of ``(batch, input)`` tensors)."""
        outputs: list[Tensor] = []
        states: list[tuple[Tensor, Tensor] | None] = [None] * self.num_layers
        for step_input in sequence:
            current = step_input
            for layer, cell in enumerate(self._cells):
                hidden, cell_state = cell(current, states[layer])
                states[layer] = (hidden, cell_state)
                current = hidden
            outputs.append(current)
        return outputs
