"""Disjunctive (OR) query support via inclusion-exclusion.

The paper (§III, "Supported Queries") notes that a disjunction between
predicates can be estimated by converting it into conjunctions.  This module
implements that conversion for any :class:`CardinalityEstimator`: a query in
disjunctive normal form — an OR over conjunctive queries — is estimated with
the inclusion-exclusion principle,

``card(q1 OR q2 OR ...) = sum card(qi) - sum card(qi AND qj) + ...``

where each intersection is itself a conjunctive query (the concatenation of
the disjuncts' predicates) and is estimated by the underlying estimator.
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

from ..workload.query import Query
from .interface import CardinalityEstimator

__all__ = ["conjoin", "estimate_disjunction"]


def conjoin(*queries: Query) -> Query:
    """Conjunction of several conjunctive queries (concatenate predicates)."""
    predicates = []
    for query in queries:
        predicates.extend(query.predicates)
    return Query(predicates)


def estimate_disjunction(estimator: CardinalityEstimator,
                         disjuncts: Sequence[Query],
                         max_terms: int | None = None) -> float:
    """Estimate ``card(d1 OR d2 OR ...)`` with inclusion-exclusion.

    Parameters
    ----------
    estimator:
        Any trained cardinality estimator (Duet, Naru, Indep, ...).
    disjuncts:
        The conjunctive branches of the DNF query.  Each must be a valid
        query for the estimator's table.
    max_terms:
        Optional cap on the inclusion-exclusion order.  The exact expansion
        needs ``2^k - 1`` estimates for ``k`` disjuncts; capping at 2 gives
        the classic Bonferroni-style upper/lower sandwich truncated at
        pairwise intersections, which is usually accurate enough and keeps
        the cost quadratic.

    Returns
    -------
    The estimated cardinality, clamped to ``[0, |T|]``.

    Notes
    -----
    Intersection terms concatenate the disjuncts' predicates, so two
    disjuncts constraining the same column produce a query with several
    predicates on that column.  A Duet model must therefore be built with
    ``multi_predicate=True`` (MPSN support) when the disjuncts overlap on
    columns; estimators without that restriction (Indep, Sampling, Naru,
    DeepDB, ...) accept any combination.
    """
    disjuncts = list(disjuncts)
    if not disjuncts:
        raise ValueError("at least one disjunct is required")
    if len(disjuncts) == 1:
        return float(estimator.estimate(disjuncts[0]))

    order_cap = len(disjuncts) if max_terms is None else max(1, min(max_terms, len(disjuncts)))
    total = 0.0
    for order in range(1, order_cap + 1):
        sign = 1.0 if order % 2 == 1 else -1.0
        for combo in combinations(disjuncts, order):
            intersection = conjoin(*combo) if order > 1 else combo[0]
            total += sign * float(estimator.estimate(intersection))
    return float(min(max(total, 0.0), estimator.table.num_rows))
