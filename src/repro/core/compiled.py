"""Compiled Duet inference: the model lowered into grad-free NumPy plans.

:class:`CompiledDuetModel` snapshots a trained :class:`~repro.core.DuetModel`
into pure-array form:

* the MADE is lowered into one :class:`~repro.nn.ForwardPlan` (autoregressive
  masks folded into the weights, fused linear+ReLU stages, reusable ``out=``
  buffers),
* MLP MPSNs are merged into the block-diagonal accelerator (§IV-F), which is
  itself a plan sharing the same dtype,
* embedding tables become plain gather arrays, and
* Algorithm 3's zero-out runs through the fused
  :func:`~repro.nn.masked_block_mass` kernel — constrained columns get their
  masked probability mass straight from the logits, unconstrained columns
  are skipped entirely.

Weights are copied at compile time: training the model afterwards does not
change a plan — call :meth:`repro.core.DuetEstimator.compile` again.

Plans reuse buffers across calls and are therefore not thread-safe; the
public entry points serialise on :attr:`CompiledDuetModel.lock` (the serving
layer funnels all forward passes through one micro-batcher thread anyway, so
the lock is uncontended there).
"""

from __future__ import annotations

import threading
import time

import numpy as np

from ..nn import ForwardPlan, PlanOptions, no_grad
from ..nn.inference import masked_block_mass
from ..nn.tensor import Tensor
from .encoding import NUM_OPERATORS, OPERATOR_FEATURE_WIDTH
from .model import DuetModel
from .mpsn import MLPMPSN, MergedMLPInference, build_mpsn

__all__ = ["CompiledDuetModel"]


class CompiledDuetModel:
    """A lowered, sampling-free, grad-free forward pass for one Duet model."""

    def __init__(self, model: DuetModel, options: PlanOptions | None = None) -> None:
        self.model = model
        self.options = options or PlanOptions()
        self.dtype = self.options.numpy_dtype
        self.codec = model.codec
        self.num_columns = model.num_columns
        self.blocks = model.made.output_block_slices()
        self.made_plan: ForwardPlan = ForwardPlan(model.made.export_stage_specs(),
                                                  self.options)
        # Embedding tables as plain gather arrays (weights snapshotted).
        self._embeddings = {
            column_index: embedding.weight.data.astype(self.dtype, copy=True)
            for column_index, embedding in model._embedding_columns.items()
        }
        # MPSNs: the MLP variant merges into one block-diagonal plan; the
        # RNN/recursive variants have data-dependent recurrences that do not
        # lower to dense stages, so they fall back to tape modules under
        # ``no_grad`` (still batched, just not buffer-fused).  The fallback
        # modules are *clones* so the weight-snapshot contract holds for
        # every variant.
        self._merged_mpsn: MergedMLPInference | None = None
        self._fallback_mpsns = None
        if model.config.multi_predicate:
            if all(isinstance(mpsn, MLPMPSN) for mpsn in model._mpsns):
                self._merged_mpsn = MergedMLPInference(model._mpsns, self.options)
            else:
                self._fallback_mpsns = []
                for encoder, mpsn in zip(self.codec.encoders, model._mpsns):
                    clone = build_mpsn(encoder.predicate_width,
                                       encoder.predicate_width, model.config.mpsn)
                    clone.load_state_dict(mpsn.state_dict())
                    clone.eval()
                    self._fallback_mpsns.append(clone)
        self._fast_encode = not self._embeddings and not model.config.multi_predicate
        if self._fast_encode:
            self._build_encode_tables()
        # Phase profiling (opt-in): cumulative seconds/calls of the encode
        # gather, the lowered MADE forward, and the fused zero-out mask.
        self._profile = False
        self.phase_seconds = {"encode": 0.0, "forward": 0.0, "mask": 0.0}
        self.phase_calls = {"encode": 0, "forward": 0, "mask": 0}
        self.lock = threading.Lock()

    def _build_encode_tables(self) -> None:
        """Precompute gather tables for the single-predicate encode path.

        Operator features become one ``(NUM_OPERATORS + 1, width)`` lookup
        (row 0 = wildcard, all zeros) and each column's value encoding
        becomes a ``(NDV + 1, width)`` lookup whose last row is the wildcard
        zeros, so encoding a batch is one table gather per feature group
        instead of re-deriving presence bits and binary digits every call.
        """
        # Tables and buffer live in the plan dtype: the gathered encoding
        # feeds the plan input directly, with no second full-batch cast
        # (one-hot bits and presence flags are exact in float32).
        self._op_table = np.zeros((NUM_OPERATORS + 1, OPERATOR_FEATURE_WIDTH),
                                  dtype=self.dtype)
        self._op_table[1:, 0] = 1.0
        self._op_table[1:, 1:] = np.eye(NUM_OPERATORS)
        self._value_tables: list[np.ndarray] = []
        op_destinations: list[np.ndarray] = []
        self._value_slices: list[tuple[int, int]] = []
        offset = 0
        for encoder in self.codec.encoders:
            op_destinations.append(np.arange(offset, offset + OPERATOR_FEATURE_WIDTH))
            value_start = offset + OPERATOR_FEATURE_WIDTH
            self._value_slices.append((value_start, value_start + encoder.value_width))
            codes = np.arange(encoder.num_distinct)
            table = encoder.encode_value_features(codes)
            self._value_tables.append(np.vstack(
                [table, np.zeros((1, encoder.value_width))]).astype(self.dtype))
            offset += encoder.predicate_width
        self._op_destinations = np.concatenate(op_destinations)
        self._encode_buffer = np.empty((0, offset), dtype=self.dtype)

    # ------------------------------------------------------------------
    @property
    def buffer_bytes(self) -> int:
        """Footprint of the reusable plan buffers (monitoring aid)."""
        total = self.made_plan.buffer_bytes
        if self._merged_mpsn is not None:
            total += self._merged_mpsn.plan.buffer_bytes
        return total

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------
    @property
    def profiling(self) -> bool:
        return self._profile

    def enable_profiling(self, enabled: bool = True) -> None:
        """Toggle phase timing here and per-stage timing on the plans."""
        self._profile = enabled
        self.made_plan.enable_profiling(enabled)
        if self._merged_mpsn is not None:
            self._merged_mpsn.plan.enable_profiling(enabled)

    def reset_profile(self) -> None:
        self.phase_seconds = {"encode": 0.0, "forward": 0.0, "mask": 0.0}
        self.phase_calls = {"encode": 0, "forward": 0, "mask": 0}
        self.made_plan.reset_profile()
        if self._merged_mpsn is not None:
            self._merged_mpsn.plan.reset_profile()

    def profile_report(self) -> dict:
        """Phase totals plus the MADE plan's per-stage attribution."""
        report = {
            "phases": {name: {"calls": self.phase_calls[name],
                              "seconds": self.phase_seconds[name]}
                       for name in self.phase_seconds},
            "made_stages": self.made_plan.profile_report(),
        }
        if self._merged_mpsn is not None:
            report["mpsn_stages"] = self._merged_mpsn.plan.profile_report()
        return report

    # ------------------------------------------------------------------
    # Encoding (mirror of DuetModel.encode_batch, arrays only)
    # ------------------------------------------------------------------
    def encode(self, values: np.ndarray, ops: np.ndarray) -> np.ndarray:
        """Encode code-space predicate arrays into the MADE input matrix.

        Caller must hold :attr:`lock` (the merged-MPSN stage reuses plan
        buffers).  Accepts the same ``(batch, columns[, slots])`` arrays as
        :meth:`DuetModel.encode_batch`.
        """
        if not self._profile:
            return self._encode(values, ops)
        started = time.perf_counter()
        try:
            return self._encode(values, ops)
        finally:
            self.phase_seconds["encode"] += time.perf_counter() - started
            self.phase_calls["encode"] += 1

    def _encode(self, values: np.ndarray, ops: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        ops = np.asarray(ops, dtype=np.int64)
        if values.ndim == 2:
            values = values[:, :, None]
            ops = ops[:, :, None]
        batch = values.shape[0]
        config = self.model.config

        if self._fast_encode:
            if self._encode_buffer.shape[0] < batch:
                self._encode_buffer = np.empty((batch, self._encode_buffer.shape[1]),
                                               dtype=self.dtype)
            buffer = self._encode_buffer[:batch]
            first_ops = ops[:, :, 0]
            first_values = values[:, :, 0]
            operator_features = self._op_table[first_ops + 1]
            buffer[:, self._op_destinations] = operator_features.reshape(batch, -1)
            for column_index, (table, (start, stop)) in enumerate(
                    zip(self._value_tables, self._value_slices)):
                codes = first_values[:, column_index]
                wildcard_row = table.shape[0] - 1
                buffer[:, start:stop] = table[
                    np.where(codes >= 0, codes, wildcard_row)]
            return buffer

        per_column: list[np.ndarray] = []
        presences: list[np.ndarray] = []
        for encoder in self.codec.encoders:
            column_index = encoder.column_index
            column_values = values[:, column_index, :]
            column_ops = ops[:, column_index, :]
            presence = (column_ops >= 0).astype(np.float64)
            op_features = encoder.encode_operator_features(column_ops)
            if column_index in self._embeddings:
                table = self._embeddings[column_index]
                clipped = np.where(column_values >= 0, column_values, 0)
                looked_up = table[clipped.reshape(-1)].reshape(
                    batch, column_values.shape[1], config.embedding_dim)
                value_features = looked_up * presence[..., None]
            else:
                value_features = encoder.encode_value_features(column_values)
            per_column.append(np.concatenate([op_features, value_features], axis=-1))
            presences.append(presence)

        if not config.multi_predicate:
            return np.concatenate([block[:, 0, :] for block in per_column], axis=-1)
        if self._merged_mpsn is not None:
            embedded = self._merged_mpsn.forward(per_column, presences)
            return np.concatenate(embedded, axis=-1)
        with no_grad():
            embedded = [
                mpsn(Tensor(encoding), presence).numpy()
                for mpsn, encoding, presence in zip(self._fallback_mpsns,
                                                    per_column, presences)
            ]
        return np.concatenate(embedded, axis=-1)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def logits(self, encoded: np.ndarray) -> np.ndarray:
        """Run the lowered MADE; returns a buffer view (caller holds lock)."""
        if not self._profile:
            return self.made_plan.run(encoded)
        started = time.perf_counter()
        try:
            return self.made_plan.run(encoded)
        finally:
            self.phase_seconds["forward"] += time.perf_counter() - started
            self.phase_calls["forward"] += 1

    def selectivity_from_logits(self, logits: np.ndarray,
                                masks: list[np.ndarray | None]) -> np.ndarray:
        """Fused zero-out product; returns a fresh ``(batch,)`` float64 array."""
        if not self._profile:
            mass = masked_block_mass(logits, self.blocks, masks)
            return np.asarray(mass, dtype=np.float64)
        started = time.perf_counter()
        try:
            mass = masked_block_mass(logits, self.blocks, masks)
            return np.asarray(mass, dtype=np.float64)
        finally:
            self.phase_seconds["mask"] += time.perf_counter() - started
            self.phase_calls["mask"] += 1

    def selectivities(self, values: np.ndarray, ops: np.ndarray,
                      masks: list[np.ndarray | None]) -> np.ndarray:
        """End-to-end compiled Algorithm 3 (thread-safe convenience)."""
        with self.lock:
            encoded = self.encode(values, ops)
            return self.selectivity_from_logits(self.logits(encoded), masks)
