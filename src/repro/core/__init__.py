"""Duet core: the paper's primary contribution.

Public entry points:

* :class:`DuetConfig` / :func:`dmv_config` / :func:`small_table_config` —
  model and training configuration;
* :class:`DuetModel` — the predicate-conditioned autoregressive model;
* :class:`DuetTrainer` — data-driven and hybrid training (Algorithm 2);
* :class:`DuetEstimator` — sampling-free estimation (Algorithm 3);
* :class:`VirtualTableSampler` — virtual-table sampling (Algorithm 1);
* :class:`CardinalityEstimator` — the interface shared with all baselines.
"""

from ..data.store import DomainGrowthError
from .compiled import CompiledDuetModel
from .config import (
    DuetConfig,
    LifecyclePolicy,
    MPSNConfig,
    ObsConfig,
    ServingConfig,
    dmv_config,
    small_table_config,
)
from .disjunction import conjoin, estimate_disjunction
from .encoding import ColumnPredicateEncoder, QueryCodec, binary_width, resolve_value_strategy
from .estimator import DuetEstimator, EstimationBreakdown
from .interface import CardinalityEstimator
from .model import DuetModel
from .mpsn import MergedMLPInference, MLPMPSN, RecursiveMPSN, RNNMPSN, build_mpsn
from .trainer import DuetTrainer, EpochStats, TrainingHistory
from .virtual_table import PredicateGuidance, VirtualTableSampler, VirtualTupleBatch

__all__ = [
    "DuetConfig",
    "MPSNConfig",
    "ObsConfig",
    "ServingConfig",
    "LifecyclePolicy",
    "dmv_config",
    "small_table_config",
    "QueryCodec",
    "ColumnPredicateEncoder",
    "binary_width",
    "resolve_value_strategy",
    "DuetModel",
    "DuetTrainer",
    "EpochStats",
    "TrainingHistory",
    "DuetEstimator",
    "EstimationBreakdown",
    "CompiledDuetModel",
    "VirtualTableSampler",
    "VirtualTupleBatch",
    "PredicateGuidance",
    "CardinalityEstimator",
    "DomainGrowthError",
    "conjoin",
    "estimate_disjunction",
    "MLPMPSN",
    "RNNMPSN",
    "RecursiveMPSN",
    "build_mpsn",
    "MergedMLPInference",
]
