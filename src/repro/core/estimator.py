"""Algorithm 3: sampling-free cardinality estimation with a single forward pass.

Two execution paths share the same query translation and zero-out masks:

* the **tape path** runs through the autograd :class:`~repro.nn.Tensor`
  graph — differentiable, used for training and as the equivalence oracle;
* the **compiled path** (:meth:`DuetEstimator.compile`) runs a lowered
  :class:`~repro.core.compiled.CompiledDuetModel` — masks folded, buffers
  reused, fused masked selectivity, optional ``float32`` — and is the one
  the serving layer drives.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

from ..nn import PlanOptions, no_grad
from ..workload.query import Query
from .compiled import CompiledDuetModel
from .interface import CardinalityEstimator
from .model import DuetModel

__all__ = ["DuetEstimator", "EstimationBreakdown"]


class EstimationBreakdown(dict):
    """Per-phase wall-clock cost of a batch estimation (seconds).

    Keys: ``encoding`` (predicate translation + input encoding) and
    ``inference`` (network forward pass + zero-out + product).  Figure 6 of
    the paper plots exactly this breakdown.

    The encoding phase is additionally split into ``translate`` (query
    predicates into code-space arrays) and ``encode`` (code arrays into the
    MADE input matrix), with ``encoding == translate + encode`` — the
    request tracer renders these as separate spans.
    """


class DuetEstimator(CardinalityEstimator):
    """The paper's estimator: deterministic, O(1) forward passes per query."""

    name = "duet"

    def __init__(self, model: DuetModel) -> None:
        super().__init__(model.table)
        self.model = model
        self._compiled: CompiledDuetModel | None = None
        self._use_compiled = False
        #: registry version this estimator was loaded from (set by
        #: ModelRegistry.load_estimator; None for ad-hoc estimators)
        self.model_version: str | None = None
        #: store version of the data the model was trained on; picked up
        #: from a Snapshot table when available, else set by the registry
        self.data_version: int | None = getattr(model.table, "data_version", None)

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def compile(self, options: PlanOptions | None = None) -> "DuetEstimator":
        """Lower the model into a grad-free plan and make it the default path.

        Weights are snapshotted at compile time — call ``compile()`` again
        after further training to refresh the plan.  Returns ``self`` so
        ``DuetEstimator(model).compile()`` reads naturally.
        """
        self._compiled = CompiledDuetModel(self.model, options)
        self._use_compiled = True
        return self

    @property
    def compiled(self) -> bool:
        """Whether estimates run through the compiled plan by default."""
        return self._use_compiled and self._compiled is not None

    @property
    def compile_options(self) -> PlanOptions | None:
        """Options of the active compiled plan (``None`` when uncompiled).

        Guarded by :attr:`compiled`, not just plan presence: an explicit
        ``estimate_batch_with_breakdown(..., compiled=True)`` caches a plan
        without flipping the default path, and must not make this estimator
        look compiled to callers that persist or branch on the options.
        """
        return self._compiled.options if self.compiled else None

    def timed_batch_runner(self, options: PlanOptions | None = None
                           ) -> Callable[[Sequence[Query]],
                                         tuple[np.ndarray, EstimationBreakdown]]:
        """A compiled ``queries -> (estimates, breakdown)`` runner.

        Reuses this estimator's existing plan when its options match (plans
        serialise on their own lock, so sharing is safe); otherwise builds a
        private plan — either way the estimator's own default path is not
        flipped, so the tape stays available as the equivalence oracle.
        """
        options = options or PlanOptions()
        if self._compiled is not None and self._compiled.options == options:
            compiled = self._compiled
        else:
            compiled = CompiledDuetModel(self.model, options)

        def runner(queries):
            return self._run_batch(list(queries), compiled)

        # Expose the plan so callers can reach through for per-stage
        # profiling (service.enable profiling hooks) without widening the
        # queries -> (estimates, breakdown) runner contract.
        runner.compiled = compiled
        return runner

    def tape_batch_runner(self) -> Callable[[Sequence[Query]],
                                            tuple[np.ndarray, EstimationBreakdown]]:
        """A ``queries -> (estimates, breakdown)`` runner pinned to the tape.

        For callers (``ServingConfig(compiled=False)``) that need the
        autograd path regardless of how this estimator was compiled — e.g.
        bit-exact reproducibility with an uncompiled reference.
        """
        return lambda queries: self._run_batch(list(queries), None)

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def estimate(self, query: Query) -> float:
        return float(self.estimate_batch([query])[0])

    def estimate_batch(self, queries: Sequence[Query]) -> np.ndarray:
        estimates, _ = self.estimate_batch_with_breakdown(queries)
        return estimates

    def estimate_batch_timed(self, queries: Sequence[Query]
                             ) -> tuple[np.ndarray, EstimationBreakdown]:
        """Batched serving entry point with per-query latency metadata.

        Extends the base-class contract with Duet's encoding/inference phase
        split: the returned breakdown holds ``encoding``, ``inference``,
        ``total`` and ``per_query`` (all seconds).
        """
        started = time.perf_counter()
        estimates, breakdown = self.estimate_batch_with_breakdown(queries)
        breakdown["total"] = time.perf_counter() - started
        breakdown["per_query"] = breakdown["total"] / max(len(queries), 1)
        return estimates, breakdown

    def estimate_batch_with_breakdown(
        self, queries: Sequence[Query], compiled: bool | None = None
    ) -> tuple[np.ndarray, EstimationBreakdown]:
        """Estimate a batch and report the encoding/inference time split.

        ``compiled`` forces a path: ``True`` uses the lowered plan (compiling
        with default options on first use), ``False`` the tape path, ``None``
        (default) whatever :meth:`compile` selected.
        """
        queries = list(queries)
        use_compiled = self.compiled if compiled is None else compiled
        if use_compiled and self._compiled is None:
            self._compiled = CompiledDuetModel(self.model)
        plan = self._compiled if use_compiled else None
        return self._run_batch(queries, plan)

    def _run_batch(self, queries: list[Query],
                   compiled: CompiledDuetModel | None
                   ) -> tuple[np.ndarray, EstimationBreakdown]:
        if not queries:
            return (np.zeros(0, dtype=np.float64),
                    EstimationBreakdown(translate=0.0, encode=0.0,
                                        encoding=0.0, inference=0.0))
        start = time.perf_counter()
        values, ops, masks = self.model.codec.translate_batch(queries)
        after_translate = time.perf_counter()
        if compiled is not None:
            with compiled.lock:
                encoded = compiled.encode(values, ops)
                after_encoding = time.perf_counter()
                logits = compiled.logits(encoded)
                selectivity = compiled.selectivity_from_logits(logits, masks)
                after_inference = time.perf_counter()
        else:
            self.model.eval()
            with no_grad():
                encoded = self.model.encode_batch(values, ops)
                after_encoding = time.perf_counter()
                outputs = self.model.made(encoded)
                selectivity = self.model.selectivity_from_outputs(outputs, masks).numpy()
                after_inference = time.perf_counter()
        selectivity = np.clip(selectivity, 0.0, 1.0)
        estimates = selectivity * self.table.num_rows
        breakdown = EstimationBreakdown(
            translate=after_translate - start,
            encode=after_encoding - after_translate,
            encoding=after_encoding - start,
            inference=after_inference - after_encoding,
        )
        return estimates, breakdown

    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        return self.model.size_bytes()

    @property
    def is_deterministic(self) -> bool:
        return True
