"""Algorithm 3: sampling-free cardinality estimation with a single forward pass."""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..nn import no_grad
from ..workload.query import Query
from .interface import CardinalityEstimator
from .model import DuetModel

__all__ = ["DuetEstimator", "EstimationBreakdown"]


class EstimationBreakdown(dict):
    """Per-phase wall-clock cost of a batch estimation (seconds).

    Keys: ``encoding`` (predicate translation + input encoding) and
    ``inference`` (network forward pass + zero-out + product).  Figure 6 of
    the paper plots exactly this breakdown.
    """


class DuetEstimator(CardinalityEstimator):
    """The paper's estimator: deterministic, O(1) forward passes per query."""

    name = "duet"

    def __init__(self, model: DuetModel) -> None:
        super().__init__(model.table)
        self.model = model

    # ------------------------------------------------------------------
    def estimate(self, query: Query) -> float:
        return float(self.estimate_batch([query])[0])

    def estimate_batch(self, queries: Sequence[Query]) -> np.ndarray:
        estimates, _ = self.estimate_batch_with_breakdown(queries)
        return estimates

    def estimate_batch_timed(self, queries: Sequence[Query]
                             ) -> tuple[np.ndarray, EstimationBreakdown]:
        """Batched serving entry point with per-query latency metadata.

        Extends the base-class contract with Duet's encoding/inference phase
        split: the returned breakdown holds ``encoding``, ``inference``,
        ``total`` and ``per_query`` (all seconds).
        """
        started = time.perf_counter()
        estimates, breakdown = self.estimate_batch_with_breakdown(queries)
        breakdown["total"] = time.perf_counter() - started
        breakdown["per_query"] = breakdown["total"] / max(len(queries), 1)
        return estimates, breakdown

    def estimate_batch_with_breakdown(
        self, queries: Sequence[Query]
    ) -> tuple[np.ndarray, EstimationBreakdown]:
        """Estimate a batch and report the encoding/inference time split."""
        queries = list(queries)
        self.model.eval()
        with no_grad():
            start = time.perf_counter()
            values, ops = self.model.codec.queries_to_code_arrays(queries)
            masks = self.model.codec.zero_out_masks(queries)
            encoded = self.model.encode_batch(values, ops)
            after_encoding = time.perf_counter()
            outputs = self.model.made(encoded)
            selectivity = self.model.selectivity_from_outputs(outputs, masks).numpy()
            after_inference = time.perf_counter()
        selectivity = np.clip(selectivity, 0.0, 1.0)
        estimates = selectivity * self.table.num_rows
        breakdown = EstimationBreakdown(
            encoding=after_encoding - start,
            inference=after_inference - after_encoding,
        )
        return estimates, breakdown

    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        return self.model.size_bytes()

    @property
    def is_deterministic(self) -> bool:
        return True
