"""Configuration of the Duet model, sampler and trainer."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DuetConfig", "MPSNConfig", "ObsConfig", "ServingConfig",
           "LifecyclePolicy", "dmv_config", "small_table_config"]

_VALID_VALUE_ENCODINGS = ("binary", "onehot", "embedding")
_VALID_MPSN_KINDS = ("mlp", "rnn", "recursive")


@dataclass(frozen=True)
class MPSNConfig:
    """Configuration of the Multiple Predicates Supporting Network (§IV-F).

    One MPSN per column embeds a variable number of predicates into the
    fixed-width input block that column owns in the MADE input.
    """

    kind: str = "mlp"
    hidden_size: int = 64
    num_layers: int = 2
    merged: bool = True  # merged block-diagonal acceleration for the MLP kind

    def __post_init__(self) -> None:
        if self.kind not in _VALID_MPSN_KINDS:
            raise ValueError(f"unknown MPSN kind {self.kind!r}; "
                             f"choose from {_VALID_MPSN_KINDS}")
        if self.hidden_size <= 0 or self.num_layers <= 0:
            raise ValueError("MPSN hidden_size and num_layers must be positive")


@dataclass(frozen=True)
class DuetConfig:
    """All knobs of Duet in one place.

    Defaults follow the paper: binary value encoding with an embedding
    fallback for very large domains, MADE hidden sizes chosen per dataset,
    expand coefficient ``mu = 4``, trade-off coefficient ``lambda = 0.1``.
    """

    # --- model architecture ------------------------------------------------
    hidden_sizes: tuple[int, ...] = (128, 128)
    residual: bool = False
    value_encoding: str = "binary"
    embedding_threshold: int = 512     # domains larger than this use an embedding
    embedding_dim: int = 16
    seed: int = 0

    # --- multiple predicates per column -------------------------------------
    multi_predicate: bool = False
    max_predicates_per_column: int = 2
    mpsn: MPSNConfig = field(default_factory=MPSNConfig)

    # --- Algorithm 1 (virtual-table sampling) -------------------------------
    expand_coefficient: int = 4        # the paper's mu
    wildcard_probability: float = 0.15  # fraction of columns left unconstrained

    # --- training ------------------------------------------------------------
    learning_rate: float = 2e-3
    batch_size: int = 256
    epochs: int = 10
    grad_clip: float = 10.0
    # hybrid loss L = L_data + lambda * log2(QError + 1)
    lambda_query: float = 0.1
    query_batch_size: int = 64
    # negative replay (delete absorption): weight of the hinge penalty that
    # pushes removed tuples' likelihood down toward (at most) uniform during
    # incremental fine-tuning; 0 disables negative replay entirely
    negative_weight: float = 0.5

    def __post_init__(self) -> None:
        if self.value_encoding not in _VALID_VALUE_ENCODINGS:
            raise ValueError(f"unknown value encoding {self.value_encoding!r}; "
                             f"choose from {_VALID_VALUE_ENCODINGS}")
        if self.expand_coefficient < 1:
            raise ValueError("expand_coefficient (mu) must be >= 1")
        if not 0.0 <= self.wildcard_probability < 1.0:
            raise ValueError("wildcard_probability must be in [0, 1)")
        if self.lambda_query < 0:
            raise ValueError("lambda_query must be non-negative")
        if self.negative_weight < 0:
            raise ValueError("negative_weight must be non-negative")
        if self.batch_size <= 0 or self.epochs <= 0:
            raise ValueError("batch_size and epochs must be positive")
        if not self.hidden_sizes:
            raise ValueError("at least one hidden layer is required")


@dataclass(frozen=True)
class ObsConfig:
    """Knobs of the observability layer (:mod:`repro.obs`).

    Attributes
    ----------
    trace_sample_rate:
        Probability that one ``estimate()`` call records a span tree.
        ``0.0`` (the default) keeps the untraced hot path allocation-free —
        a single float compare per request; ``1.0`` traces everything.
    trace_keep_slowest:
        How many finished traces the tracer retains, slowest first, for
        ``service.tracer.slowest()``.
    profile_plan_stages:
        When true, the compiled :class:`~repro.nn.ForwardPlan` accumulates
        per-stage wall time and invocation counts (and the compiled model
        times its encode/forward/mask phases), so plan time can be
        attributed to individual gather/matmul/mask stages.  Off by
        default: the profiled ``run()`` loop reads the clock twice per
        stage.
    export_interval_seconds:
        Cadence of the :class:`~repro.obs.MetricsExporter` snapshot-to-file
        loop when a soak run wires one up.
    """

    trace_sample_rate: float = 0.0
    trace_keep_slowest: int = 32
    profile_plan_stages: bool = False
    export_interval_seconds: float = 5.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ValueError("trace_sample_rate must be in [0, 1]")
        if self.trace_keep_slowest <= 0:
            raise ValueError("trace_keep_slowest must be positive")
        if self.export_interval_seconds <= 0:
            raise ValueError("export_interval_seconds must be positive")


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the online estimation service (:mod:`repro.serving`).

    Attributes
    ----------
    micro_batching:
        When true (the default), concurrent ``estimate()`` calls are
        coalesced by a :class:`~repro.serving.MicroBatcher` into single
        ``estimate_batch`` forward passes, exploiting the model's vectorised
        path.  When false the service runs one forward pass per request —
        the naive mode the throughput benchmark compares against.
    max_batch_size:
        Upper bound on how many queued requests one forward pass may serve.
        Larger batches amortise the per-pass overhead but increase the
        latency of the first request in the batch.
    max_wait_ms:
        How long (milliseconds) the batcher waits for more requests after
        the first one arrives before closing the batch.  ``0`` degenerates
        to "drain whatever is already queued"; a couple of milliseconds is
        enough for batches to form under concurrent load while keeping the
        idle-service latency near the raw forward-pass cost.
    cache_capacity:
        Number of entries of the estimate LRU cache.  Keys are canonical
        (predicate-order and operator-alias insensitive), so permuted
        repeats of a query hit the cache and skip the model entirely.
        ``0`` disables caching.
    latency_window:
        Number of most-recent request latencies retained for the p50/p90/p99
        statistics; older samples are discarded so a long-running service
        reports a moving window rather than its full history.
    compiled:
        When true (the default), the service lowers the estimator's model
        into a grad-free :class:`~repro.nn.ForwardPlan` (masks folded, fused
        masked selectivity, preallocated buffers reused across micro-batches)
        and runs every forward pass through it.  The estimator object itself
        is left untouched, so its tape path remains available as the
        equivalence oracle.  Estimators without a compiled form fall back to
        their ordinary batched path.
    inference_dtype:
        Arithmetic precision of the compiled serving plan: ``"float64"``
        (matches the tape path to ~1e-15 relative) or ``"float32"`` (half
        the memory traffic; agrees to ~1e-5 relative — far below the
        model's own estimation error).  ``None`` (the default) defers to
        the estimator's own compile options — e.g. the dtype persisted in
        the model registry — falling back to ``"float64"`` when the
        estimator carries none.
    refresh_epochs:
        Fine-tuning epochs one ``EstimationService.refresh()`` runs over the
        appended rows (plus replay) before hot-swapping the model.
    replay_fraction:
        Old-row replay size of a refresh, as a fraction of the appended
        rows — the anti-forgetting knob of incremental fine-tuning.
    obs:
        Observability knobs (:class:`ObsConfig`): trace sampling, plan
        profiling, exporter cadence.  Defaults keep every hook off, so a
        plain service pays only the registry counter increments.
    """

    micro_batching: bool = True
    max_batch_size: int = 64
    max_wait_ms: float = 2.0
    cache_capacity: int = 8192
    latency_window: int = 65536
    compiled: bool = True
    inference_dtype: str | None = None
    refresh_epochs: int = 1
    replay_fraction: float = 0.25
    obs: ObsConfig = field(default_factory=ObsConfig)

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if self.cache_capacity < 0:
            raise ValueError("cache_capacity must be non-negative")
        if self.latency_window <= 0:
            raise ValueError("latency_window must be positive")
        if self.inference_dtype not in (None, "float32", "float64"):
            raise ValueError("inference_dtype must be 'float32', 'float64', "
                             "or None (defer to the estimator's options)")
        if self.refresh_epochs <= 0:
            raise ValueError("refresh_epochs must be positive")
        if self.replay_fraction < 0:
            raise ValueError("replay_fraction must be non-negative")


@dataclass(frozen=True)
class LifecyclePolicy:
    """Knobs of the autonomous lifecycle controller (:mod:`repro.lifecycle`).

    The controller watches one :class:`~repro.serving.EstimationService` and
    decides when the served model should absorb appended data.  Three
    independent triggers feed the decision (any one of them fires it):

    * ``max_stale_rows`` — absolute number of rows appended since the served
      model's ``data_version``;
    * ``max_stale_fraction`` — the same staleness relative to the rows the
      model was trained on (catches slow drip on small tables and sudden
      bulk loads on large ones with one knob);
    * ``qerror_median_threshold`` / ``qerror_drift_factor`` — *observed*
      accuracy decay on a sliding-window probe set of recently served
      queries, relabeled incrementally against the live store.  The absolute
      threshold fires when the probe median Q-Error exceeds it; the drift
      factor fires when the median exceeds ``factor`` times the baseline
      recorded right after the last (re)train.  ``None`` disables either.

    Attributes
    ----------
    poll_interval_seconds:
        How often the scheduler's daemon loop re-evaluates the policy.
    max_stale_rows / max_stale_fraction:
        Staleness triggers described above.  ``None`` disables either.
    probe_window:
        Sliding-window capacity of the drift probe set (served queries are
        sampled into it at ``probe_sample_rate``).
    probe_sample_rate:
        Probability that one served query is recorded into the probe window.
    min_probe_queries:
        Q-Error triggers stay silent until the window holds at least this
        many queries (tiny probe sets make noisy medians).
    qerror_median_threshold / qerror_drift_factor:
        Accuracy triggers described above.
    debounce_polls:
        Consecutive positive evaluations required before a refresh is
        actually launched — absorbs append bursts so the controller tunes
        once at the end instead of per batch.
    cooldown_seconds:
        Minimum wall-clock gap between two controller-initiated tunes.
    refresh_epochs:
        Fine-tuning epochs per automatic refresh (``None`` defers to
        :attr:`ServingConfig.refresh_epochs`).
    cold_train_on_growth:
        When a refresh fails with a domain-growth error, escalate to a
        background cold train + swap instead of surfacing the error.
    cold_train_epochs:
        Training epochs of an escalated cold train.
    tune_slice_batches / tune_yield_seconds:
        Backpressure: the tuning loop sleeps ``tune_yield_seconds`` after
        every ``tune_slice_batches`` optimiser steps, bounding how long
        fine-tuning can hold the interpreter away from serving threads.
        ``0`` disables the yield.
    keep_model_versions:
        Registry retention: prune a dataset's versions down to this many
        after each successful tune (the served version is never pruned).
        ``None`` keeps everything.
    trim_store_versions:
        Store retention: drop per-version metadata made unreachable once no
        live snapshot references versions that old.
    compact_tombstone_fraction:
        Compaction trigger: when the store's dead-row fraction
        (:attr:`~repro.data.ColumnStore.tombstone_fraction`) reaches this
        threshold, the scheduler rewrites the chunks to drop tombstoned rows
        and escalates to a background cold train on the compacted snapshot
        (deltas cannot span a compaction, and a clean retrain also erases
        the approximation error negative-replay fine-tuning accumulates
        under heavy deletes).  ``None`` disables automatic compaction.
    canary_margin:
        Canary gate for every controller-initiated swap: a fine-tuned or
        cold-trained candidate is shadow-evaluated on the drift monitor's
        probe set and rejected (the incumbent keeps serving) when its probe
        median Q-Error exceeds ``canary_margin`` times the incumbent's.
        ``1.0`` demands the candidate be no worse; the default ``1.1``
        tolerates 10% regression (probe medians are noisy).  ``None``
        disables gating — every candidate swaps unevaluated, the
        pre-canary behaviour.
    failure_backoff_seconds / failure_backoff_max_seconds:
        Exponential backoff after a *failed* tune (refresh, cold train, or
        compaction): the tune path is parked for
        ``failure_backoff_seconds * 2**(consecutive_failures - 1)`` capped
        at ``failure_backoff_max_seconds``.  Kept separate from
        ``cooldown_seconds``, which only measures the gap since the last
        *successful* tune — a persistently failing tune and a healthy one
        must not share one knob.  ``0`` retries on the next poll.
    breaker_failure_threshold / breaker_cooldown_seconds:
        Circuit breaker over the tune path: after ``breaker_failure_threshold``
        consecutive tune failures the breaker opens and every tune/compaction
        opportunity is skipped (serving is untouched) until
        ``breaker_cooldown_seconds`` have passed; the breaker then half-opens
        and admits one trial tune — success closes it, failure re-opens it
        for another cooldown.  ``None`` disables the breaker (backoff alone
        still applies).
    """

    poll_interval_seconds: float = 1.0
    max_stale_rows: int | None = 10_000
    max_stale_fraction: float | None = 0.10
    probe_window: int = 256
    probe_sample_rate: float = 0.1
    min_probe_queries: int = 16
    qerror_median_threshold: float | None = None
    qerror_drift_factor: float | None = 2.0
    debounce_polls: int = 2
    cooldown_seconds: float = 30.0
    refresh_epochs: int | None = None
    cold_train_on_growth: bool = True
    cold_train_epochs: int = 4
    tune_slice_batches: int = 8
    tune_yield_seconds: float = 0.002
    keep_model_versions: int | None = 3
    trim_store_versions: bool = True
    compact_tombstone_fraction: float | None = 0.30
    canary_margin: float | None = 1.1
    failure_backoff_seconds: float = 2.0
    failure_backoff_max_seconds: float = 60.0
    breaker_failure_threshold: int | None = 5
    breaker_cooldown_seconds: float = 120.0

    def __post_init__(self) -> None:
        if self.poll_interval_seconds <= 0:
            raise ValueError("poll_interval_seconds must be positive")
        if self.max_stale_rows is not None and self.max_stale_rows <= 0:
            raise ValueError("max_stale_rows must be positive (or None)")
        if self.max_stale_fraction is not None and self.max_stale_fraction <= 0:
            raise ValueError("max_stale_fraction must be positive (or None)")
        if self.probe_window <= 0:
            raise ValueError("probe_window must be positive")
        if not 0.0 <= self.probe_sample_rate <= 1.0:
            raise ValueError("probe_sample_rate must be in [0, 1]")
        if self.min_probe_queries <= 0:
            raise ValueError("min_probe_queries must be positive")
        if (self.qerror_median_threshold is not None
                and self.qerror_median_threshold < 1.0):
            raise ValueError("qerror_median_threshold is a Q-Error, so >= 1")
        if self.qerror_drift_factor is not None and self.qerror_drift_factor <= 1.0:
            raise ValueError("qerror_drift_factor must exceed 1 (or be None)")
        if self.debounce_polls <= 0:
            raise ValueError("debounce_polls must be positive")
        if self.cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be non-negative")
        if self.refresh_epochs is not None and self.refresh_epochs <= 0:
            raise ValueError("refresh_epochs must be positive (or None)")
        if self.cold_train_epochs <= 0:
            raise ValueError("cold_train_epochs must be positive")
        if self.tune_slice_batches <= 0:
            raise ValueError("tune_slice_batches must be positive")
        if self.tune_yield_seconds < 0:
            raise ValueError("tune_yield_seconds must be non-negative")
        if self.keep_model_versions is not None and self.keep_model_versions < 1:
            raise ValueError("keep_model_versions must be >= 1 (or None)")
        if (self.compact_tombstone_fraction is not None
                and not 0.0 < self.compact_tombstone_fraction <= 1.0):
            raise ValueError(
                "compact_tombstone_fraction must be in (0, 1] (or None)")
        if self.canary_margin is not None and self.canary_margin <= 0:
            raise ValueError("canary_margin must be positive (or None)")
        if self.failure_backoff_seconds < 0:
            raise ValueError("failure_backoff_seconds must be non-negative")
        if self.failure_backoff_max_seconds < self.failure_backoff_seconds:
            raise ValueError("failure_backoff_max_seconds must be >= "
                             "failure_backoff_seconds")
        if (self.breaker_failure_threshold is not None
                and self.breaker_failure_threshold < 1):
            raise ValueError("breaker_failure_threshold must be >= 1 (or None)")
        if self.breaker_cooldown_seconds < 0:
            raise ValueError("breaker_cooldown_seconds must be non-negative")


def dmv_config(**overrides) -> DuetConfig:
    """The paper's DMV architecture: MADE with 512-256-512-128-1024 hidden units."""
    defaults = dict(hidden_sizes=(512, 256, 512, 128, 1024), residual=False)
    defaults.update(overrides)
    return DuetConfig(**defaults)


def small_table_config(**overrides) -> DuetConfig:
    """The paper's Kddcup98 / Census architecture: 2-layer ResMADE, 128 units."""
    defaults = dict(hidden_sizes=(128, 128), residual=True)
    defaults.update(overrides)
    return DuetConfig(**defaults)
