"""Predicate encoding for Duet (§IV-C "Encoding" and §IV-F of the paper).

Each column owns one *predicate block* in the model input.  A block encodes
up to ``P`` predicates on that column, each predicate being:

* a one-hot vector over the five operators ``=, >, <, >=, <=`` plus one
  leading *presence* bit (all zeros = wildcard, i.e. the column is not
  constrained — the paper's wildcard-skipping), and
* an encoding of the predicate literal's dictionary code — ``binary``
  (``ceil(log2(NDV))`` bits, the paper default), ``onehot`` (NDV bits), or
  ``embedding`` for very large domains (the value part is then looked up in
  a learned embedding owned by the model).

Queries are first translated into *canonical code-space predicates*: the raw
literal of each predicate is mapped onto the column's dictionary through the
inclusive code interval it selects, so that training (Algorithm 1 samples
directly in code space) and inference see exactly the same representation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.store import DomainGrowthError
from ..data.table import Table
from ..workload.predicates import Operator, Predicate
from ..workload.query import Query
from .config import DuetConfig

__all__ = [
    "NUM_OPERATORS",
    "OPERATOR_FEATURE_WIDTH",
    "binary_width",
    "resolve_value_strategy",
    "ColumnPredicateEncoder",
    "CanonicalPredicate",
    "QueryCodec",
]

#: number of predicate operators supported (=, >, <, >=, <=)
NUM_OPERATORS = 5
#: presence bit + operator one-hot
OPERATOR_FEATURE_WIDTH = 1 + NUM_OPERATORS

_OP_EQ = Operator.EQ.index
_OP_GE = Operator.GE.index
_OP_LE = Operator.LE.index

#: operator -> stable index, as a dict (Operator.index is a linear scan)
_OP_INDEX = {op: op.index for op in Operator}
_KIND_EQ = Operator.EQ.index
_KIND_GT = Operator.GT.index
_KIND_LT = Operator.LT.index
_KIND_GE = Operator.GE.index
_KIND_LE = Operator.LE.index


def _run_starts(sorted_values: np.ndarray) -> np.ndarray:
    """Boolean array marking the first element of each run of equal values."""
    starts = np.empty(sorted_values.size, dtype=bool)
    starts[0] = True
    np.not_equal(sorted_values[1:], sorted_values[:-1], out=starts[1:])
    return starts


def binary_width(num_distinct: int) -> int:
    """Number of bits of the binary code encoding for a domain of ``num_distinct``."""
    if num_distinct <= 1:
        return 1
    return int(np.ceil(np.log2(num_distinct)))


def resolve_value_strategy(num_distinct: int, config: DuetConfig) -> str:
    """Pick the literal encoding for a column.

    Follows the paper: the configured strategy is used except for very large
    domains, which fall back to a learned embedding.
    """
    if config.value_encoding == "embedding":
        return "embedding"
    if num_distinct > config.embedding_threshold:
        return "embedding"
    return config.value_encoding


@dataclass(frozen=True)
class CanonicalPredicate:
    """A predicate expressed in code space: ``(operator index, literal code)``."""

    op_index: int
    code: int


class ColumnPredicateEncoder:
    """Encodes the predicates of one column into its fixed-width block."""

    def __init__(self, column_index: int, num_distinct: int, config: DuetConfig) -> None:
        self.column_index = column_index
        self.num_distinct = num_distinct
        self.strategy = resolve_value_strategy(num_distinct, config)
        if self.strategy == "binary":
            self.value_width = binary_width(num_distinct)
        elif self.strategy == "onehot":
            self.value_width = num_distinct
        else:  # embedding — the value part is produced by the model
            self.value_width = config.embedding_dim
        #: width of one encoded predicate (operator features + value features)
        self.predicate_width = OPERATOR_FEATURE_WIDTH + self.value_width

    # ------------------------------------------------------------------
    @property
    def needs_embedding(self) -> bool:
        return self.strategy == "embedding"

    # ------------------------------------------------------------------
    def encode_operator_features(self, ops: np.ndarray) -> np.ndarray:
        """Presence bit + operator one-hot; ``op == -1`` means wildcard."""
        ops = np.asarray(ops, dtype=np.int64)
        features = np.zeros(ops.shape + (OPERATOR_FEATURE_WIDTH,), dtype=np.float64)
        present = ops >= 0
        features[..., 0] = present
        clipped = np.where(present, ops, 0)
        one_hot = np.eye(NUM_OPERATORS)[clipped] * present[..., None]
        features[..., 1:] = one_hot
        return features

    def encode_value_features(self, codes: np.ndarray) -> np.ndarray:
        """Literal encoding for non-embedding strategies; ``code == -1`` -> zeros."""
        if self.needs_embedding:
            raise RuntimeError("embedding columns are encoded by the model, "
                               "not by the static encoder")
        codes = np.asarray(codes, dtype=np.int64)
        present = codes >= 0
        clipped = np.where(present, codes, 0)
        if self.strategy == "binary":
            bits = ((clipped[..., None] >> np.arange(self.value_width)) & 1)
            return bits.astype(np.float64) * present[..., None]
        one_hot = np.eye(self.num_distinct)[clipped]
        return one_hot * present[..., None]

    def encode(self, codes: np.ndarray, ops: np.ndarray) -> np.ndarray:
        """Full per-predicate encoding ``(..., predicate_width)`` (non-embedding)."""
        operator_features = self.encode_operator_features(ops)
        value_features = self.encode_value_features(codes)
        return np.concatenate([operator_features, value_features], axis=-1)


class QueryCodec:
    """Translates :class:`Query` objects into code-space arrays and masks."""

    def __init__(self, table: Table, config: DuetConfig) -> None:
        self.table = table
        self.config = config
        self.max_predicates = (config.max_predicates_per_column
                               if config.multi_predicate else 1)
        self.encoders = [
            ColumnPredicateEncoder(index, column.num_distinct, config)
            for index, column in enumerate(table.columns)
        ]
        self._ndv = np.array([column.num_distinct for column in table.columns],
                             dtype=np.int64)
        #: global code axis: column i owns codes [offset[i], offset[i+1])
        self._mask_offsets = np.concatenate([[0], np.cumsum(self._ndv)])
        self._global_codes = np.arange(int(self._mask_offsets[-1]))
        #: per-column literal -> (left, right) searchsorted cache; serving
        #: traffic repeats literals heavily, and a dict hit is ~20x cheaper
        #: than even a vectorised searchsorted share
        self._interval_cache: list[dict] = [{} for _ in table.columns]

    # ------------------------------------------------------------------
    def ensure_compatible(self, table: Table) -> None:
        """Check that ``table``'s domains match the ones this codec encodes.

        The model's predicate encodings and output bins are sized to each
        column's NDV and code order, so a table is only interchangeable when
        every column carries the *identical* sorted distinct values.  Raises
        a typed :class:`~repro.data.DomainGrowthError` naming the offending
        columns otherwise — the caller must cold-train a new model.
        """
        if table.column_names != self.table.column_names:
            raise DomainGrowthError(
                f"table {table.name!r} has columns {table.column_names} but the "
                f"codec encodes {self.table.column_names}",
                columns=tuple(set(table.column_names)
                              ^ set(self.table.column_names)))
        changed = [
            ours.name
            for ours, theirs in zip(self.table.columns, table.columns)
            if ours.num_distinct != theirs.num_distinct
            or not np.array_equal(ours.distinct_values, theirs.distinct_values)
        ]
        if changed:
            raise DomainGrowthError(
                f"columns {changed} of table {table.name!r} have different "
                f"domains than the ones this model was trained on; domain "
                f"growth changes the encoding and output shapes — train a new "
                f"model (DuetTrainer) instead of rebinding/fine-tuning",
                columns=tuple(changed))

    def rebind(self, table: Table) -> None:
        """Re-point the codec at a new snapshot with identical domains.

        This is the *re-encode* path for data change without domain growth:
        predicate translation only depends on the sorted distinct values, so
        after the compatibility check the swap is free (the literal interval
        cache stays valid for the same reason).  Grown domains raise
        :class:`~repro.data.DomainGrowthError` instead.
        """
        self.ensure_compatible(table)
        self.table = table

    # ------------------------------------------------------------------
    def canonicalize(self, predicate: Predicate) -> CanonicalPredicate | None:
        """Map one raw-value predicate to code space.

        Returns ``None`` when the predicate does not constrain the column at
        all (its code interval covers the whole domain).  Empty predicates
        are kept (the zero-out mask then produces a zero factor).
        """
        column = self.table.column(predicate.column)
        low, high = predicate.code_interval(column)
        last = column.num_distinct - 1
        if low > high:
            # Unsatisfiable predicate: keep an equality on the nearest code so
            # the model still sees a constraint; the mask makes the factor 0.
            return CanonicalPredicate(_OP_EQ, int(np.clip(low, 0, last)))
        if low == 0 and high == last:
            return None
        if low == high:
            return CanonicalPredicate(_OP_EQ, low)
        if low == 0:
            return CanonicalPredicate(_OP_LE, high)
        if high == last:
            return CanonicalPredicate(_OP_GE, low)
        # Two-sided intervals only arise from multiple predicates per column,
        # each of which is canonicalised separately, so this branch is not
        # reachable from a single predicate; guard anyway.
        return CanonicalPredicate(_OP_GE, low)

    def canonical_predicates(self, query: Query) -> dict[int, list[CanonicalPredicate]]:
        """Canonical predicates of a query, grouped by column index."""
        grouped: dict[int, list[CanonicalPredicate]] = {}
        for predicate in query.predicates:
            column_index = self.table.column_index(predicate.column)
            canonical = self.canonicalize(predicate)
            if canonical is None:
                continue
            grouped.setdefault(column_index, []).append(canonical)
        for column_index, predicates in grouped.items():
            if len(predicates) > self.max_predicates:
                raise ValueError(
                    f"query has {len(predicates)} predicates on column "
                    f"{self.table.column(column_index).name!r} but the model was "
                    f"configured for at most {self.max_predicates}; "
                    f"enable multi_predicate / raise max_predicates_per_column")
        return grouped

    # ------------------------------------------------------------------
    def translate_batch(self, queries: list[Query], enforce_slots: bool = True,
                        with_masks: bool = True
                        ) -> tuple[np.ndarray, np.ndarray, list[np.ndarray | None]]:
        """One-pass batched translation: ``(values, ops, masks)``.

        The serving hot path: every predicate's code interval is computed
        exactly once (per-column *vectorised* ``searchsorted`` over all
        literals in the batch instead of two scalar calls per predicate) and
        both the canonical code arrays and the zero-out masks are derived
        from the same intervals.  Semantics match :meth:`canonicalize` /
        :meth:`zero_out_masks` element for element.

        ``enforce_slots=False`` silently drops canonical predicates beyond
        the slot budget instead of raising — the zero-out masks are always
        defined even for queries the code arrays cannot represent.
        ``with_masks=False`` skips mask construction entirely (the returned
        mask list is all-``None``) for callers that only need code arrays.
        """
        batch = len(queries)
        num_columns = self.table.num_columns
        shape = (batch, num_columns, self.max_predicates)
        values = np.full(shape, -1, dtype=np.int64)
        ops = np.full(shape, -1, dtype=np.int64)
        masks: list[np.ndarray | None] = [None] * num_columns

        # Flatten every predicate of the batch into parallel lists (queries
        # outer, predicates inner — the order slot assignment relies on).
        query_rows: list[int] = []
        column_rows: list[int] = []
        kinds: list[int] = []
        literals: list = []
        column_index_of = self.table.column_index
        for query_index, query in enumerate(queries):
            for predicate in query.predicates:
                query_rows.append(query_index)
                column_rows.append(column_index_of(predicate.column))
                kinds.append(_OP_INDEX[predicate.operator])
                literals.append(predicate.value)
        if not query_rows:
            return values, ops, masks
        qi = np.asarray(query_rows, dtype=np.int64)
        ci = np.asarray(column_rows, dtype=np.int64)
        kind = np.asarray(kinds, dtype=np.int64)
        count = kind.size

        # Literal -> [left, right) code positions, one vectorised
        # searchsorted per constrained column (stable sort keeps each
        # column's predicates in query order, qi ascending inside a group).
        left = np.empty(count, dtype=np.int64)
        right = np.empty(count, dtype=np.int64)
        by_column = np.argsort(ci, kind="stable")
        ci_sorted = ci[by_column]
        group_starts = np.flatnonzero(_run_starts(ci_sorted))
        group_ends = np.append(group_starts[1:], count)
        for start, end in zip(group_starts, group_ends):
            column_index = int(ci_sorted[start])
            cache = self._interval_cache[column_index]
            missing = []
            for i in by_column[start:end]:
                cached = cache.get(literals[i])
                if cached is None:
                    missing.append(i)
                else:
                    left[i], right[i] = cached
            if not missing:
                continue
            column = self.table.column(column_index)
            try:
                chunk = np.asarray([literals[i] for i in missing])
                left[missing] = np.searchsorted(column.distinct_values, chunk,
                                                side="left")
                right[missing] = np.searchsorted(column.distinct_values, chunk,
                                                 side="right")
            except (TypeError, ValueError):  # ragged / incomparable literals
                for i in missing:
                    left[i] = column.searchsorted(literals[i], side="left")
                    right[i] = column.searchsorted(literals[i], side="right")
            if len(cache) > 262144:  # bound a long-lived service's footprint
                cache.clear()
            for i in missing:
                cache[literals[i]] = (left[i], right[i])

        # Inclusive code intervals — vectorised Predicate.code_interval over
        # the whole batch at once.
        last = self._ndv[ci] - 1
        is_eq = kind == _KIND_EQ
        low = np.zeros(count, dtype=np.int64)
        high = last.copy()
        np.copyto(low, left, where=is_eq | (kind == _KIND_GE))
        np.copyto(low, right, where=kind == _KIND_GT)
        np.copyto(high, right - 1, where=is_eq | (kind == _KIND_LE))
        np.copyto(high, left - 1, where=kind == _KIND_LT)
        eq_missing = is_eq & (left == right)  # equality on an absent value
        low[eq_missing] = 1
        high[eq_missing] = 0
        #: predicates whose interval covers the whole domain constrain nothing
        whole_domain = (low == 0) & (high == last)

        if with_masks:
            self._build_masks(batch, qi, ci, low, high, whole_domain, masks)

        # Canonical (operator, code) pairs — vectorised `canonicalize`.
        # Later assignments override earlier ones, so the priority order is
        # the reverse of the scalar if-chain: GE default, then low == 0,
        # low == high, whole-domain (dropped), unsatisfiable.
        canonical_op = np.full(count, _OP_GE, dtype=np.int64)
        canonical_code = low.copy()
        is_low_zero = low == 0
        np.copyto(canonical_op, _OP_LE, where=is_low_zero)
        np.copyto(canonical_code, high, where=is_low_zero)
        is_point = low == high
        np.copyto(canonical_op, _OP_EQ, where=is_point)
        np.copyto(canonical_code, low, where=is_point)
        np.copyto(canonical_op, -1, where=whole_domain)
        unsat = low > high
        np.copyto(canonical_op, _OP_EQ, where=unsat)
        np.copyto(canonical_code, np.clip(low, 0, last), where=unsat)

        # Slot assignment: occurrence index within each (query, column) pair
        # among kept predicates, in predicate order (stable sort preserves it).
        kept = np.flatnonzero(canonical_op >= 0)
        if not kept.size:
            return values, ops, masks
        order = kept[np.argsort(qi[kept] * num_columns + ci[kept], kind="stable")]
        rows, cols = qi[order], ci[order]
        same = ~_run_starts(rows * num_columns + cols)
        positions = np.arange(order.size)
        group_first = positions[~same]
        group_sizes = np.diff(np.append(group_first, order.size))
        slots = positions - np.repeat(group_first, group_sizes)
        if slots.max(initial=0) >= self.max_predicates:
            if enforce_slots:
                overflow = int(np.argmax(slots))
                raise ValueError(
                    f"query has {int(group_sizes.max())} predicates on column "
                    f"{self.table.column(int(cols[overflow])).name!r} but the "
                    f"model was configured for at most {self.max_predicates}; "
                    f"enable multi_predicate / raise max_predicates_per_column")
            within = slots < self.max_predicates
            order, rows, cols, slots = (order[within], rows[within],
                                        cols[within], slots[within])
        values[rows, cols, slots] = canonical_code[order]
        ops[rows, cols, slots] = canonical_op[order]
        return values, ops, masks

    def _build_masks(self, batch: int, qi: np.ndarray, ci: np.ndarray,
                     low: np.ndarray, high: np.ndarray,
                     whole_domain: np.ndarray,
                     masks: list[np.ndarray | None]) -> None:
        """Zero-out masks: one (batch, sum NDV) matrix over the global code
        axis, ANDed per query with a single reduceat — constrained columns
        become views into it, unconstrained columns stay ``None``.  A
        predicate's row is its interval inside its own column's segment and
        all-ones everywhere else, so predicates on different columns combine
        without touching each other's segments.
        """
        offsets = self._mask_offsets
        codes = self._global_codes
        block_lo = offsets[ci]
        satisfied = ((codes >= (low + block_lo)[:, None])
                     & (codes <= (high + block_lo)[:, None])
                     | (codes < block_lo[:, None])
                     | (codes >= offsets[ci + 1][:, None]))
        query_first = _run_starts(qi)  # qi is non-decreasing by construction
        if query_first.all():
            reduced = satisfied
            constrained_rows = qi
        else:
            starts = np.flatnonzero(query_first)
            reduced = np.logical_and.reduceat(satisfied, starts, axis=0)
            constrained_rows = qi[starts]
        global_mask = np.ones((batch, codes.size), dtype=np.float64)
        global_mask[constrained_rows] = reduced
        # Whole-domain predicates contribute all-ones rows; a column whose
        # only predicates are whole-domain is NOT constrained — it keeps the
        # ``None`` sentinel so the selectivity paths skip it exactly.
        for column_index in np.unique(ci[~whole_domain]):
            begin, stop = offsets[column_index], offsets[column_index + 1]
            masks[column_index] = global_mask[:, begin:stop]

    # ------------------------------------------------------------------
    def queries_to_code_arrays(self, queries: list[Query]
                               ) -> tuple[np.ndarray, np.ndarray]:
        """Batch of queries -> ``(values, ops)`` arrays.

        Both arrays have shape ``(batch, num_columns, max_predicates)`` and
        use ``-1`` for "no predicate in this slot".
        """
        values, ops, _ = self.translate_batch(queries, with_masks=False)
        return values, ops

    def zero_out_masks(self, queries: list[Query]) -> list[np.ndarray | None]:
        """Per-column valid-value masks ``Pred_i(R_i, v_i)`` for a query batch.

        ``masks[column]`` is ``None`` when no query in the batch constrains
        the column — the sentinel for "factor is exactly 1", which lets both
        the tape and the compiled selectivity paths skip the column without
        materialising a dense all-ones ``(batch, NDV)`` array or scanning
        one.  For constrained columns, element ``[query, code]`` is 1 when
        the code satisfies every predicate the query places on the column
        (rows of queries that leave the column unconstrained stay all-ones).
        """
        _, _, masks = self.translate_batch(queries, enforce_slots=False)
        return masks
