"""Predicate encoding for Duet (§IV-C "Encoding" and §IV-F of the paper).

Each column owns one *predicate block* in the model input.  A block encodes
up to ``P`` predicates on that column, each predicate being:

* a one-hot vector over the five operators ``=, >, <, >=, <=`` plus one
  leading *presence* bit (all zeros = wildcard, i.e. the column is not
  constrained — the paper's wildcard-skipping), and
* an encoding of the predicate literal's dictionary code — ``binary``
  (``ceil(log2(NDV))`` bits, the paper default), ``onehot`` (NDV bits), or
  ``embedding`` for very large domains (the value part is then looked up in
  a learned embedding owned by the model).

Queries are first translated into *canonical code-space predicates*: the raw
literal of each predicate is mapped onto the column's dictionary through the
inclusive code interval it selects, so that training (Algorithm 1 samples
directly in code space) and inference see exactly the same representation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.table import Table
from ..workload.predicates import Operator, Predicate
from ..workload.query import Query
from .config import DuetConfig

__all__ = [
    "NUM_OPERATORS",
    "OPERATOR_FEATURE_WIDTH",
    "binary_width",
    "resolve_value_strategy",
    "ColumnPredicateEncoder",
    "CanonicalPredicate",
    "QueryCodec",
]

#: number of predicate operators supported (=, >, <, >=, <=)
NUM_OPERATORS = 5
#: presence bit + operator one-hot
OPERATOR_FEATURE_WIDTH = 1 + NUM_OPERATORS

_OP_EQ = Operator.EQ.index
_OP_GE = Operator.GE.index
_OP_LE = Operator.LE.index


def binary_width(num_distinct: int) -> int:
    """Number of bits of the binary code encoding for a domain of ``num_distinct``."""
    if num_distinct <= 1:
        return 1
    return int(np.ceil(np.log2(num_distinct)))


def resolve_value_strategy(num_distinct: int, config: DuetConfig) -> str:
    """Pick the literal encoding for a column.

    Follows the paper: the configured strategy is used except for very large
    domains, which fall back to a learned embedding.
    """
    if config.value_encoding == "embedding":
        return "embedding"
    if num_distinct > config.embedding_threshold:
        return "embedding"
    return config.value_encoding


@dataclass(frozen=True)
class CanonicalPredicate:
    """A predicate expressed in code space: ``(operator index, literal code)``."""

    op_index: int
    code: int


class ColumnPredicateEncoder:
    """Encodes the predicates of one column into its fixed-width block."""

    def __init__(self, column_index: int, num_distinct: int, config: DuetConfig) -> None:
        self.column_index = column_index
        self.num_distinct = num_distinct
        self.strategy = resolve_value_strategy(num_distinct, config)
        if self.strategy == "binary":
            self.value_width = binary_width(num_distinct)
        elif self.strategy == "onehot":
            self.value_width = num_distinct
        else:  # embedding — the value part is produced by the model
            self.value_width = config.embedding_dim
        #: width of one encoded predicate (operator features + value features)
        self.predicate_width = OPERATOR_FEATURE_WIDTH + self.value_width

    # ------------------------------------------------------------------
    @property
    def needs_embedding(self) -> bool:
        return self.strategy == "embedding"

    # ------------------------------------------------------------------
    def encode_operator_features(self, ops: np.ndarray) -> np.ndarray:
        """Presence bit + operator one-hot; ``op == -1`` means wildcard."""
        ops = np.asarray(ops, dtype=np.int64)
        features = np.zeros(ops.shape + (OPERATOR_FEATURE_WIDTH,), dtype=np.float64)
        present = ops >= 0
        features[..., 0] = present
        clipped = np.where(present, ops, 0)
        one_hot = np.eye(NUM_OPERATORS)[clipped] * present[..., None]
        features[..., 1:] = one_hot
        return features

    def encode_value_features(self, codes: np.ndarray) -> np.ndarray:
        """Literal encoding for non-embedding strategies; ``code == -1`` -> zeros."""
        if self.needs_embedding:
            raise RuntimeError("embedding columns are encoded by the model, "
                               "not by the static encoder")
        codes = np.asarray(codes, dtype=np.int64)
        present = codes >= 0
        clipped = np.where(present, codes, 0)
        if self.strategy == "binary":
            bits = ((clipped[..., None] >> np.arange(self.value_width)) & 1)
            return bits.astype(np.float64) * present[..., None]
        one_hot = np.eye(self.num_distinct)[clipped]
        return one_hot * present[..., None]

    def encode(self, codes: np.ndarray, ops: np.ndarray) -> np.ndarray:
        """Full per-predicate encoding ``(..., predicate_width)`` (non-embedding)."""
        operator_features = self.encode_operator_features(ops)
        value_features = self.encode_value_features(codes)
        return np.concatenate([operator_features, value_features], axis=-1)


class QueryCodec:
    """Translates :class:`Query` objects into code-space arrays and masks."""

    def __init__(self, table: Table, config: DuetConfig) -> None:
        self.table = table
        self.config = config
        self.max_predicates = (config.max_predicates_per_column
                               if config.multi_predicate else 1)
        self.encoders = [
            ColumnPredicateEncoder(index, column.num_distinct, config)
            for index, column in enumerate(table.columns)
        ]

    # ------------------------------------------------------------------
    def canonicalize(self, predicate: Predicate) -> CanonicalPredicate | None:
        """Map one raw-value predicate to code space.

        Returns ``None`` when the predicate does not constrain the column at
        all (its code interval covers the whole domain).  Empty predicates
        are kept (the zero-out mask then produces a zero factor).
        """
        column = self.table.column(predicate.column)
        low, high = predicate.code_interval(column)
        last = column.num_distinct - 1
        if low > high:
            # Unsatisfiable predicate: keep an equality on the nearest code so
            # the model still sees a constraint; the mask makes the factor 0.
            return CanonicalPredicate(_OP_EQ, int(np.clip(low, 0, last)))
        if low == 0 and high == last:
            return None
        if low == high:
            return CanonicalPredicate(_OP_EQ, low)
        if low == 0:
            return CanonicalPredicate(_OP_LE, high)
        if high == last:
            return CanonicalPredicate(_OP_GE, low)
        # Two-sided intervals only arise from multiple predicates per column,
        # each of which is canonicalised separately, so this branch is not
        # reachable from a single predicate; guard anyway.
        return CanonicalPredicate(_OP_GE, low)

    def canonical_predicates(self, query: Query) -> dict[int, list[CanonicalPredicate]]:
        """Canonical predicates of a query, grouped by column index."""
        grouped: dict[int, list[CanonicalPredicate]] = {}
        for predicate in query.predicates:
            column_index = self.table.column_index(predicate.column)
            canonical = self.canonicalize(predicate)
            if canonical is None:
                continue
            grouped.setdefault(column_index, []).append(canonical)
        for column_index, predicates in grouped.items():
            if len(predicates) > self.max_predicates:
                raise ValueError(
                    f"query has {len(predicates)} predicates on column "
                    f"{self.table.column(column_index).name!r} but the model was "
                    f"configured for at most {self.max_predicates}; "
                    f"enable multi_predicate / raise max_predicates_per_column")
        return grouped

    # ------------------------------------------------------------------
    def queries_to_code_arrays(self, queries: list[Query]
                               ) -> tuple[np.ndarray, np.ndarray]:
        """Batch of queries -> ``(values, ops)`` arrays.

        Both arrays have shape ``(batch, num_columns, max_predicates)`` and
        use ``-1`` for "no predicate in this slot".
        """
        batch = len(queries)
        shape = (batch, self.table.num_columns, self.max_predicates)
        values = np.full(shape, -1, dtype=np.int64)
        ops = np.full(shape, -1, dtype=np.int64)
        for query_index, query in enumerate(queries):
            for column_index, predicates in self.canonical_predicates(query).items():
                for slot, canonical in enumerate(predicates):
                    values[query_index, column_index, slot] = canonical.code
                    ops[query_index, column_index, slot] = canonical.op_index
        return values, ops

    def zero_out_masks(self, queries: list[Query]) -> list[np.ndarray]:
        """Per-column valid-value masks ``Pred_i(R_i, v_i)`` for a query batch.

        Element ``[column][query, code]`` is 1 when the code satisfies every
        predicate the query places on the column (1 everywhere when the
        column is unconstrained, so unconstrained factors equal 1).
        """
        masks = [np.ones((len(queries), column.num_distinct), dtype=np.float64)
                 for column in self.table.columns]
        for query_index, query in enumerate(queries):
            for predicate in query.predicates:
                column_index = self.table.column_index(predicate.column)
                column = self.table.column(column_index)
                masks[column_index][query_index] *= predicate.valid_value_mask(column)
        return masks
