"""Common interface implemented by every cardinality estimator in this repo.

Duet, the learned baselines (Naru, UAE, MSCN, DeepDB) and the traditional
baselines (Sampling, Indep, MHist) all implement :class:`CardinalityEstimator`
so the evaluation harness and the benchmark scripts can treat them uniformly.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from ..data.table import Table
from ..workload.query import Query

__all__ = ["CardinalityEstimator"]


class CardinalityEstimator(abc.ABC):
    """Abstract base class of all estimators.

    Subclasses estimate the cardinality of conjunctive selection queries on
    the single table they were built/trained on.
    """

    #: human-readable name used in result tables
    name: str = "estimator"

    def __init__(self, table: Table) -> None:
        self.table = table

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def estimate(self, query: Query) -> float:
        """Estimated number of qualifying tuples (never below 0)."""

    def estimate_batch(self, queries: Sequence[Query]) -> np.ndarray:
        """Estimate a batch of queries; subclasses may vectorise this."""
        return np.array([self.estimate(query) for query in queries], dtype=np.float64)

    # ------------------------------------------------------------------
    def estimate_selectivity(self, query: Query) -> float:
        """Estimated selectivity in [0, 1]."""
        return self.estimate(query) / max(self.table.num_rows, 1)

    def size_bytes(self) -> int:
        """Approximate size of the estimator's state (paper's Size column)."""
        return 0

    @property
    def is_deterministic(self) -> bool:
        """Whether repeated estimations of the same query give the same answer.

        Duet is deterministic by construction (no sampling at inference);
        Naru/UAE are not (Problem 4 in the paper).
        """
        return True
