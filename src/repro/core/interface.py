"""Common interface implemented by every cardinality estimator in this repo.

Duet, the learned baselines (Naru, UAE, MSCN, DeepDB) and the traditional
baselines (Sampling, Indep, MHist) all implement :class:`CardinalityEstimator`
so the evaluation harness and the benchmark scripts can treat them uniformly.
"""

from __future__ import annotations

import abc
import functools
import time
from typing import Sequence

import numpy as np

from ..data.table import Table
from ..workload.query import Query

__all__ = ["CardinalityEstimator"]


def _clamped_estimate(method):
    """Wrap an ``estimate`` implementation so it never returns below 0."""

    @functools.wraps(method)
    def wrapper(self, query):
        return max(float(method(self, query)), 0.0)

    wrapper.__clamped__ = True
    return wrapper


def _clamped_estimate_batch(method):
    """Wrap an ``estimate_batch`` implementation so it never returns below 0."""

    @functools.wraps(method)
    def wrapper(self, queries):
        estimates = np.asarray(method(self, queries), dtype=np.float64)
        return np.maximum(estimates, 0.0)

    wrapper.__clamped__ = True
    return wrapper


class CardinalityEstimator(abc.ABC):
    """Abstract base class of all estimators.

    Subclasses estimate the cardinality of conjunctive selection queries on
    the single table they were built/trained on.
    """

    #: human-readable name used in result tables
    name: str = "estimator"

    def __init__(self, table: Table) -> None:
        self.table = table

    def __init_subclass__(cls, **kwargs) -> None:
        """Enforce the "never below 0" contract on every concrete estimator.

        Any ``estimate``/``estimate_batch`` override a subclass defines is
        wrapped to clamp its result at 0, so no estimator (present or
        future) can leak a negative cardinality to callers.
        """
        super().__init_subclass__(**kwargs)
        wrappers = {"estimate": _clamped_estimate,
                    "estimate_batch": _clamped_estimate_batch}
        for name, wrap in wrappers.items():
            method = cls.__dict__.get(name)
            if (method is not None and callable(method)
                    and not getattr(method, "__isabstractmethod__", False)
                    and not getattr(method, "__clamped__", False)):
                setattr(cls, name, wrap(method))

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def estimate(self, query: Query) -> float:
        """Estimated number of qualifying tuples (never below 0)."""

    def estimate_batch(self, queries: Sequence[Query]) -> np.ndarray:
        """Estimate a batch of queries; subclasses may vectorise this."""
        return np.maximum(
            np.array([self.estimate(query) for query in queries], dtype=np.float64),
            0.0)

    def estimate_batch_timed(self, queries: Sequence[Query]
                             ) -> tuple[np.ndarray, dict]:
        """Batched serving entry point: estimates plus latency metadata.

        Returns ``(estimates, breakdown)`` where ``breakdown`` carries at
        least ``total`` (wall-clock seconds for the whole batch) and
        ``per_query`` (mean seconds per query).  Subclasses with a phase
        breakdown (Duet) extend the dictionary.
        """
        started = time.perf_counter()
        estimates = self.estimate_batch(queries)
        total = time.perf_counter() - started
        return estimates, {"total": total,
                           "per_query": total / max(len(queries), 1)}

    # ------------------------------------------------------------------
    def estimate_selectivity(self, query: Query) -> float:
        """Estimated selectivity in [0, 1]."""
        return self.estimate(query) / max(self.table.num_rows, 1)

    def size_bytes(self) -> int:
        """Approximate size of the estimator's state (paper's Size column)."""
        return 0

    @property
    def is_deterministic(self) -> bool:
        """Whether repeated estimations of the same query give the same answer.

        Duet is deterministic by construction (no sampling at inference);
        Naru/UAE are not (Problem 4 in the paper).
        """
        return True
