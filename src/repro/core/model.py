"""The Duet model: a predicate-conditioned masked autoregressive network.

The model maps an encoded *virtual tuple* (one predicate block per column,
see :mod:`repro.core.encoding`) to, for every column ``i``, a categorical
distribution over the column's distinct values conditioned on the predicates
of the preceding columns: ``P(C_i | P_<i)``.  A single forward pass therefore
provides everything Algorithm 3 needs to compute a selectivity — no
progressive sampling, no per-column inference loop.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.table import Table
from ..nn import Tensor
from ..nn import functional as F
from .config import DuetConfig
from .encoding import QueryCodec
from .mpsn import MergedMLPInference, MLPMPSN, build_mpsn

__all__ = ["DuetModel"]


class DuetModel(nn.Module):
    """Predicate-conditioned MADE with optional embeddings and MPSNs."""

    def __init__(self, table: Table, config: DuetConfig | None = None) -> None:
        super().__init__()
        self.table = table
        self.config = config or DuetConfig()
        self.codec = QueryCodec(table, self.config)
        rng = np.random.default_rng(self.config.seed)

        # Per-column learned embeddings for very large domains.
        self._embedding_columns: dict[int, nn.Embedding] = {}
        for encoder in self.codec.encoders:
            if encoder.needs_embedding:
                embedding = nn.Embedding(encoder.num_distinct, self.config.embedding_dim,
                                         rng=rng)
                setattr(self, f"embedding{encoder.column_index}", embedding)
                self._embedding_columns[encoder.column_index] = embedding

        # Per-column MPSNs when several predicates per column are allowed.
        self._mpsns: list = []
        if self.config.multi_predicate:
            for encoder in self.codec.encoders:
                mpsn = build_mpsn(encoder.predicate_width, encoder.predicate_width,
                                  self.config.mpsn, rng=rng)
                setattr(self, f"mpsn{encoder.column_index}", mpsn)
                self._mpsns.append(mpsn)

        input_bins = [encoder.predicate_width for encoder in self.codec.encoders]
        output_bins = [column.num_distinct for column in table.columns]
        self.made = nn.MADE(input_bins=input_bins, output_bins=output_bins,
                            hidden_sizes=list(self.config.hidden_sizes),
                            residual=self.config.residual, seed=self.config.seed)

    # ------------------------------------------------------------------
    @property
    def input_width(self) -> int:
        return self.made.total_input

    @property
    def num_columns(self) -> int:
        return self.table.num_columns

    # ------------------------------------------------------------------
    def rebind(self, table: Table) -> "DuetModel":
        """Re-point the model at a new snapshot of the same (domain-wise) data.

        The data lifecycle's *re-encode* path: after an append that did not
        grow any column's domain, the model's architecture still matches and
        only the table reference (row count for selectivity scaling, codes
        for further training) needs to change.  Grown domains raise a typed
        :class:`~repro.data.DomainGrowthError` — the shapes no longer match
        and a cold train is required.  Returns ``self`` for chaining.
        """
        self.codec.rebind(table)
        self.table = table
        return self

    def clone(self, table: Table | None = None) -> "DuetModel":
        """A structurally identical model with copied parameter values.

        ``table`` must carry the same domains (checked, typed error
        otherwise); it defaults to this model's own table.  Serving uses
        clones to fine-tune *off to the side* while the original keeps
        answering requests, then swaps the tuned copy in atomically.
        """
        target = table if table is not None else self.table
        self.codec.ensure_compatible(target)
        twin = DuetModel(target, self.config)
        # Same config + same domains -> same module tree, so parameters()
        # yields matching tensors in matching order.
        for ours, theirs in zip(self.parameters(), twin.parameters()):
            theirs.data[...] = ours.data
        return twin

    # ------------------------------------------------------------------
    def encode_batch(self, values: np.ndarray, ops: np.ndarray) -> Tensor:
        """Encode code-space predicate arrays into the MADE input tensor.

        ``values`` and ``ops`` have shape ``(batch, num_columns, slots)`` with
        ``-1`` marking empty predicate slots (see :class:`QueryCodec`).
        """
        values = np.asarray(values, dtype=np.int64)
        ops = np.asarray(ops, dtype=np.int64)
        if values.ndim == 2:  # allow (batch, columns) for the single-slot case
            values = values[:, :, None]
            ops = ops[:, :, None]
        batch = values.shape[0]
        fast_path = not self._embedding_columns and not self.config.multi_predicate

        if fast_path:
            blocks = [
                encoder.encode(values[:, encoder.column_index, 0],
                               ops[:, encoder.column_index, 0])
                for encoder in self.codec.encoders
            ]
            return Tensor(np.concatenate(blocks, axis=-1))

        block_tensors: list[Tensor] = []
        for encoder in self.codec.encoders:
            column_index = encoder.column_index
            column_values = values[:, column_index, :]
            column_ops = ops[:, column_index, :]
            presence = (column_ops >= 0).astype(np.float64)
            op_features = Tensor(encoder.encode_operator_features(column_ops))
            if encoder.needs_embedding:
                embedding = self._embedding_columns[column_index]
                clipped = np.where(column_values >= 0, column_values, 0)
                looked_up = embedding(clipped.reshape(-1)).reshape(
                    batch, column_values.shape[1], self.config.embedding_dim)
                value_features = looked_up * Tensor(presence[..., None])
            else:
                value_features = Tensor(encoder.encode_value_features(column_values))
            per_predicate = Tensor.concat([op_features, value_features], axis=-1)
            if self.config.multi_predicate:
                block = self._mpsns[column_index](per_predicate, presence)
            else:
                block = per_predicate[:, 0, :]
            block_tensors.append(block)
        return Tensor.concat(block_tensors, axis=-1)

    # ------------------------------------------------------------------
    def forward(self, values: np.ndarray, ops: np.ndarray) -> Tensor:
        """Single forward pass: encoded predicates -> concatenated logits."""
        return self.made(self.encode_batch(values, ops))

    def column_logits(self, outputs: Tensor, column_index: int) -> Tensor:
        return self.made.column_logits(outputs, column_index)

    def column_distribution(self, outputs: Tensor, column_index: int) -> Tensor:
        """``P(C_i | P_<i)`` as a proper distribution (softmax over the block)."""
        return F.softmax(self.column_logits(outputs, column_index), axis=-1)

    # ------------------------------------------------------------------
    def selectivity_from_outputs(self, outputs: Tensor,
                                 masks: list[np.ndarray | None]) -> Tensor:
        """Algorithm 3, lines 3-4: zero-out and multiply the per-column masses.

        ``masks[i]`` is the ``(batch, NDV_i)`` valid-value mask of column
        ``i`` or ``None`` when the column is unconstrained across the batch
        (the :meth:`QueryCodec.zero_out_masks` sentinel) — its factor is
        exactly 1 and the column's softmax is never materialised.  The
        result is differentiable, which is what enables hybrid training.
        """
        selectivity: Tensor | None = None
        for column_index in range(self.num_columns):
            mask = masks[column_index]
            if mask is None:
                continue  # unconstrained column: factor is exactly 1
            distribution = self.column_distribution(outputs, column_index)
            mask = np.asarray(mask, dtype=np.float64)
            factor = (distribution * Tensor(mask)).sum(axis=-1)
            selectivity = factor if selectivity is None else selectivity * factor
        if selectivity is None:
            batch = outputs.shape[0]
            return Tensor(np.ones(batch))
        return selectivity

    # ------------------------------------------------------------------
    def merged_mpsn_inference(self, options: "nn.PlanOptions | None" = None
                              ) -> MergedMLPInference:
        """Build the block-diagonal merged-MLP accelerator (§IV-F).

        Only valid when the model uses MLP MPSNs on every column.  The
        accelerator is itself a lowered :class:`~repro.nn.ForwardPlan`;
        ``options`` selects its dtype (shared with the compiled fast path).
        """
        if not self.config.multi_predicate:
            raise RuntimeError("the model was built without MPSNs")
        if not all(isinstance(mpsn, MLPMPSN) for mpsn in self._mpsns):
            raise RuntimeError("merged acceleration requires the MLP MPSN variant")
        return MergedMLPInference(self._mpsns, options)
