"""Algorithm 1: parallel vectorised sampling from the virtual table.

Duet does not learn from raw tuples.  For every tuple ``x`` drawn during
SGD, it samples a *virtual tuple* ``x' = (P_1, ..., P_N)`` — one predicate
per column — such that ``x`` satisfies every ``P_i``.  The model is then
trained to predict the distribution of ``x`` conditioned on ``x'``.

The paper's implementation (Algorithm 1) slices each batch per operator to
avoid expensive indexing in LibTorch and runs in a C++ extension; here the
same algorithm is expressed with vectorised NumPy:

* the batch is replicated ``mu`` times (expand coefficient) so each tuple is
  trained with several different virtual tuples per step;
* each column of each replica is assigned an operator slice (including a
  *wildcard* slice that leaves the column unconstrained, which is how the
  model learns to handle columns without predicates);
* per operator, the valid literal-code interval ``[lower, upper]`` that keeps
  the anchor value satisfying the predicate is computed, and a literal is
  drawn uniformly from it (the paper's uniform sampling under the
  "future queries are completely unknown" worst-case assumption);
* infeasible combinations (e.g. ``>`` on the smallest code) fall back to
  wildcard, mirroring the ``lower_bound < upper_bound`` mask of Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..workload.predicates import Operator
from .config import DuetConfig

__all__ = ["VirtualTupleBatch", "PredicateGuidance", "VirtualTableSampler"]

_OP_EQ = Operator.EQ.index
_OP_GT = Operator.GT.index
_OP_LT = Operator.LT.index
_OP_GE = Operator.GE.index
_OP_LE = Operator.LE.index
_WILDCARD = -1


@dataclass(frozen=True)
class VirtualTupleBatch:
    """One training batch sampled from the virtual table.

    Attributes
    ----------
    values:
        Literal codes, shape ``(batch, num_columns, max_predicates)``;
        ``-1`` marks an empty predicate slot.
    ops:
        Operator indices with the same shape and the same ``-1`` convention.
    labels:
        The anchor tuples' codes, shape ``(batch, num_columns)``; these are
        the cross-entropy targets.
    """

    values: np.ndarray
    ops: np.ndarray
    labels: np.ndarray

    @property
    def batch_size(self) -> int:
        return self.labels.shape[0]


@dataclass(frozen=True)
class PredicateGuidance:
    """Historical-workload statistics that bias Algorithm 1's sampling.

    The paper's Algorithm 1 samples predicates uniformly because it assumes
    nothing about future queries; §IV-C notes that when workloads have
    temporal locality, *importance sampling* guided by historical queries is
    possible.  This class holds the per-column statistics that guidance
    needs:

    * ``operator_weights[i]`` — relative frequency of each of the five
      operators on column ``i`` in the historical workload (plus the
      fraction of queries leaving the column unconstrained, used as the
      wildcard share), and
    * ``literal_histograms[i]`` — frequency of each literal code.

    Build one with :meth:`from_workload`.
    """

    operator_weights: list[np.ndarray]   # per column, length 6 (5 ops + wildcard)
    literal_histograms: list[np.ndarray]  # per column, length NDV

    @classmethod
    def from_workload(cls, table, workload) -> "PredicateGuidance":
        """Collect operator and literal statistics from a historical workload."""
        num_columns = table.num_columns
        operator_counts = [np.zeros(6) for _ in range(num_columns)]
        literal_counts = [np.zeros(column.num_distinct) for column in table.columns]
        for query in workload:
            constrained = set()
            for predicate in query.predicates:
                column_index = table.column_index(predicate.column)
                column = table.column(column_index)
                constrained.add(column_index)
                operator_counts[column_index][predicate.operator.index] += 1
                low, high = predicate.code_interval(column)
                if low <= high:
                    # Record the boundary code the predicate actually names:
                    # the upper end for <=/<, the lower end for >=/>/=.
                    boundary = high if predicate.operator in (Operator.LE, Operator.LT) else low
                    literal_counts[column_index][boundary] += 1
            for column_index in range(num_columns):
                if column_index not in constrained:
                    operator_counts[column_index][5] += 1
        operator_weights = []
        literal_histograms = []
        for column_index in range(num_columns):
            ops = operator_counts[column_index]
            operator_weights.append(ops / ops.sum() if ops.sum() > 0 else
                                    np.full(6, 1.0 / 6.0))
            literals = literal_counts[column_index]
            total = literals.sum()
            literal_histograms.append(literals / total if total > 0 else
                                      np.full(literals.size, 1.0 / literals.size))
        return cls(operator_weights=operator_weights, literal_histograms=literal_histograms)


class VirtualTableSampler:
    """Vectorised implementation of the paper's Algorithm 1.

    By default predicates are sampled uniformly (the paper's worst-case
    assumption about future queries).  Passing a :class:`PredicateGuidance`
    switches to importance sampling guided by a historical workload, the
    extension §IV-C describes for workloads with strong temporal locality.
    """

    def __init__(self, cardinalities: list[int], config: DuetConfig,
                 seed: int | None = None,
                 guidance: PredicateGuidance | None = None) -> None:
        if any(ndv <= 0 for ndv in cardinalities):
            raise ValueError("column cardinalities must be positive")
        self.cardinalities = list(cardinalities)
        self.config = config
        self.guidance = guidance
        self.max_predicates = (config.max_predicates_per_column
                               if config.multi_predicate else 1)
        self._rng = np.random.default_rng(config.seed if seed is None else seed)

    # ------------------------------------------------------------------
    def sample_batch(self, tuple_codes: np.ndarray) -> VirtualTupleBatch:
        """Sample virtual tuples for a batch of anchor tuples.

        ``tuple_codes`` has shape ``(batch, num_columns)``.  The anchors are
        replicated ``mu`` times, so the output batch is ``mu`` times larger.
        """
        tuple_codes = np.asarray(tuple_codes, dtype=np.int64)
        if tuple_codes.ndim != 2 or tuple_codes.shape[1] != len(self.cardinalities):
            raise ValueError(f"expected tuples of shape (batch, {len(self.cardinalities)})")
        labels = np.repeat(tuple_codes, self.config.expand_coefficient, axis=0)
        batch, num_columns = labels.shape

        values = np.full((batch, num_columns, self.max_predicates), _WILDCARD, dtype=np.int64)
        ops = np.full((batch, num_columns, self.max_predicates), _WILDCARD, dtype=np.int64)

        for column_index in range(num_columns):
            anchor = labels[:, column_index]
            ops_0, values_0 = self._sample_column(anchor, column_index)
            ops[:, column_index, 0] = ops_0
            values[:, column_index, 0] = values_0
            # Additional predicate slots (MPSN training): each extra slot is
            # filled for roughly half of the rows that already have one
            # predicate, again with an operator the anchor satisfies.
            for slot in range(1, self.max_predicates):
                extra_mask = (ops_0 >= 0) & (self._rng.uniform(size=batch) < 0.5)
                if not extra_mask.any():
                    continue
                ops_extra, values_extra = self._sample_column(
                    anchor, column_index, allow_wildcard=False)
                ops[extra_mask, column_index, slot] = ops_extra[extra_mask]
                values[extra_mask, column_index, slot] = values_extra[extra_mask]
        return VirtualTupleBatch(values=values, ops=ops, labels=labels)

    # ------------------------------------------------------------------
    def _operator_slices(self, batch: int, allow_wildcard: bool,
                         column_index: int | None = None) -> np.ndarray:
        """Assign an operator (or wildcard) to each row by contiguous slices.

        This mirrors Algorithm 1's ``DivideDataBatch``: rather than drawing
        one operator per row, the (already shuffled) batch is cut into one
        slice per operator kind, which keeps the sampling fully vectorised.
        A random permutation of the operator kinds prevents any systematic
        pairing of rows with operators across columns.

        With guidance attached, the slice sizes follow the historical
        operator frequencies of the column instead of being uniform
        (importance sampling, §IV-C).
        """
        kinds = [_OP_EQ, _OP_GT, _OP_LT, _OP_GE, _OP_LE]
        if self.guidance is not None and column_index is not None:
            guided = self.guidance.operator_weights[column_index].copy()
            if allow_wildcard:
                kinds.append(_WILDCARD)
                # Never let any kind starve completely: keep 5% uniform mass.
                weights = 0.95 * guided + 0.05 / 6.0
            else:
                weights = 0.95 * guided[:5] + 0.05 / 5.0
            weights = weights / weights.sum()
        elif allow_wildcard and self.config.wildcard_probability > 0:
            kinds.append(_WILDCARD)
            share = self.config.wildcard_probability
            weights = np.concatenate([np.full(5, (1 - share) / 5.0), [share]])
        else:
            weights = np.full(len(kinds), 1.0 / len(kinds))
        order = self._rng.permutation(len(kinds))
        kinds = [kinds[i] for i in order]
        weights = weights[order]
        boundaries = np.floor(np.cumsum(weights) * batch).astype(np.int64)
        boundaries[-1] = batch
        assignment = np.empty(batch, dtype=np.int64)
        start = 0
        for kind, end in zip(kinds, boundaries):
            assignment[start:end] = kind
            start = end
        # The rows reaching this sampler were already shuffled by the trainer,
        # but shuffle the assignment as well so repeated epochs decorrelate.
        return self._rng.permutation(assignment)

    def _sample_column(self, anchor: np.ndarray, column_index: int,
                       allow_wildcard: bool = True) -> tuple[np.ndarray, np.ndarray]:
        """Sample one predicate slot for every row of one column."""
        num_distinct = self.cardinalities[column_index]
        batch = anchor.shape[0]
        assigned = self._operator_slices(batch, allow_wildcard, column_index)
        lower = np.zeros(batch, dtype=np.int64)
        upper = np.full(batch, num_distinct - 1, dtype=np.int64)

        lower = np.where(assigned == _OP_EQ, anchor, lower)
        upper = np.where(assigned == _OP_EQ, anchor, upper)
        # "> v" is satisfied by the anchor when v < anchor  -> v in [0, anchor-1]
        upper = np.where(assigned == _OP_GT, anchor - 1, upper)
        # "< v" is satisfied when v > anchor               -> v in [anchor+1, last]
        lower = np.where(assigned == _OP_LT, anchor + 1, lower)
        # ">= v" is satisfied when v <= anchor             -> v in [0, anchor]
        upper = np.where(assigned == _OP_GE, anchor, upper)
        # "<= v" is satisfied when v >= anchor             -> v in [anchor, last]
        lower = np.where(assigned == _OP_LE, anchor, lower)

        feasible = (lower <= upper) & (assigned != _WILDCARD)
        literals = self._draw_literals(column_index, lower, upper)

        ops = np.where(feasible, assigned, _WILDCARD)
        values = np.where(feasible, literals, _WILDCARD)
        return ops, values

    def _draw_literals(self, column_index: int, lower: np.ndarray,
                       upper: np.ndarray) -> np.ndarray:
        """Draw one literal code per row inside ``[lower, upper]``.

        Uniform by default; with guidance attached, draws follow the
        historical literal histogram restricted to the feasible interval
        (falling back to uniform where the restricted mass is zero).
        """
        batch = lower.shape[0]
        span = np.maximum(upper - lower + 1, 1)
        offsets = np.floor(self._rng.uniform(size=batch) * span).astype(np.int64)
        uniform_literals = lower + np.minimum(offsets, span - 1)
        if self.guidance is None:
            return uniform_literals

        histogram = self.guidance.literal_histograms[column_index]
        cumulative = np.concatenate([[0.0], np.cumsum(histogram)])
        low_clipped = np.clip(lower, 0, histogram.size - 1)
        high_clipped = np.clip(upper, 0, histogram.size - 1)
        mass_low = cumulative[low_clipped]
        mass_high = cumulative[high_clipped + 1]
        restricted_mass = mass_high - mass_low
        draws = mass_low + self._rng.uniform(size=batch) * restricted_mass
        guided_literals = np.searchsorted(cumulative, draws, side="right") - 1
        guided_literals = np.clip(guided_literals, low_clipped, high_clipped)
        return np.where(restricted_mass > 1e-12, guided_literals, uniform_literals)

    # ------------------------------------------------------------------
    def verify_batch(self, batch: VirtualTupleBatch) -> bool:
        """Check the core invariant: every anchor satisfies its virtual tuple.

        Used by tests and by failure-injection checks; returns True when the
        invariant holds for every (row, column, slot).
        """
        comparisons = {
            _OP_EQ: lambda anchor, literal: anchor == literal,
            _OP_GT: lambda anchor, literal: anchor > literal,
            _OP_LT: lambda anchor, literal: anchor < literal,
            _OP_GE: lambda anchor, literal: anchor >= literal,
            _OP_LE: lambda anchor, literal: anchor <= literal,
        }
        for slot in range(batch.ops.shape[2]):
            for op_index, comparison in comparisons.items():
                mask = batch.ops[:, :, slot] == op_index
                if not mask.any():
                    continue
                anchors = batch.labels[mask]
                literals = batch.values[:, :, slot][mask]
                if not comparison(anchors, literals).all():
                    return False
        return True
