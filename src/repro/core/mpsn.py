"""Multiple Predicates Supporting Networks (MPSN, §IV-F of the paper).

A query may place several predicates on one column (``age >= 20 AND
age <= 30``).  The MADE input block of a column has a fixed width, so the
variable-length list of predicate encodings must be embedded into that fixed
width.  The paper proposes three candidate networks and picks the MLP one
for efficiency:

* ``MLPMPSN`` — each predicate is embedded by a small MLP, the embeddings
  are summed (order-irrelevant, the paper's preferred property);
* ``RNNMPSN`` — an LSTM consumes the predicates, a fully connected layer
  maps each step output, and the mapped outputs are summed;
* ``RecursiveMPSN`` — ``out = MLP(encoding_j || out)``, folding predicates
  one by one.

The paper also describes an inference-time acceleration that merges all
per-column MLP MPSNs into a single block-diagonal network so one matrix
multiplication serves all columns; :class:`MergedMLPInference` implements it
and the tests check it is numerically identical to the per-column networks.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import Tensor
from .config import MPSNConfig

__all__ = ["MLPMPSN", "RNNMPSN", "RecursiveMPSN", "build_mpsn", "MergedMLPInference"]


class _BaseMPSN(nn.Module):
    """Common interface: embed ``(batch, slots, width)`` predicates to ``(batch, out)``."""

    def __init__(self, input_width: int, output_width: int) -> None:
        super().__init__()
        self.input_width = input_width
        self.output_width = output_width

    def forward(self, predicate_encodings: Tensor, presence: np.ndarray) -> Tensor:
        raise NotImplementedError

    @staticmethod
    def _presence_weights(presence: np.ndarray) -> Tensor:
        """Presence mask as a ``(batch, slots, 1)`` constant tensor."""
        presence = np.asarray(presence, dtype=np.float64)
        return Tensor(presence[..., None])


class MLPMPSN(_BaseMPSN):
    """Per-predicate MLP followed by a sum over the predicate slots."""

    def __init__(self, input_width: int, output_width: int, config: MPSNConfig,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__(input_width, output_width)
        layers: list[nn.Module] = []
        width = input_width
        for _ in range(config.num_layers):
            layers.append(nn.Linear(width, config.hidden_size, rng=rng))
            layers.append(nn.ReLU())
            width = config.hidden_size
        layers.append(nn.Linear(width, output_width, rng=rng))
        self.network = nn.Sequential(*layers)

    def forward(self, predicate_encodings: Tensor, presence: np.ndarray) -> Tensor:
        embedded = self.network(predicate_encodings)
        weighted = embedded * self._presence_weights(presence)
        return weighted.sum(axis=1)


class RNNMPSN(_BaseMPSN):
    """LSTM over the predicate slots; per-step outputs are mapped and summed."""

    def __init__(self, input_width: int, output_width: int, config: MPSNConfig,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__(input_width, output_width)
        self.lstm = nn.LSTM(input_width, config.hidden_size,
                            num_layers=config.num_layers, rng=rng)
        self.head = nn.Linear(config.hidden_size, output_width, rng=rng)

    def forward(self, predicate_encodings: Tensor, presence: np.ndarray) -> Tensor:
        slots = predicate_encodings.shape[1]
        sequence = [predicate_encodings[:, slot, :] for slot in range(slots)]
        outputs = self.lstm(sequence)
        presence = np.asarray(presence, dtype=np.float64)
        total: Tensor | None = None
        for slot, output in enumerate(outputs):
            mapped = self.head(output) * Tensor(presence[:, slot:slot + 1])
            total = mapped if total is None else total + mapped
        return total


class RecursiveMPSN(_BaseMPSN):
    """Recursive fold: ``out = MLP(encoding_slot || out)`` starting from zeros."""

    def __init__(self, input_width: int, output_width: int, config: MPSNConfig,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__(input_width, output_width)
        layers: list[nn.Module] = []
        width = input_width + output_width
        for _ in range(config.num_layers):
            layers.append(nn.Linear(width, config.hidden_size, rng=rng))
            layers.append(nn.ReLU())
            width = config.hidden_size
        layers.append(nn.Linear(width, output_width, rng=rng))
        self.network = nn.Sequential(*layers)

    def forward(self, predicate_encodings: Tensor, presence: np.ndarray) -> Tensor:
        batch = predicate_encodings.shape[0]
        slots = predicate_encodings.shape[1]
        presence = np.asarray(presence, dtype=np.float64)
        state = Tensor(np.zeros((batch, self.output_width)))
        for slot in range(slots):
            step_input = Tensor.concat(
                [predicate_encodings[:, slot, :], state], axis=-1)
            candidate = self.network(step_input)
            keep = Tensor(presence[:, slot:slot + 1])
            # Slots without a predicate leave the state untouched.
            state = candidate * keep + state * (1.0 - keep)
        return state


def build_mpsn(input_width: int, output_width: int, config: MPSNConfig,
               rng: np.random.Generator | None = None) -> _BaseMPSN:
    """Factory selecting the MPSN variant named in the configuration."""
    if config.kind == "mlp":
        return MLPMPSN(input_width, output_width, config, rng=rng)
    if config.kind == "rnn":
        return RNNMPSN(input_width, output_width, config, rng=rng)
    if config.kind == "recursive":
        return RecursiveMPSN(input_width, output_width, config, rng=rng)
    raise ValueError(f"unknown MPSN kind {config.kind!r}")


class MergedMLPInference:
    """Inference-time acceleration merging all per-column MLP MPSNs.

    The per-column MLPs (same depth, same activation) are merged layer by
    layer into block-diagonal weight matrices and lowered into a single
    :class:`~repro.nn.inference.ForwardPlan`, so one fused pass (with
    reusable ``out=`` buffers) embeds the predicates of every column at
    once.  This reproduces the paper's "Parallel Acceleration for MLP MPSN"
    and is mathematically identical to running the per-column networks
    separately.
    """

    def __init__(self, mpsns: list[MLPMPSN],
                 options: "nn.PlanOptions | None" = None) -> None:
        if not mpsns:
            raise ValueError("at least one MPSN is required")
        if not all(isinstance(mpsn, MLPMPSN) for mpsn in mpsns):
            raise TypeError("the merged acceleration only applies to MLP MPSNs")
        depths = {len(list(mpsn.network)) for mpsn in mpsns}
        if len(depths) != 1:
            raise ValueError("all MLP MPSNs must share the same number of layers")
        self.mpsns = mpsns
        self.options = options or nn.PlanOptions()
        self.input_widths = [mpsn.input_width for mpsn in mpsns]
        self.output_widths = [mpsn.output_width for mpsn in mpsns]
        self.plan = nn.ForwardPlan(self._merge_stage_specs(), self.options)

    def _merge_stage_specs(self) -> list["nn.StageSpec"]:
        """Merge each depth level into one block-diagonal fused stage."""
        per_column_specs = [mpsn.network.export_stage_specs() for mpsn in self.mpsns]
        merged: list[nn.StageSpec] = []
        for level_specs in zip(*per_column_specs):
            weights = [spec.weight for spec in level_specs]
            biases = [spec.bias for spec in level_specs]
            block = np.zeros((sum(w.shape[0] for w in weights),
                              sum(w.shape[1] for w in weights)))
            row = column = 0
            for weight in weights:
                block[row:row + weight.shape[0], column:column + weight.shape[1]] = weight
                row += weight.shape[0]
                column += weight.shape[1]
            merged.append(nn.StageSpec(block, np.concatenate(biases),
                                       activation=level_specs[0].activation))
        return merged

    def forward(self, per_column_encodings: list[np.ndarray],
                per_column_presence: list[np.ndarray]) -> list[np.ndarray]:
        """Embed every column's predicates with one pass through the merged net.

        ``per_column_encodings[i]`` has shape ``(batch, slots, width_i)``;
        the return value is one ``(batch, output_width_i)`` array per column.
        """
        batch = per_column_encodings[0].shape[0]
        slots = per_column_encodings[0].shape[1]
        stacked = np.concatenate(
            [np.asarray(encoding, dtype=np.float64) for encoding in per_column_encodings],
            axis=-1)
        hidden = self.plan.run(stacked.reshape(batch * slots, -1))
        hidden = hidden.reshape(batch, slots, -1)
        outputs: list[np.ndarray] = []
        offset = 0
        for column_index, width in enumerate(self.output_widths):
            presence = np.asarray(per_column_presence[column_index], dtype=np.float64)
            block = hidden[:, :, offset:offset + width]
            outputs.append(np.einsum("bsw,bs->bw", block, presence))
            offset += width
        return outputs
