"""Training loops for Duet: data-driven (Algorithm 1 + cross-entropy) and
hybrid (Algorithm 2, ``L = L_data + lambda * log2(QError + 1)``).

``DuetTrainer`` covers both modes: pass a labelled training workload to get
hybrid training ("Duet" in the paper's tables), pass none — or set
``lambda_query = 0`` — for pure data-driven training ("DuetD").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .. import nn
from ..nn import Tensor
from ..nn import functional as F
from ..data.store import DomainGrowthError, TableDelta
from ..data.table import Table
from ..workload.workload import Workload
from .config import DuetConfig
from .model import DuetModel
from .virtual_table import PredicateGuidance, VirtualTableSampler

__all__ = ["EpochStats", "TrainingHistory", "DuetTrainer"]


@dataclass(frozen=True)
class EpochStats:
    """Aggregated statistics of one training epoch."""

    epoch: int
    data_loss: float
    query_loss: float
    raw_qerror: float
    duration_seconds: float
    tuples_per_second: float
    evaluation: float | None = None


@dataclass
class TrainingHistory:
    """Per-epoch statistics collected during training."""

    epochs: list[EpochStats] = field(default_factory=list)

    def append(self, stats: EpochStats) -> None:
        self.epochs.append(stats)

    @property
    def data_losses(self) -> list[float]:
        return [stats.data_loss for stats in self.epochs]

    @property
    def query_losses(self) -> list[float]:
        return [stats.query_loss for stats in self.epochs]

    @property
    def raw_qerrors(self) -> list[float]:
        return [stats.raw_qerror for stats in self.epochs]

    @property
    def evaluations(self) -> list[float | None]:
        return [stats.evaluation for stats in self.epochs]

    @property
    def mean_throughput(self) -> float:
        if not self.epochs:
            return 0.0
        return float(np.mean([stats.tuples_per_second for stats in self.epochs]))

    def best_epoch(self) -> int:
        """Epoch index with the best (lowest) evaluation value."""
        scored = [(stats.evaluation, stats.epoch) for stats in self.epochs
                  if stats.evaluation is not None]
        if not scored:
            raise ValueError("no evaluation values were recorded")
        return min(scored)[1]


class DuetTrainer:
    """Implements Algorithm 2 (hybrid training) and its data-only ablation."""

    def __init__(
        self,
        model: DuetModel,
        table: Table,
        training_workload: Workload | None = None,
        config: DuetConfig | None = None,
        seed: int | None = None,
        guidance: "PredicateGuidance | None" = None,
        train_rows: np.ndarray | None = None,
        negative_codes: np.ndarray | None = None,
        negative_weight: float | None = None,
        throttle: "Callable[[], None] | None" = None,
    ) -> None:
        self.model = model
        self.table = table
        self.config = config or model.config
        self.workload = training_workload
        if self.workload is not None and not self.workload.is_labeled:
            self.workload.label(table)
        self.sampler = VirtualTableSampler(table.cardinalities, self.config, seed=seed,
                                           guidance=guidance)
        self.optimizer = nn.Adam(model.parameters(), lr=self.config.learning_rate)
        self._rng = np.random.default_rng(self.config.seed if seed is None else seed)
        #: table row indices an epoch iterates over; :meth:`fine_tune` passes
        #: the appended rows plus a replay sample so only that slice of a
        #: large table is ever gathered into memory
        self.train_row_indices = (np.arange(table.num_rows) if train_rows is None
                                  else np.asarray(train_rows, dtype=np.int64))
        #: optional backpressure hook called after every optimiser step;
        #: a background tuner passes one that periodically sleeps so the
        #: GIL (and with it serving traffic) is never starved for long
        self.throttle = throttle
        self._codes = table.code_matrix(None if train_rows is None
                                        else self.train_row_indices)
        #: code matrix of *removed* tuples (negative replay): each step a
        #: sample of them runs through the same virtual-table objective, but
        #: as a hinge penalty active only while the model still assigns them
        #: more likelihood than a uniform model would — "unlearn down to
        #: background level, then stop" (which keeps the penalty bounded and
        #: the training stable, unlike unbounded gradient ascent)
        self._negative_codes = (np.asarray(negative_codes, dtype=np.int64)
                                if negative_codes is not None
                                and len(negative_codes) else None)
        self.negative_weight = (self.config.negative_weight
                                if negative_weight is None
                                else float(negative_weight))
        # Uniform-model cross-entropy over the columns: sum of ln(NDV).
        self._negative_margin = float(sum(
            np.log(max(cardinality, 1)) for cardinality in table.cardinalities))
        self._query_arrays = None
        if self.hybrid:
            # Pre-translate the training workload once; batches are sliced per
            # step, which is much cheaper than re-encoding queries every step.
            values, ops, masks = self.model.codec.translate_batch(self.workload.queries)
            self._query_arrays = (values, ops, masks,
                                  np.asarray(self.workload.cardinalities, dtype=np.float64))

    # ------------------------------------------------------------------
    @property
    def hybrid(self) -> bool:
        """Whether query supervision is used (the paper's "Duet" vs "DuetD")."""
        return self.workload is not None and self.config.lambda_query > 0

    # ------------------------------------------------------------------
    def _iterate_batches(self):
        order = self._rng.permutation(self._codes.shape[0])
        for start in range(0, order.size, self.config.batch_size):
            yield self._codes[order[start:start + self.config.batch_size]]

    def _query_batch(self):
        values, ops, masks, cards = self._query_arrays
        count = min(self.config.query_batch_size, values.shape[0])
        picked = self._rng.choice(values.shape[0], size=count, replace=False)
        # None marks a column no query constrains (see zero_out_masks).
        picked_masks = [mask[picked] if mask is not None else None for mask in masks]
        return values[picked], ops[picked], picked_masks, cards[picked]

    # ------------------------------------------------------------------
    def _data_loss(self, batch_codes: np.ndarray) -> Tensor:
        """Unsupervised loss: cross-entropy on the virtual-table sample."""
        virtual = self.sampler.sample_batch(batch_codes)
        outputs = self.model.forward(virtual.values, virtual.ops)
        loss: Tensor | None = None
        for column_index in range(self.table.num_columns):
            logits = self.model.column_logits(outputs, column_index)
            column_loss = F.cross_entropy(logits, virtual.labels[:, column_index])
            loss = column_loss if loss is None else loss + column_loss
        return loss

    def _negative_loss(self) -> Tensor:
        """Negative-replay hinge on a sample of removed tuples.

        The removed tuples run through the *same* Algorithm 1 objective as
        the data loss — virtual-table predicates sampled around them,
        per-column cross-entropy — but mirrored: the penalty is
        ``relu(margin - CE)`` with the margin at the uniform model's
        cross-entropy, so gradients push the removed tuples' likelihood
        *down*, and vanish once they are no more likely than background.
        """
        count = min(self.config.batch_size, self._negative_codes.shape[0])
        picked = self._rng.choice(self._negative_codes.shape[0], size=count,
                                  replace=False)
        virtual = self.sampler.sample_batch(self._negative_codes[picked])
        outputs = self.model.forward(virtual.values, virtual.ops)
        ce: Tensor | None = None
        for column_index in range(self.table.num_columns):
            logits = self.model.column_logits(outputs, column_index)
            column_loss = F.cross_entropy(logits, virtual.labels[:, column_index])
            ce = column_loss if ce is None else ce + column_loss
        return (self._negative_margin - ce).relu()

    def _query_loss(self) -> tuple[Tensor, float]:
        """Supervised loss: mapped Q-Error on a batch of training queries."""
        values, ops, masks, cards = self._query_batch()
        outputs = self.model.forward(values, ops)
        selectivity = self.model.selectivity_from_outputs(outputs, masks)
        estimates = selectivity * float(self.table.num_rows)
        raw = F.qerror(estimates, cards)
        mapped = F.mapped_qerror_loss(estimates, cards).mean()
        return mapped, float(raw.numpy().mean())

    # ------------------------------------------------------------------
    def train_epoch(self, epoch: int, evaluation_fn=None) -> EpochStats:
        """One pass over the table (Algorithm 2's outer loop body)."""
        self.model.train()
        data_losses: list[float] = []
        query_losses: list[float] = []
        raw_qerrors: list[float] = []
        tuples_processed = 0
        started = time.perf_counter()

        for batch_codes in self._iterate_batches():
            loss = self._data_loss(batch_codes)
            data_losses.append(loss.item())
            if self._negative_codes is not None and self.negative_weight > 0:
                loss = loss + self._negative_loss() * self.negative_weight
            if self.hybrid:
                query_loss, raw_qerror = self._query_loss()
                query_losses.append(query_loss.item())
                raw_qerrors.append(raw_qerror)
                loss = loss + query_loss * self.config.lambda_query
            self.optimizer.zero_grad()
            loss.backward()
            if self.config.grad_clip:
                nn.clip_grad_norm(self.model.parameters(), self.config.grad_clip)
            self.optimizer.step()
            tuples_processed += batch_codes.shape[0]
            if self.throttle is not None:
                self.throttle()

        duration = time.perf_counter() - started
        evaluation = None
        if evaluation_fn is not None:
            evaluation = float(evaluation_fn(self.model))
        return EpochStats(
            epoch=epoch,
            data_loss=float(np.mean(data_losses)) if data_losses else 0.0,
            query_loss=float(np.mean(query_losses)) if query_losses else 0.0,
            raw_qerror=float(np.mean(raw_qerrors)) if raw_qerrors else 0.0,
            duration_seconds=duration,
            tuples_per_second=tuples_processed / max(duration, 1e-9),
            evaluation=evaluation,
        )

    def train(self, epochs: int | None = None, evaluation_fn=None) -> TrainingHistory:
        """Run the full training loop and return the per-epoch history."""
        history = TrainingHistory()
        for epoch in range(epochs if epochs is not None else self.config.epochs):
            history.append(self.train_epoch(epoch, evaluation_fn=evaluation_fn))
        return history

    # ------------------------------------------------------------------
    @classmethod
    def fine_tune(
        cls,
        snapshot: Table,
        base_model: DuetModel,
        delta: "TableDelta",
        *,
        training_workload: Workload | None = None,
        config: DuetConfig | None = None,
        epochs: int = 1,
        replay_fraction: float = 0.25,
        negative_weight: float | None = None,
        seed: int | None = None,
        throttle: "Callable[[], None] | None" = None,
    ) -> tuple["DuetTrainer", TrainingHistory]:
        """Refresh ``base_model`` on churned data instead of retraining.

        The incremental half of the paper's operational claim: Algorithm 1's
        virtual-table sampling runs over the *delta* rows (plus a replay
        sample of ``replay_fraction * churned_rows`` surviving rows against
        forgetting), so the cost is proportional to the churn, not the
        table.  Mixed deltas are absorbed from both sides: the appended
        still-live rows (the tail of ``snapshot``) are trained on directly,
        and the delta's *removed* rows are replayed as negatives — a hinge
        penalty that pushes their likelihood down toward uniform
        (``negative_weight``, default :attr:`DuetConfig.negative_weight`).
        A pure-delete delta falls back to a replay sample of surviving rows
        as its positive side, so the model always sees live data while
        unlearning the dead rows.

        ``base_model`` is rebound to ``snapshot`` (updating the row count
        selectivities scale by) and updated **in place**; appends that grew
        a column's domain raise a typed
        :class:`~repro.data.DomainGrowthError` because the model's encoding
        and output shapes no longer fit — that case needs a cold train.

        Returns ``(trainer, history)``; the trainer can keep fine-tuning
        (e.g. :meth:`finetune_on_queries` on post-append feedback).
        """
        if replay_fraction < 0:
            raise ValueError("replay_fraction must be non-negative")
        if delta.domains_grew:
            raise DomainGrowthError(
                f"columns {list(delta.grown_columns)} grew their domain between "
                f"versions {delta.base_version} and {delta.new_version}; "
                f"fine-tuning cannot change the model's shapes — train a new "
                f"model on the snapshot instead",
                columns=delta.grown_columns)
        base_model.rebind(snapshot)
        surviving = max(delta.surviving_base_rows, 0)
        removed_count = delta.removed_rows
        # Appended-and-live rows occupy the live view's tail (surviving base
        # rows keep their relative order at the front).
        appended = np.arange(surviving, snapshot.num_rows)
        replay_count = min(int(round(replay_fraction * delta.churned_rows)),
                           surviving)
        if appended.size == 0 and removed_count and replay_count == 0:
            # Pure delete with a tiny churn: still show the model live data
            # alongside the negatives.
            replay_count = min(surviving, removed_count)
        rng = np.random.default_rng((config or base_model.config).seed
                                    if seed is None else seed)
        replay = rng.choice(surviving, size=replay_count, replace=False)
        negative_codes = (delta.removed.code_matrix()
                          if removed_count else None)
        trainer = cls(base_model, snapshot, training_workload, config, seed=seed,
                      train_rows=np.concatenate([appended, replay]),
                      negative_codes=negative_codes,
                      negative_weight=negative_weight,
                      throttle=throttle)
        history = trainer.train(epochs)
        return trainer, history

    # ------------------------------------------------------------------
    def finetune_on_queries(self, workload: Workload, steps: int = 50) -> list[float]:
        """Post-deployment fine-tuning on (historical) queries only.

        The paper highlights that Duet's differentiable estimation lets a
        deployed model be tuned on the queries that showed large errors.
        Returns the mapped query loss per step.
        """
        if not workload.is_labeled:
            workload.label(self.table)
        values, ops, masks = self.model.codec.translate_batch(workload.queries)
        cards = np.asarray(workload.cardinalities, dtype=np.float64)
        losses: list[float] = []
        self.model.train()
        for _ in range(steps):
            count = min(self.config.query_batch_size, values.shape[0])
            picked = self._rng.choice(values.shape[0], size=count, replace=False)
            outputs = self.model.forward(values[picked], ops[picked])
            selectivity = self.model.selectivity_from_outputs(
                outputs, [mask[picked] if mask is not None else None for mask in masks])
            estimates = selectivity * float(self.table.num_rows)
            loss = F.mapped_qerror_loss(estimates, cards[picked]).mean()
            self.optimizer.zero_grad()
            loss.backward()
            if self.config.grad_clip:
                nn.clip_grad_norm(self.model.parameters(), self.config.grad_clip)
            self.optimizer.step()
            losses.append(loss.item())
        return losses
