"""Training loops for Duet: data-driven (Algorithm 1 + cross-entropy) and
hybrid (Algorithm 2, ``L = L_data + lambda * log2(QError + 1)``).

``DuetTrainer`` covers both modes: pass a labelled training workload to get
hybrid training ("Duet" in the paper's tables), pass none — or set
``lambda_query = 0`` — for pure data-driven training ("DuetD").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..nn import Tensor
from ..nn import functional as F
from ..data.table import Table
from ..workload.workload import Workload
from .config import DuetConfig
from .model import DuetModel
from .virtual_table import PredicateGuidance, VirtualTableSampler

__all__ = ["EpochStats", "TrainingHistory", "DuetTrainer"]


@dataclass(frozen=True)
class EpochStats:
    """Aggregated statistics of one training epoch."""

    epoch: int
    data_loss: float
    query_loss: float
    raw_qerror: float
    duration_seconds: float
    tuples_per_second: float
    evaluation: float | None = None


@dataclass
class TrainingHistory:
    """Per-epoch statistics collected during training."""

    epochs: list[EpochStats] = field(default_factory=list)

    def append(self, stats: EpochStats) -> None:
        self.epochs.append(stats)

    @property
    def data_losses(self) -> list[float]:
        return [stats.data_loss for stats in self.epochs]

    @property
    def query_losses(self) -> list[float]:
        return [stats.query_loss for stats in self.epochs]

    @property
    def raw_qerrors(self) -> list[float]:
        return [stats.raw_qerror for stats in self.epochs]

    @property
    def evaluations(self) -> list[float | None]:
        return [stats.evaluation for stats in self.epochs]

    @property
    def mean_throughput(self) -> float:
        if not self.epochs:
            return 0.0
        return float(np.mean([stats.tuples_per_second for stats in self.epochs]))

    def best_epoch(self) -> int:
        """Epoch index with the best (lowest) evaluation value."""
        scored = [(stats.evaluation, stats.epoch) for stats in self.epochs
                  if stats.evaluation is not None]
        if not scored:
            raise ValueError("no evaluation values were recorded")
        return min(scored)[1]


class DuetTrainer:
    """Implements Algorithm 2 (hybrid training) and its data-only ablation."""

    def __init__(
        self,
        model: DuetModel,
        table: Table,
        training_workload: Workload | None = None,
        config: DuetConfig | None = None,
        seed: int | None = None,
        guidance: "PredicateGuidance | None" = None,
    ) -> None:
        self.model = model
        self.table = table
        self.config = config or model.config
        self.workload = training_workload
        if self.workload is not None and not self.workload.is_labeled:
            self.workload.label(table)
        self.sampler = VirtualTableSampler(table.cardinalities, self.config, seed=seed,
                                           guidance=guidance)
        self.optimizer = nn.Adam(model.parameters(), lr=self.config.learning_rate)
        self._rng = np.random.default_rng(self.config.seed if seed is None else seed)
        self._codes = table.code_matrix()
        self._query_arrays = None
        if self.hybrid:
            # Pre-translate the training workload once; batches are sliced per
            # step, which is much cheaper than re-encoding queries every step.
            values, ops, masks = self.model.codec.translate_batch(self.workload.queries)
            self._query_arrays = (values, ops, masks,
                                  np.asarray(self.workload.cardinalities, dtype=np.float64))

    # ------------------------------------------------------------------
    @property
    def hybrid(self) -> bool:
        """Whether query supervision is used (the paper's "Duet" vs "DuetD")."""
        return self.workload is not None and self.config.lambda_query > 0

    # ------------------------------------------------------------------
    def _iterate_batches(self):
        order = self._rng.permutation(self.table.num_rows)
        for start in range(0, self.table.num_rows, self.config.batch_size):
            yield self._codes[order[start:start + self.config.batch_size]]

    def _query_batch(self):
        values, ops, masks, cards = self._query_arrays
        count = min(self.config.query_batch_size, values.shape[0])
        picked = self._rng.choice(values.shape[0], size=count, replace=False)
        # None marks a column no query constrains (see zero_out_masks).
        picked_masks = [mask[picked] if mask is not None else None for mask in masks]
        return values[picked], ops[picked], picked_masks, cards[picked]

    # ------------------------------------------------------------------
    def _data_loss(self, batch_codes: np.ndarray) -> Tensor:
        """Unsupervised loss: cross-entropy on the virtual-table sample."""
        virtual = self.sampler.sample_batch(batch_codes)
        outputs = self.model.forward(virtual.values, virtual.ops)
        loss: Tensor | None = None
        for column_index in range(self.table.num_columns):
            logits = self.model.column_logits(outputs, column_index)
            column_loss = F.cross_entropy(logits, virtual.labels[:, column_index])
            loss = column_loss if loss is None else loss + column_loss
        return loss

    def _query_loss(self) -> tuple[Tensor, float]:
        """Supervised loss: mapped Q-Error on a batch of training queries."""
        values, ops, masks, cards = self._query_batch()
        outputs = self.model.forward(values, ops)
        selectivity = self.model.selectivity_from_outputs(outputs, masks)
        estimates = selectivity * float(self.table.num_rows)
        raw = F.qerror(estimates, cards)
        mapped = F.mapped_qerror_loss(estimates, cards).mean()
        return mapped, float(raw.numpy().mean())

    # ------------------------------------------------------------------
    def train_epoch(self, epoch: int, evaluation_fn=None) -> EpochStats:
        """One pass over the table (Algorithm 2's outer loop body)."""
        self.model.train()
        data_losses: list[float] = []
        query_losses: list[float] = []
        raw_qerrors: list[float] = []
        tuples_processed = 0
        started = time.perf_counter()

        for batch_codes in self._iterate_batches():
            loss = self._data_loss(batch_codes)
            data_losses.append(loss.item())
            if self.hybrid:
                query_loss, raw_qerror = self._query_loss()
                query_losses.append(query_loss.item())
                raw_qerrors.append(raw_qerror)
                loss = loss + query_loss * self.config.lambda_query
            self.optimizer.zero_grad()
            loss.backward()
            if self.config.grad_clip:
                nn.clip_grad_norm(self.model.parameters(), self.config.grad_clip)
            self.optimizer.step()
            tuples_processed += batch_codes.shape[0]

        duration = time.perf_counter() - started
        evaluation = None
        if evaluation_fn is not None:
            evaluation = float(evaluation_fn(self.model))
        return EpochStats(
            epoch=epoch,
            data_loss=float(np.mean(data_losses)) if data_losses else 0.0,
            query_loss=float(np.mean(query_losses)) if query_losses else 0.0,
            raw_qerror=float(np.mean(raw_qerrors)) if raw_qerrors else 0.0,
            duration_seconds=duration,
            tuples_per_second=tuples_processed / max(duration, 1e-9),
            evaluation=evaluation,
        )

    def train(self, epochs: int | None = None, evaluation_fn=None) -> TrainingHistory:
        """Run the full training loop and return the per-epoch history."""
        history = TrainingHistory()
        for epoch in range(epochs if epochs is not None else self.config.epochs):
            history.append(self.train_epoch(epoch, evaluation_fn=evaluation_fn))
        return history

    # ------------------------------------------------------------------
    def finetune_on_queries(self, workload: Workload, steps: int = 50) -> list[float]:
        """Post-deployment fine-tuning on (historical) queries only.

        The paper highlights that Duet's differentiable estimation lets a
        deployed model be tuned on the queries that showed large errors.
        Returns the mapped query loss per step.
        """
        if not workload.is_labeled:
            workload.label(self.table)
        values, ops, masks = self.model.codec.translate_batch(workload.queries)
        cards = np.asarray(workload.cardinalities, dtype=np.float64)
        losses: list[float] = []
        self.model.train()
        for _ in range(steps):
            count = min(self.config.query_batch_size, values.shape[0])
            picked = self._rng.choice(values.shape[0], size=count, replace=False)
            outputs = self.model.forward(values[picked], ops[picked])
            selectivity = self.model.selectivity_from_outputs(
                outputs, [mask[picked] if mask is not None else None for mask in masks])
            estimates = selectivity * float(self.table.num_rows)
            loss = F.mapped_qerror_loss(estimates, cards[picked]).mean()
            self.optimizer.zero_grad()
            loss.backward()
            if self.config.grad_clip:
                nn.clip_grad_norm(self.model.parameters(), self.config.grad_clip)
            self.optimizer.step()
            losses.append(loss.item())
        return losses
