"""Baseline cardinality estimators the paper compares Duet against.

Traditional: :class:`SamplingEstimator`, :class:`IndependenceEstimator`,
:class:`MHistEstimator`.  Query-driven: :class:`MSCNEstimator`.
Data-driven: :class:`DeepDBEstimator`, :class:`NaruEstimator`.
Hybrid: :class:`UAEEstimator`.
"""

from .base import CardinalityEstimator
from .deepdb import DeepDBEstimator
from .independence import IndependenceEstimator
from .mhist import MHistEstimator
from .mscn import MSCNEstimator
from .naru import NaruEstimator, NaruModel
from .sampling import SamplingEstimator
from .uae import UAEEstimator

__all__ = [
    "CardinalityEstimator",
    "SamplingEstimator",
    "IndependenceEstimator",
    "MHistEstimator",
    "MSCNEstimator",
    "DeepDBEstimator",
    "NaruEstimator",
    "NaruModel",
    "UAEEstimator",
]
