"""UAE: unified (hybrid) autoregressive estimation via differentiable sampling.

UAE (Wu & Cong, SIGMOD 2021) keeps Naru's value-autoregressive model and
progressive-sampling inference but makes the sampling step differentiable
with the Gumbel-Softmax trick, so labelled queries can supervise the model
alongside the unsupervised tuple likelihood.

The implementation deliberately reproduces UAE's cost profile, which is a
key point of the paper's Table III and Figure 6 analysis: the query loss
tracks gradients through ``query-batch x num_samples`` sample paths and one
forward pass per constrained column, so hybrid training is far more
expensive (in time and memory) than Duet's single-pass query loss.
"""

from __future__ import annotations

import numpy as np

from ..nn import Tensor
from ..nn import functional as F
from ..data.table import Table
from ..workload.workload import Workload
from .naru import NaruEstimator

__all__ = ["UAEEstimator"]


class UAEEstimator(NaruEstimator):
    """Hybrid (data + query) training on top of the Naru model."""

    name = "uae"

    def __init__(self, table: Table, hidden_sizes=(128, 128), residual: bool = False,
                 num_samples: int = 200, num_training_samples: int = 8,
                 learning_rate: float = 2e-3, batch_size: int = 256,
                 query_batch_size: int = 16, lambda_query: float = 1.0,
                 temperature: float = 1.0, wildcard_dropout: float = 0.25,
                 seed: int = 0) -> None:
        super().__init__(table, hidden_sizes=hidden_sizes, residual=residual,
                         num_samples=num_samples, learning_rate=learning_rate,
                         batch_size=batch_size, wildcard_dropout=wildcard_dropout,
                         seed=seed)
        if num_training_samples < 1:
            raise ValueError("num_training_samples must be positive")
        self.num_training_samples = num_training_samples
        self.query_batch_size = query_batch_size
        self.lambda_query = lambda_query
        self.temperature = temperature
        self.query_losses: list[float] = []
        self._workload: Workload | None = None
        self._workload_masks: list[dict[int, np.ndarray]] | None = None

    # ------------------------------------------------------------------
    def attach_workload(self, workload: Workload) -> "UAEEstimator":
        """Provide the labelled training workload used for the query loss."""
        if not workload.is_labeled:
            workload.label(self.table)
        self._workload = workload
        self._workload_masks = [self._query_masks(query) for query in workload.queries]
        return self

    # ------------------------------------------------------------------
    def _differentiable_estimate(self, masks: dict[int, np.ndarray]) -> Tensor:
        """Gumbel-Softmax progressive sampling for one query (differentiable).

        Returns the estimated selectivity as a scalar tensor whose gradient
        reaches the model parameters through every sampling step.
        """
        samples = self.num_training_samples
        # The running input starts as all-wildcard soft encodings.
        soft_blocks: list[Tensor] = []
        for encoder in self.model.encoders:
            soft_blocks.append(Tensor(np.zeros((samples, encoder.width))))
        probability: Tensor | None = None

        for column_index in range(self.table.num_columns):
            if column_index not in masks:
                continue
            encoded = Tensor.concat(soft_blocks, axis=-1)
            outputs = self.model.forward_encoded(encoded)
            logits = self.model.column_logits(outputs, column_index)
            distribution = F.softmax(logits, axis=-1)
            mask = Tensor(masks[column_index][None, :])
            masked = distribution * mask
            mass = masked.sum(axis=-1)
            probability = mass if probability is None else probability * mass
            # Differentiable sample of the next value: Gumbel-Softmax over the
            # masked logits, then the *expected* binary encoding of that soft
            # one-hot becomes the column's input for later steps.
            masked_logits = (masked + 1e-12).log()
            soft_one_hot = F.gumbel_softmax(masked_logits, temperature=self.temperature,
                                            rng=self._rng)
            encoder = self.model.encoders[column_index]
            bits = soft_one_hot @ Tensor(encoder.bit_matrix)
            presence = Tensor(np.ones((samples, 1)))
            soft_blocks[column_index] = Tensor.concat([presence, bits], axis=-1)

        if probability is None:
            return Tensor(np.ones(1))
        return probability.mean()

    def _query_loss(self) -> Tensor:
        if self._workload is None:
            raise RuntimeError("attach_workload() must be called before hybrid training")
        count = min(self.query_batch_size, len(self._workload))
        picked = self._rng.choice(len(self._workload), size=count, replace=False)
        loss: Tensor | None = None
        for index in picked:
            masks = self._workload_masks[index]
            selectivity = self._differentiable_estimate(masks)
            estimate = selectivity * float(self.table.num_rows)
            actual = float(self._workload.cardinalities[index])
            query_loss = F.mapped_qerror_loss(estimate, np.array([actual]))
            loss = query_loss if loss is None else loss + query_loss
        return loss / float(count)

    # ------------------------------------------------------------------
    def fit_epoch(self) -> float:
        """Hybrid epoch: tuple likelihood + Gumbel-Softmax query loss."""
        if self._workload is None:
            return super().fit_epoch()
        order = self._rng.permutation(self.table.num_rows)
        losses = []
        epoch_query_losses = []
        for start in range(0, self.table.num_rows, self.batch_size):
            batch = self._codes[order[start:start + self.batch_size]]
            loss = self._data_loss(batch)
            query_loss = self._query_loss()
            epoch_query_losses.append(query_loss.item())
            total = loss + query_loss * self.lambda_query
            self.optimizer.zero_grad()
            total.backward()
            self.optimizer.step()
            losses.append(loss.item())
        self.training_losses.append(float(np.mean(losses)))
        self.query_losses.append(float(np.mean(epoch_query_losses)))
        return self.training_losses[-1]

    def fit(self, epochs: int = 5, workload: Workload | None = None) -> "UAEEstimator":
        if workload is not None:
            self.attach_workload(workload)
        for _ in range(epochs):
            self.fit_epoch()
        return self
