"""Naru: deep autoregressive cardinality estimation with progressive sampling.

Naru (Yang et al., VLDB 2020) learns the joint tuple distribution with a
MADE over the *values* of the table (equivalently: it only ever sees
equality information) and answers range queries at inference time with
*progressive sampling*: ``s`` sample paths walk the columns in order, each
constrained column costs one forward pass over all ``s`` paths, the
per-column masses are multiplied, and the mean over paths is the estimate.

This is the O(n)-forward-pass, randomised procedure whose cost, long-tail
behaviour and instability the Duet paper analyses (Problems 1, 2, 4);
implementing it faithfully is what makes the comparison benchmarks
meaningful.
"""

from __future__ import annotations

import threading
import time
from typing import Sequence

import numpy as np

from .. import nn
from ..nn import Tensor
from ..nn import functional as F
from ..nn.inference import stable_softmax
from ..data.table import Table
from ..workload.query import Query
from .base import CardinalityEstimator

__all__ = ["NaruModel", "NaruEstimator"]


class _ValueEncoder:
    """Binary value encoding (+ presence bit) of one column, as in Naru."""

    def __init__(self, num_distinct: int) -> None:
        self.num_distinct = num_distinct
        self.bit_width = max(1, int(np.ceil(np.log2(num_distinct)))) if num_distinct > 1 else 1
        self.width = self.bit_width + 1
        codes = np.arange(num_distinct)
        self.bit_matrix = ((codes[:, None] >> np.arange(self.bit_width)) & 1).astype(np.float64)

    def encode(self, codes: np.ndarray) -> np.ndarray:
        """``codes`` with ``-1`` for wildcard -> ``(batch, width)`` features."""
        codes = np.asarray(codes, dtype=np.int64)
        present = codes >= 0
        clipped = np.where(present, codes, 0)
        bits = self.bit_matrix[clipped] * present[:, None]
        return np.concatenate([present[:, None].astype(np.float64), bits], axis=1)

    def encode_soft(self, distribution: np.ndarray) -> np.ndarray:
        """Expected encoding under a distribution over codes (used by UAE)."""
        bits = distribution @ self.bit_matrix
        presence = np.ones((distribution.shape[0], 1))
        return np.concatenate([presence, bits], axis=1)


class NaruModel(nn.Module):
    """MADE over tuple values: outputs ``P(C_i | x_<i)`` for every column."""

    def __init__(self, table: Table, hidden_sizes: Sequence[int] = (128, 128),
                 residual: bool = False, seed: int = 0) -> None:
        super().__init__()
        self.table = table
        self.encoders = [_ValueEncoder(column.num_distinct) for column in table.columns]
        input_bins = [encoder.width for encoder in self.encoders]
        output_bins = [column.num_distinct for column in table.columns]
        self.made = nn.MADE(input_bins=input_bins, output_bins=output_bins,
                            hidden_sizes=list(hidden_sizes), residual=residual, seed=seed)

    # ------------------------------------------------------------------
    def encode(self, codes: np.ndarray) -> np.ndarray:
        """Encode a ``(batch, num_columns)`` code matrix (``-1`` = wildcard)."""
        blocks = [encoder.encode(codes[:, index])
                  for index, encoder in enumerate(self.encoders)]
        return np.concatenate(blocks, axis=1)

    def forward(self, codes: np.ndarray) -> Tensor:
        return self.made(Tensor(self.encode(codes)))

    def forward_encoded(self, encoded: Tensor) -> Tensor:
        return self.made(encoded)

    def column_logits(self, outputs: Tensor, column_index: int) -> Tensor:
        return self.made.column_logits(outputs, column_index)


class NaruEstimator(CardinalityEstimator):
    """Naru baseline: data-driven training + progressive-sampling inference."""

    name = "naru"

    def __init__(self, table: Table, hidden_sizes: Sequence[int] = (128, 128),
                 residual: bool = False, num_samples: int = 200,
                 learning_rate: float = 2e-3, batch_size: int = 256,
                 wildcard_dropout: float = 0.25, seed: int = 0) -> None:
        super().__init__(table)
        self.model = NaruModel(table, hidden_sizes=hidden_sizes, residual=residual, seed=seed)
        self.num_samples = num_samples
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.wildcard_dropout = wildcard_dropout
        self._rng = np.random.default_rng(seed)
        self._codes = table.code_matrix()
        self.optimizer = nn.Adam(self.model.parameters(), lr=learning_rate)
        self.training_losses: list[float] = []
        self._plan: nn.ForwardPlan | None = None
        self._plan_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Compiled inference
    # ------------------------------------------------------------------
    def compile(self, options: "nn.PlanOptions | None" = None) -> "NaruEstimator":
        """Lower the MADE into a grad-free plan for progressive sampling.

        Every constrained column costs one forward pass over all sample
        paths, so the plan's folded masks and reusable buffers pay off
        ``n``-fold per query.  Weights are snapshotted; recompile after
        further training.
        """
        self._plan = nn.lower_module(self.model.made, options)
        return self

    @property
    def compiled(self) -> bool:
        return self._plan is not None

    # ------------------------------------------------------------------
    # Training (maximum likelihood on tuples, with wildcard dropout)
    # ------------------------------------------------------------------
    def _data_loss(self, batch_codes: np.ndarray) -> Tensor:
        inputs = batch_codes.copy()
        if self.wildcard_dropout > 0:
            dropout_mask = self._rng.uniform(size=inputs.shape) < self.wildcard_dropout
            inputs[dropout_mask] = -1
        outputs = self.model.forward(inputs)
        loss: Tensor | None = None
        for column_index in range(self.table.num_columns):
            logits = self.model.column_logits(outputs, column_index)
            column_loss = F.cross_entropy(logits, batch_codes[:, column_index])
            loss = column_loss if loss is None else loss + column_loss
        return loss

    def fit_epoch(self) -> float:
        """One pass over the table; returns the mean per-batch loss."""
        order = self._rng.permutation(self.table.num_rows)
        losses = []
        for start in range(0, self.table.num_rows, self.batch_size):
            batch = self._codes[order[start:start + self.batch_size]]
            loss = self._data_loss(batch)
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()
            losses.append(loss.item())
        mean_loss = float(np.mean(losses))
        self.training_losses.append(mean_loss)
        return mean_loss

    def fit(self, epochs: int = 5) -> "NaruEstimator":
        for _ in range(epochs):
            self.fit_epoch()
        return self

    # ------------------------------------------------------------------
    # Progressive-sampling inference
    # ------------------------------------------------------------------
    def _query_masks(self, query: Query) -> dict[int, np.ndarray]:
        masks: dict[int, np.ndarray] = {}
        for predicate in query.predicates:
            column_index = self.table.column_index(predicate.column)
            column = self.table.column(column_index)
            mask = predicate.valid_value_mask(column).astype(np.float64)
            masks[column_index] = masks.get(column_index, 1.0) * mask
        return masks

    def estimate(self, query: Query) -> float:
        estimate, _ = self.estimate_with_breakdown(query)
        return estimate

    def estimate_with_breakdown(self, query: Query) -> tuple[float, dict[str, float]]:
        """Progressive sampling with a per-phase wall-clock breakdown.

        The breakdown keys (``encoding``, ``inference``, ``sampling``) match
        the stacked bars of the paper's Figure 6.
        """
        query.validate(self.table)
        timings = {"encoding": 0.0, "inference": 0.0, "sampling": 0.0}

        start = time.perf_counter()
        masks = self._query_masks(query)
        timings["encoding"] += time.perf_counter() - start

        sample_codes = np.full((self.num_samples, self.table.num_columns), -1, dtype=np.int64)
        probabilities = np.ones(self.num_samples)
        block_slices = self.model.made.output_block_slices()
        with nn.no_grad():
            for column_index in range(self.table.num_columns):
                if column_index not in masks:
                    continue  # wildcard skipping: unconstrained columns are skipped
                start = time.perf_counter()
                if self._plan is not None:
                    # Plan buffers are shared; serialise concurrent callers.
                    with self._plan_lock:
                        outputs = self._plan.run(self.model.encode(sample_codes))
                        begin, end = block_slices[column_index]
                        distribution = np.asarray(
                            stable_softmax(outputs[:, begin:end]), dtype=np.float64)
                else:
                    outputs = self.model.forward(sample_codes)
                    logits = self.model.column_logits(outputs, column_index)
                    distribution = F.softmax(logits, axis=-1).numpy()
                timings["inference"] += time.perf_counter() - start

                start = time.perf_counter()
                masked = distribution * masks[column_index][None, :]
                masses = masked.sum(axis=1)
                probabilities *= masses
                normalised = np.where(masses[:, None] > 0,
                                      masked / np.maximum(masses[:, None], 1e-12),
                                      masks[column_index][None, :] /
                                      max(masks[column_index].sum(), 1.0))
                cumulative = np.cumsum(normalised, axis=1)
                draws = self._rng.uniform(size=(self.num_samples, 1))
                sampled = (draws < cumulative).argmax(axis=1)
                sample_codes[:, column_index] = sampled
                timings["sampling"] += time.perf_counter() - start

        selectivity = float(np.clip(probabilities.mean(), 0.0, 1.0))
        return selectivity * self.table.num_rows, timings

    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        return self.model.size_bytes()

    @property
    def is_deterministic(self) -> bool:
        return False
