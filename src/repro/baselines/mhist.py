"""Multi-dimensional histogram estimator (the paper's "MHist" baseline).

This follows the MHIST/MaxDiff family (Poosala & Ioannidis): the data space
is recursively partitioned into hyper-rectangular buckets.  At every step
the most populated bucket is split along its "most critical" dimension —
the one whose marginal distribution inside the bucket deviates most from
uniform (largest frequency gap), split at the median so both halves keep
roughly half the rows.  Each bucket stores its tuple count and per-dimension
code bounds; inside a bucket, attribute values are assumed independent and
uniformly spread over the bucket's extent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.table import Table
from ..workload.query import Query
from .base import CardinalityEstimator

__all__ = ["MHistEstimator"]


@dataclass
class _Bucket:
    """One hyper-rectangular bucket: row indices plus per-dimension bounds."""

    rows: np.ndarray           # indices into the code matrix
    lower: np.ndarray          # inclusive per-dimension lower code bound
    upper: np.ndarray          # inclusive per-dimension upper code bound

    @property
    def count(self) -> int:
        return int(self.rows.size)


class MHistEstimator(CardinalityEstimator):
    """MaxDiff-style multi-dimensional histogram."""

    name = "mhist"

    def __init__(self, table: Table, num_buckets: int = 200, seed: int = 0) -> None:
        super().__init__(table)
        if num_buckets < 1:
            raise ValueError("num_buckets must be at least 1")
        self.num_buckets = num_buckets
        self._codes = table.code_matrix()
        self._buckets = self._build()

    # ------------------------------------------------------------------
    def _build(self) -> list[_Bucket]:
        num_columns = self.table.num_columns
        initial = _Bucket(
            rows=np.arange(self.table.num_rows),
            lower=np.zeros(num_columns, dtype=np.int64),
            upper=np.array([column.num_distinct - 1 for column in self.table.columns],
                           dtype=np.int64),
        )
        buckets = [initial]
        while len(buckets) < self.num_buckets:
            candidate_index = int(np.argmax([bucket.count for bucket in buckets]))
            candidate = buckets[candidate_index]
            split = self._split(candidate)
            if split is None:
                break
            buckets.pop(candidate_index)
            buckets.extend(split)
        return buckets

    def _split(self, bucket: _Bucket) -> list[_Bucket] | None:
        """Split along the most critical dimension at its median code."""
        if bucket.count <= 1:
            return None
        codes = self._codes[bucket.rows]
        best_dimension = -1
        best_score = -1.0
        best_threshold = 0
        for dimension in range(codes.shape[1]):
            low, high = bucket.lower[dimension], bucket.upper[dimension]
            if high <= low:
                continue
            column_codes = codes[:, dimension]
            counts = np.bincount(column_codes - low, minlength=high - low + 1)
            if (counts > 0).sum() < 2:
                continue
            # MaxDiff criterion: the largest gap between adjacent frequencies.
            score = float(np.abs(np.diff(counts)).max())
            if score > best_score:
                median = int(np.median(column_codes))
                threshold = min(median, high - 1)
                if threshold < low:
                    threshold = low
                best_dimension, best_score, best_threshold = dimension, score, threshold
        if best_dimension < 0:
            return None
        column_codes = codes[:, best_dimension]
        left_rows = bucket.rows[column_codes <= best_threshold]
        right_rows = bucket.rows[column_codes > best_threshold]
        if left_rows.size == 0 or right_rows.size == 0:
            return None
        left = _Bucket(rows=left_rows, lower=bucket.lower.copy(), upper=bucket.upper.copy())
        right = _Bucket(rows=right_rows, lower=bucket.lower.copy(), upper=bucket.upper.copy())
        left.upper[best_dimension] = best_threshold
        right.lower[best_dimension] = best_threshold + 1
        return [left, right]

    # ------------------------------------------------------------------
    def estimate(self, query: Query) -> float:
        query.validate(self.table)
        intervals = self._query_intervals(query)
        total = 0.0
        for bucket in self._buckets:
            fraction = 1.0
            for column_index, (query_low, query_high) in intervals.items():
                bucket_low = bucket.lower[column_index]
                bucket_high = bucket.upper[column_index]
                overlap_low = max(query_low, bucket_low)
                overlap_high = min(query_high, bucket_high)
                if overlap_low > overlap_high:
                    fraction = 0.0
                    break
                extent = bucket_high - bucket_low + 1
                fraction *= (overlap_high - overlap_low + 1) / extent
            total += fraction * bucket.count
        return float(total)

    def _query_intervals(self, query: Query) -> dict[int, tuple[int, int]]:
        """Inclusive code interval per constrained column (intersected)."""
        intervals: dict[int, tuple[int, int]] = {}
        for predicate in query.predicates:
            column_index = self.table.column_index(predicate.column)
            column = self.table.column(column_index)
            low, high = predicate.code_interval(column)
            if column_index in intervals:
                existing_low, existing_high = intervals[column_index]
                low, high = max(low, existing_low), min(high, existing_high)
            intervals[column_index] = (low, high)
        return intervals

    def size_bytes(self) -> int:
        per_bucket = 8 + 2 * 8 * self.table.num_columns  # count + bounds
        return len(self._buckets) * per_bucket
