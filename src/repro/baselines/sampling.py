"""Uniform-sampling estimator (the paper's "Sampling" baseline).

A ``p%`` uniform sample of the table is kept in memory; a query is answered
by evaluating its predicates on the sample and scaling the count up by the
sampling rate.  Cheap, unbiased, but noisy for selective queries — exactly
the trade-off the paper's Table II shows.
"""

from __future__ import annotations

import numpy as np

from ..data.table import Table
from ..workload.query import Query
from .base import CardinalityEstimator

__all__ = ["SamplingEstimator"]


class SamplingEstimator(CardinalityEstimator):
    """Estimate by scanning a uniform row sample."""

    name = "sampling"

    def __init__(self, table: Table, sample_fraction: float = 0.01,
                 seed: int = 0) -> None:
        super().__init__(table)
        if not 0 < sample_fraction <= 1:
            raise ValueError("sample_fraction must be in (0, 1]")
        self.sample_fraction = sample_fraction
        rng = np.random.default_rng(seed)
        sample_size = max(1, int(round(table.num_rows * sample_fraction)))
        indices = rng.choice(table.num_rows, size=sample_size, replace=False)
        self._sample = table.code_matrix()[indices]

    # ------------------------------------------------------------------
    @property
    def sample_size(self) -> int:
        return self._sample.shape[0]

    def estimate(self, query: Query) -> float:
        query.validate(self.table)
        mask = np.ones(self.sample_size, dtype=bool)
        for predicate in query.predicates:
            column_index = self.table.column_index(predicate.column)
            column = self.table.column(column_index)
            mask &= predicate.evaluate_codes(column, self._sample[:, column_index])
        scale = self.table.num_rows / self.sample_size
        return float(mask.sum()) * scale

    def size_bytes(self) -> int:
        return int(self._sample.nbytes)
