"""MSCN-style query-driven estimator (Kipf et al., the paper's "MSCN" baseline).

MSCN treats cardinality estimation as regression from a featurised query to
its (log-)cardinality.  For single-table selection queries its set
convolution reduces to: embed every predicate with a shared MLP, average the
embeddings, and regress with a second MLP.  The model is trained purely on
labelled queries, which is why it suffers from workload drift — the property
Duet's Rand-Q experiments expose.

The predicted target is the normalised log-cardinality
``log(card + 1) / log(|T| + 1)`` squashed through a sigmoid, the standard
MSCN trick that keeps the regression target in ``[0, 1]``.
"""

from __future__ import annotations

import threading

import numpy as np

from .. import nn
from ..nn import Tensor
from ..nn import functional as F
from ..nn.inference import stable_sigmoid
from ..data.table import Table
from ..workload.query import Query
from ..workload.workload import Workload
from .base import CardinalityEstimator

__all__ = ["MSCNEstimator"]


class _MSCNNetwork(nn.Module):
    """Shared predicate MLP + aggregation + output MLP."""

    def __init__(self, feature_width: int, hidden_size: int,
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.predicate_mlp = nn.Sequential(
            nn.Linear(feature_width, hidden_size, rng=rng), nn.ReLU(),
            nn.Linear(hidden_size, hidden_size, rng=rng), nn.ReLU(),
        )
        self.output_mlp = nn.Sequential(
            nn.Linear(hidden_size, hidden_size, rng=rng), nn.ReLU(),
            nn.Linear(hidden_size, 1, rng=rng),
        )

    def forward(self, features: Tensor, presence: np.ndarray) -> Tensor:
        """``features``: (batch, slots, width); ``presence``: (batch, slots)."""
        embedded = self.predicate_mlp(features)
        presence = np.asarray(presence, dtype=np.float64)
        weighted = embedded * Tensor(presence[..., None])
        counts = np.maximum(presence.sum(axis=1, keepdims=True), 1.0)
        pooled = weighted.sum(axis=1) / Tensor(counts)
        return self.output_mlp(pooled).sigmoid()


class MSCNEstimator(CardinalityEstimator):
    """Query-driven regression baseline."""

    name = "mscn"

    def __init__(self, table: Table, hidden_size: int = 64, learning_rate: float = 1e-3,
                 epochs: int = 30, batch_size: int = 128, seed: int = 0) -> None:
        super().__init__(table)
        self.hidden_size = hidden_size
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self._rng = np.random.default_rng(seed)
        # Feature: column one-hot + operator one-hot (5) + normalised literal code.
        self.feature_width = table.num_columns + 5 + 1
        self.network = _MSCNNetwork(self.feature_width, hidden_size, rng=self._rng)
        self._log_scale = float(np.log(table.num_rows + 1.0))
        self.training_losses: list[float] = []
        self._predicate_plan: nn.ForwardPlan | None = None
        self._output_plan: nn.ForwardPlan | None = None
        self._plan_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Compiled inference
    # ------------------------------------------------------------------
    def compile(self, options: "nn.PlanOptions | None" = None) -> "MSCNEstimator":
        """Lower both MLPs into grad-free plans for batched estimation.

        Weights are snapshotted; recompile after further training.
        """
        self._predicate_plan = nn.lower_module(self.network.predicate_mlp, options)
        self._output_plan = nn.lower_module(self.network.output_mlp, options)
        return self

    @property
    def compiled(self) -> bool:
        return self._predicate_plan is not None

    # ------------------------------------------------------------------
    def featurize(self, queries: list[Query]) -> tuple[np.ndarray, np.ndarray]:
        """Featurise queries into ``(batch, slots, width)`` + presence mask."""
        max_slots = max((query.num_predicates for query in queries), default=1)
        features = np.zeros((len(queries), max_slots, self.feature_width))
        presence = np.zeros((len(queries), max_slots))
        for query_index, query in enumerate(queries):
            for slot, predicate in enumerate(query.predicates):
                column_index = self.table.column_index(predicate.column)
                column = self.table.column(column_index)
                low, high = predicate.code_interval(column)
                code = low if low <= high else 0
                normalised = code / max(column.num_distinct - 1, 1)
                features[query_index, slot, column_index] = 1.0
                features[query_index, slot,
                         self.table.num_columns + predicate.operator.index] = 1.0
                features[query_index, slot, -1] = normalised
                presence[query_index, slot] = 1.0
        return features, presence

    def _targets(self, cardinalities: np.ndarray) -> np.ndarray:
        return np.log(np.maximum(cardinalities, 0) + 1.0) / self._log_scale

    # ------------------------------------------------------------------
    def fit(self, workload: Workload) -> "MSCNEstimator":
        """Train on a labelled workload."""
        if not workload.is_labeled:
            workload.label(self.table)
        features, presence = self.featurize(workload.queries)
        targets = self._targets(np.asarray(workload.cardinalities, dtype=np.float64))
        optimizer = nn.Adam(self.network.parameters(), lr=self.learning_rate)
        num_queries = features.shape[0]
        for _ in range(self.epochs):
            order = self._rng.permutation(num_queries)
            epoch_losses = []
            for start in range(0, num_queries, self.batch_size):
                picked = order[start:start + self.batch_size]
                prediction = self.network(Tensor(features[picked]), presence[picked])
                loss = F.mse_loss(prediction.reshape(-1), targets[picked])
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_losses.append(loss.item())
            self.training_losses.append(float(np.mean(epoch_losses)))
        return self

    # ------------------------------------------------------------------
    def estimate(self, query: Query) -> float:
        return float(self.estimate_batch([query])[0])

    def estimate_batch(self, queries) -> np.ndarray:
        queries = list(queries)
        features, presence = self.featurize(queries)
        if self._predicate_plan is not None:
            batch, slots, width = features.shape
            with self._plan_lock:  # plan buffers are shared across calls
                embedded = self._predicate_plan.run(features.reshape(batch * slots,
                                                                     width))
                embedded = embedded.reshape(batch, slots, -1)
                counts = np.maximum(presence.sum(axis=1, keepdims=True), 1.0)
                pooled = np.einsum("bsw,bs->bw", embedded, presence) / counts
                prediction = stable_sigmoid(
                    np.asarray(self._output_plan.run(pooled),
                               dtype=np.float64)).reshape(-1)
        else:
            with nn.no_grad():
                prediction = self.network(Tensor(features), presence).numpy().reshape(-1)
        cardinalities = np.exp(prediction * self._log_scale) - 1.0
        return np.clip(cardinalities, 0.0, self.table.num_rows)

    def size_bytes(self) -> int:
        return self.network.size_bytes()
