"""Baseline estimators share the :class:`CardinalityEstimator` interface.

The interface itself lives in :mod:`repro.core.interface` (Duet implements
it too); it is re-exported here so baseline code and user code can import it
from either place.
"""

from ..core.interface import CardinalityEstimator

__all__ = ["CardinalityEstimator"]
