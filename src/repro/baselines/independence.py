"""Attribute-value-independence estimator (the paper's "Indep" baseline).

Keeps the exact per-column value frequencies and multiplies the per-column
selectivities, i.e. assumes all columns are independent.  This is the
textbook System-R style estimate and the reference point for how much the
correlation-aware methods gain.
"""

from __future__ import annotations

import numpy as np

from ..data.table import Table
from ..workload.query import Query
from .base import CardinalityEstimator

__all__ = ["IndependenceEstimator"]


class IndependenceEstimator(CardinalityEstimator):
    """Product of exact single-column selectivities."""

    name = "indep"

    def __init__(self, table: Table) -> None:
        super().__init__(table)
        self._frequencies = [column.frequencies() for column in table.columns]

    def estimate(self, query: Query) -> float:
        query.validate(self.table)
        selectivity = 1.0
        for column_name in query.columns:
            column_index = self.table.column_index(column_name)
            column = self.table.column(column_index)
            mask = np.ones(column.num_distinct, dtype=bool)
            for predicate in query.predicates_on(column_name):
                mask &= predicate.valid_value_mask(column)
            selectivity *= float(self._frequencies[column_index][mask].sum())
            if selectivity == 0.0:
                break
        return selectivity * self.table.num_rows

    def size_bytes(self) -> int:
        return int(sum(frequency.nbytes for frequency in self._frequencies))
