"""DeepDB-style sum-product network estimator (the paper's "DeepDB" baseline).

DeepDB learns a Relational Sum-Product Network over the table: *product*
nodes split the columns into groups that are (approximately) independent on
the node's row subset, *sum* nodes split the rows into clusters, and leaves
hold single-column histograms.  The expectation of a query's indicator
function — its selectivity — is computed bottom-up: leaves return the
histogram mass satisfying the predicates on their column, product nodes
multiply, sum nodes average with their cluster weights.

Structure learning here follows the standard SPN recipe:

* columns are grouped by thresholding pairwise Cramér's V (connected
  components of the dependency graph) — the conditional-independence
  assumption the paper points out as DeepDB's accuracy limiter;
* rows are split with a lightweight k-means (k = 2) on normalised codes;
* recursion stops at a minimum row count, where a product of leaves is
  emitted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.statistics import cramers_v
from ..data.table import Table
from ..workload.query import Query
from .base import CardinalityEstimator

__all__ = ["DeepDBEstimator"]


# ----------------------------------------------------------------------
# SPN node types
# ----------------------------------------------------------------------

@dataclass
class _Leaf:
    """Single-column histogram leaf."""

    column_index: int
    frequencies: np.ndarray  # frequency per code, conditioned on this node's rows

    def probability(self, masks: dict[int, np.ndarray]) -> float:
        mask = masks.get(self.column_index)
        if mask is None:
            return 1.0
        return float((self.frequencies * mask).sum())

    def node_count(self) -> int:
        return 1


@dataclass
class _Product:
    """Independent column groups."""

    children: list

    def probability(self, masks: dict[int, np.ndarray]) -> float:
        result = 1.0
        for child in self.children:
            result *= child.probability(masks)
            if result == 0.0:
                break
        return result

    def node_count(self) -> int:
        return 1 + sum(child.node_count() for child in self.children)


@dataclass
class _Sum:
    """Row clusters with mixture weights."""

    weights: list[float]
    children: list

    def probability(self, masks: dict[int, np.ndarray]) -> float:
        return float(sum(weight * child.probability(masks)
                         for weight, child in zip(self.weights, self.children)))

    def node_count(self) -> int:
        return 1 + sum(child.node_count() for child in self.children)


# ----------------------------------------------------------------------

class DeepDBEstimator(CardinalityEstimator):
    """Sum-product-network estimator in the spirit of DeepDB's RSPN."""

    name = "deepdb"

    def __init__(self, table: Table, min_instances: int = 256,
                 independence_threshold: float = 0.12, max_depth: int = 12,
                 seed: int = 0) -> None:
        super().__init__(table)
        if min_instances < 2:
            raise ValueError("min_instances must be at least 2")
        self.min_instances = min_instances
        self.independence_threshold = independence_threshold
        self.max_depth = max_depth
        self._rng = np.random.default_rng(seed)
        self._codes = table.code_matrix()
        self._cardinalities = table.cardinalities
        rows = np.arange(table.num_rows)
        columns = list(range(table.num_columns))
        self.root = self._build(rows, columns, depth=0)

    # ------------------------------------------------------------------
    # Structure learning
    # ------------------------------------------------------------------
    def _build(self, rows: np.ndarray, columns: list[int], depth: int):
        if len(columns) == 1:
            return self._leaf(rows, columns[0])
        if rows.size <= self.min_instances or depth >= self.max_depth:
            return _Product([self._leaf(rows, column) for column in columns])

        groups = self._independent_groups(rows, columns)
        if len(groups) > 1:
            children = [self._build(rows, group, depth + 1) for group in groups]
            return _Product(children)

        clusters = self._cluster_rows(rows, columns)
        if clusters is None:
            return _Product([self._leaf(rows, column) for column in columns])
        children = [self._build(cluster, columns, depth + 1) for cluster in clusters]
        weights = [cluster.size / rows.size for cluster in clusters]
        return _Sum(weights, children)

    def _leaf(self, rows: np.ndarray, column_index: int) -> _Leaf:
        codes = self._codes[rows, column_index]
        counts = np.bincount(codes, minlength=self._cardinalities[column_index])
        frequencies = counts / max(rows.size, 1)
        return _Leaf(column_index, frequencies)

    def _independent_groups(self, rows: np.ndarray, columns: list[int]) -> list[list[int]]:
        """Connected components of the pairwise-dependency graph."""
        sample = rows
        if rows.size > 3_000:
            sample = self._rng.choice(rows, size=3_000, replace=False)
        adjacency = {column: set() for column in columns}
        for position, first in enumerate(columns):
            for second in columns[position + 1:]:
                dependency = cramers_v(self._codes[sample, first], self._codes[sample, second])
                if dependency >= self.independence_threshold:
                    adjacency[first].add(second)
                    adjacency[second].add(first)
        groups: list[list[int]] = []
        unvisited = set(columns)
        while unvisited:
            start = min(unvisited)
            component = []
            frontier = [start]
            while frontier:
                node = frontier.pop()
                if node not in unvisited:
                    continue
                unvisited.remove(node)
                component.append(node)
                frontier.extend(adjacency[node] & unvisited)
            groups.append(sorted(component))
        return groups

    def _cluster_rows(self, rows: np.ndarray, columns: list[int],
                      iterations: int = 8) -> list[np.ndarray] | None:
        """Two-way k-means on normalised codes; None when degenerate."""
        scales = np.array([max(self._cardinalities[column] - 1, 1) for column in columns],
                          dtype=np.float64)
        points = self._codes[np.ix_(rows, columns)] / scales
        first_center = points[self._rng.integers(0, points.shape[0])]
        distances = np.linalg.norm(points - first_center, axis=1)
        if distances.max() == 0:
            return None
        second_center = points[int(np.argmax(distances))]
        centers = np.stack([first_center, second_center])
        assignment = np.zeros(points.shape[0], dtype=np.int64)
        for _ in range(iterations):
            distances = np.linalg.norm(points[:, None, :] - centers[None, :, :], axis=2)
            assignment = np.argmin(distances, axis=1)
            for cluster in range(2):
                member = points[assignment == cluster]
                if member.size:
                    centers[cluster] = member.mean(axis=0)
        left = rows[assignment == 0]
        right = rows[assignment == 1]
        if left.size == 0 or right.size == 0:
            return None
        return [left, right]

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def estimate(self, query: Query) -> float:
        query.validate(self.table)
        masks: dict[int, np.ndarray] = {}
        for predicate in query.predicates:
            column_index = self.table.column_index(predicate.column)
            column = self.table.column(column_index)
            mask = predicate.valid_value_mask(column).astype(np.float64)
            if column_index in masks:
                masks[column_index] = masks[column_index] * mask
            else:
                masks[column_index] = mask
        selectivity = self.root.probability(masks)
        return float(np.clip(selectivity, 0.0, 1.0)) * self.table.num_rows

    # ------------------------------------------------------------------
    def num_nodes(self) -> int:
        return self.root.node_count()

    def size_bytes(self) -> int:
        def leaf_bytes(node) -> int:
            if isinstance(node, _Leaf):
                return node.frequencies.nbytes
            if isinstance(node, (_Product, _Sum)):
                return sum(leaf_bytes(child) for child in node.children) + 16
            return 0
        return leaf_bytes(self.root)
