"""Column abstraction: a named attribute with a dictionary-encoded domain.

Learned cardinality estimators operate on *discretised* columns: every raw
value (category string, integer, date, float) is mapped to an integer code in
``[0, num_distinct)`` such that the code order matches the natural order of
the raw values.  Range predicates on raw values then become range predicates
on codes, which is what Naru, UAE, and Duet all rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

__all__ = ["Column"]


@dataclass
class Column:
    """A single attribute of a relation, dictionary-encoded.

    Attributes
    ----------
    name:
        Column name as referenced by queries.
    distinct_values:
        Sorted array of the raw distinct values occurring in the column.
    codes:
        Integer codes (one per tuple) indexing into ``distinct_values``.
    """

    name: str
    distinct_values: np.ndarray
    codes: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        self.distinct_values = np.asarray(self.distinct_values)
        self.codes = np.asarray(self.codes, dtype=np.int64)
        if self.distinct_values.ndim != 1:
            raise ValueError("distinct_values must be one-dimensional")
        if self.codes.ndim != 1:
            raise ValueError("codes must be one-dimensional")
        if self.codes.size and (self.codes.min() < 0
                                or self.codes.max() >= self.distinct_values.size):
            raise ValueError(f"column {self.name!r}: codes out of range")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_values(cls, name: str, values: Iterable) -> "Column":
        """Build a column by dictionary-encoding raw ``values``.

        The distinct values are sorted so that code order matches value
        order, which keeps range predicates meaningful after encoding.
        """
        array = np.asarray(list(values) if not isinstance(values, np.ndarray) else values)
        if array.size == 0:
            raise ValueError(f"column {name!r}: cannot build from zero values")
        distinct, codes = np.unique(array, return_inverse=True)
        return cls(name=name, distinct_values=distinct, codes=codes.astype(np.int64))

    @classmethod
    def from_codes(cls, name: str, codes: np.ndarray, num_distinct: int | None = None,
                   distinct_values: np.ndarray | None = None) -> "Column":
        """Build a column directly from integer codes (synthetic datasets)."""
        codes = np.asarray(codes, dtype=np.int64)
        if distinct_values is None:
            if num_distinct is None:
                num_distinct = int(codes.max()) + 1 if codes.size else 0
            distinct_values = np.arange(num_distinct)
        return cls(name=name, distinct_values=np.asarray(distinct_values), codes=codes)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def num_distinct(self) -> int:
        """Number of distinct values (the paper's NDV)."""
        return int(self.distinct_values.size)

    @property
    def num_rows(self) -> int:
        return int(self.codes.size)

    def value_counts(self) -> np.ndarray:
        """Occurrence count of each distinct value, indexed by code."""
        return np.bincount(self.codes, minlength=self.num_distinct)

    def frequencies(self) -> np.ndarray:
        """Relative frequency of each distinct value, indexed by code."""
        counts = self.value_counts()
        return counts / max(self.num_rows, 1)

    # ------------------------------------------------------------------
    # Value <-> code translation
    # ------------------------------------------------------------------
    def code_of(self, value) -> int:
        """Exact code of a raw value; raises ``KeyError`` if absent."""
        index = int(np.searchsorted(self.distinct_values, value))
        if index >= self.num_distinct or self.distinct_values[index] != value:
            raise KeyError(f"value {value!r} not present in column {self.name!r}")
        return index

    def value_of(self, code: int):
        """Raw value for a code."""
        return self.distinct_values[int(code)]

    def searchsorted(self, value, side: str = "left") -> int:
        """Insertion index of ``value`` in the sorted distinct values.

        Used to translate range predicates on raw values into ranges of
        codes even when the boundary value itself does not occur in the
        column.
        """
        return int(np.searchsorted(self.distinct_values, value, side=side))

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Column(name={self.name!r}, ndv={self.num_distinct}, rows={self.num_rows})"
