"""Relational data substrate: columns, tables, dataset generators, statistics."""

from .column import Column
from .csv_loader import load_csv
from .datasets import (
    DATASET_BUILDERS,
    ColumnSpec,
    SyntheticTableSpec,
    generate_table,
    make_census,
    make_dataset,
    make_dmv,
    make_kddcup98,
)
from .join import JoinSpec, join_row_multiplicities, join_tables
from .statistics import ColumnStatistics, TableStatistics, correlation_matrix, cramers_v
from .store import ColumnStore, DomainGrowthError, Snapshot, TableDelta
from .table import Table

__all__ = [
    "Column",
    "Table",
    "ColumnStore",
    "Snapshot",
    "TableDelta",
    "DomainGrowthError",
    "load_csv",
    "ColumnSpec",
    "SyntheticTableSpec",
    "generate_table",
    "make_dmv",
    "make_kddcup98",
    "make_census",
    "make_dataset",
    "DATASET_BUILDERS",
    "ColumnStatistics",
    "TableStatistics",
    "cramers_v",
    "correlation_matrix",
    "JoinSpec",
    "join_tables",
    "join_row_multiplicities",
]
