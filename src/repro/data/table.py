"""Table abstraction: an ordered collection of dictionary-encoded columns."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .column import Column

__all__ = ["Table"]


class Table:
    """A relation with NumPy-backed, dictionary-encoded columns.

    All estimators in this repository consume tables through this class:
    the code matrix (``num_rows x num_columns`` of integer codes) is what the
    neural models train on and what the ground-truth executor scans.
    """

    def __init__(self, name: str, columns: Sequence[Column]) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        lengths = {column.num_rows for column in columns}
        if len(lengths) != 1:
            raise ValueError(f"columns of table {name!r} have differing lengths: {lengths}")
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in table {name!r}")
        self.name = name
        self.columns: list[Column] = list(columns)
        self._index = {column.name: position for position, column in enumerate(self.columns)}

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, name: str, data: dict[str, Iterable]) -> "Table":
        """Build a table from a mapping of column name to raw values."""
        columns = [Column.from_values(column_name, values)
                   for column_name, values in data.items()]
        return cls(name, columns)

    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return self.columns[0].num_rows

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    @property
    def cardinalities(self) -> list[int]:
        """Number of distinct values of each column, in column order."""
        return [column.num_distinct for column in self.columns]

    def column(self, name_or_index: str | int) -> Column:
        """Look a column up by name or positional index."""
        if isinstance(name_or_index, str):
            if name_or_index not in self._index:
                raise KeyError(f"table {self.name!r} has no column {name_or_index!r}")
            return self.columns[self._index[name_or_index]]
        return self.columns[int(name_or_index)]

    def column_index(self, name: str) -> int:
        if name not in self._index:
            raise KeyError(f"table {self.name!r} has no column {name!r}")
        return self._index[name]

    # ------------------------------------------------------------------
    def code_matrix(self, rows: np.ndarray | None = None) -> np.ndarray:
        """Return the ``(num_rows, num_columns)`` matrix of integer codes.

        ``rows`` selects a subset of row indices; gathering per column here
        avoids materialising the full matrix when a caller (incremental
        fine-tuning) only needs a small slice of a large table.
        """
        if rows is None:
            return np.stack([column.codes for column in self.columns], axis=1)
        rows = np.asarray(rows, dtype=np.int64)
        return np.stack([column.codes[rows] for column in self.columns], axis=1)

    def row(self, index: int) -> list:
        """Raw values of row ``index`` (mostly for debugging and examples)."""
        return [column.value_of(column.codes[index]) for column in self.columns]

    def sample_rows(self, count: int, rng: np.random.Generator | None = None) -> np.ndarray:
        """Uniformly sample ``count`` rows (with replacement) as a code matrix."""
        rng = rng or np.random.default_rng()
        indices = rng.integers(0, self.num_rows, size=count)
        return self.code_matrix()[indices]

    def select(self, rows, name: str | None = None) -> "Table":
        """Return a new table holding only ``rows`` (mask or index array).

        The row-wise sibling of :meth:`project`: a boolean mask over this
        table's rows, or an array of row indices (order-preserving, repeats
        allowed).  Dictionaries are shared, codes are gathered per column.
        """
        selector = np.asarray(rows)
        if selector.dtype == bool:
            if selector.shape != (self.num_rows,):
                raise ValueError(
                    f"selection mask has shape {selector.shape} but table "
                    f"{self.name!r} holds {self.num_rows} rows")
            selector = np.flatnonzero(selector)
        else:
            if selector.size and selector.dtype.kind not in ("i", "u"):
                raise TypeError(
                    f"row selector must be a boolean mask or integer "
                    f"indices, got dtype {selector.dtype}")
            selector = (selector.astype(np.int64) if selector.size
                        else np.empty(0, dtype=np.int64))
            if selector.size and (selector.min() < 0
                                  or selector.max() >= self.num_rows):
                raise IndexError(
                    f"row indices out of range for table {self.name!r} "
                    f"with {self.num_rows} rows")
        columns = [Column(name=column.name,
                          distinct_values=column.distinct_values,
                          codes=column.codes[selector])
                   for column in self.columns]
        return Table(name or f"{self.name}_selection", columns)

    def project(self, column_names: Sequence[str], name: str | None = None) -> "Table":
        """Return a new table containing only ``column_names`` (in that order)."""
        columns = [self.column(column_name) for column_name in column_names]
        return Table(name or f"{self.name}_projection", columns)

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Table(name={self.name!r}, rows={self.num_rows}, "
                f"columns={self.num_columns})")
