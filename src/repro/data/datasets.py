"""Synthetic datasets mirroring the paper's evaluation datasets.

The paper evaluates on three public datasets: DMV (New York vehicle
registrations, 12.37M rows, 11 columns, NDV 2-2774), Kddcup98 (95,412 rows,
100 columns, NDV 2-57) and Census (48,842 rows, 14 columns, NDV 2-123).
Those files cannot be downloaded in this offline environment, so this module
generates synthetic tables that match the characteristics that drive
cardinality-estimator behaviour:

* the column count and the per-column number of distinct values (NDV) ranges,
* heavily skewed marginal distributions (Zipf-like),
* inter-column correlation, produced by a shared latent factor per column
  group, plus a few hard functional dependencies,
* deterministic generation from a seed, so every experiment is repeatable.

Row counts are scaled down by default so the full benchmark suite runs on a
laptop; ``scale=1.0`` reproduces the paper's row counts.  The real CSVs can
be used instead through :func:`repro.data.csv_loader.load_csv`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .column import Column
from .table import Table

__all__ = [
    "ColumnSpec",
    "SyntheticTableSpec",
    "generate_table",
    "make_dmv",
    "make_kddcup98",
    "make_census",
    "make_dataset",
    "DATASET_BUILDERS",
]


@dataclass(frozen=True)
class ColumnSpec:
    """Description of one synthetic column.

    Attributes
    ----------
    name:
        Column name.
    num_distinct:
        Number of distinct values (NDV).
    skew:
        Zipf exponent of the marginal distribution; 0 means uniform and
        values around 1-1.5 are typical of real categorical attributes.
    latent_group:
        Columns sharing a latent group are correlated with each other.
    correlation:
        Weight in [0, 1] of the shared latent factor; 0 makes the column
        independent, 1 makes it a deterministic function of the latent.
    derived_from:
        Optional name of another column this one functionally depends on
        (e.g. city -> zip in DMV).  Overrides the latent mechanism.
    """

    name: str
    num_distinct: int
    skew: float = 1.0
    latent_group: int = 0
    correlation: float = 0.5
    derived_from: str | None = None


@dataclass(frozen=True)
class SyntheticTableSpec:
    """Full description of a synthetic table."""

    name: str
    num_rows: int
    columns: tuple[ColumnSpec, ...]
    seed: int = 0


def _zipf_probabilities(num_values: int, skew: float) -> np.ndarray:
    """Zipf-like probability vector over ``num_values`` items."""
    if num_values <= 0:
        raise ValueError("num_values must be positive")
    if skew <= 0:
        return np.full(num_values, 1.0 / num_values)
    ranks = np.arange(1, num_values + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    return weights / weights.sum()


def _sample_column_codes(
    spec: ColumnSpec,
    latent: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample integer codes for one column from its spec and latent factor."""
    num_rows = latent.shape[0]
    probabilities = _zipf_probabilities(spec.num_distinct, spec.skew)
    cumulative = np.cumsum(probabilities)
    # Blend the shared latent factor with independent noise, then push the
    # resulting uniform variate through the skewed inverse CDF.  Columns in
    # the same latent group therefore co-vary while keeping their marginals.
    noise = rng.uniform(0.0, 1.0, size=num_rows)
    mixed = spec.correlation * latent + (1.0 - spec.correlation) * noise
    mixed = np.clip(mixed, 0.0, np.nextafter(1.0, 0.0))
    codes = np.searchsorted(cumulative, mixed, side="right")
    # A value permutation decouples "frequent" from "small code" for some
    # columns, which is what real data looks like; keep it deterministic.
    permutation = rng.permutation(spec.num_distinct)
    return permutation[codes]


def _derive_codes(parent_codes: np.ndarray, spec: ColumnSpec,
                  rng: np.random.Generator) -> np.ndarray:
    """Functional dependency with a little noise: child ~= f(parent)."""
    multiplier = max(1, spec.num_distinct // 3)
    base = (parent_codes * multiplier) % spec.num_distinct
    # A small amount of noise keeps the dependency realistic (about 10% of
    # rows deviate by one code) without destroying the association.
    noise = (rng.uniform(size=parent_codes.size) < 0.1).astype(np.int64)
    return (base + noise) % spec.num_distinct


def generate_table(spec: SyntheticTableSpec) -> Table:
    """Generate a :class:`Table` from a :class:`SyntheticTableSpec`."""
    rng = np.random.default_rng(spec.seed)
    groups = sorted({column.latent_group for column in spec.columns})
    latents = {group: rng.uniform(0.0, 1.0, size=spec.num_rows) for group in groups}

    columns: list[Column] = []
    by_name: dict[str, np.ndarray] = {}
    for column_spec in spec.columns:
        if column_spec.derived_from is not None:
            if column_spec.derived_from not in by_name:
                raise ValueError(
                    f"column {column_spec.name!r} derives from "
                    f"{column_spec.derived_from!r} which is not defined before it")
            codes = _derive_codes(by_name[column_spec.derived_from], column_spec, rng)
        else:
            codes = _sample_column_codes(column_spec, latents[column_spec.latent_group], rng)
        by_name[column_spec.name] = codes
        columns.append(Column.from_codes(column_spec.name, codes,
                                         num_distinct=column_spec.num_distinct))
    return Table(spec.name, columns)


# ----------------------------------------------------------------------
# Paper datasets (synthetic stand-ins)
# ----------------------------------------------------------------------

_DMV_FULL_ROWS = 12_370_355
_KDD_FULL_ROWS = 95_412
_CENSUS_FULL_ROWS = 48_842


def make_dmv(scale: float = 0.004, seed: int = 0) -> Table:
    """Synthetic stand-in for the DMV vehicle-registration table.

    11 columns mixing tiny domains (2-5 values) with large categorical
    domains (up to 2,774 distinct values), strong skew, and functional
    dependencies between the large columns — the properties that make DMV
    the paper's "high cardinality / large NDV" case.
    """
    num_rows = max(1_000, int(_DMV_FULL_ROWS * scale))
    columns = (
        ColumnSpec("record_type", 4, skew=1.2, latent_group=0, correlation=0.3),
        ColumnSpec("registration_class", 75, skew=1.1, latent_group=0, correlation=0.6),
        ColumnSpec("state", 67, skew=1.6, latent_group=1, correlation=0.5),
        ColumnSpec("county", 63, skew=1.2, latent_group=1, correlation=0.7),
        ColumnSpec("body_type", 59, skew=1.4, latent_group=0, correlation=0.6),
        ColumnSpec("fuel_type", 9, skew=1.5, latent_group=0, correlation=0.4),
        ColumnSpec("reg_valid_date", 2774, skew=0.8, latent_group=2, correlation=0.8),
        ColumnSpec("reg_expiration_date", 2155, skew=0.8, derived_from="reg_valid_date"),
        ColumnSpec("color", 225, skew=1.3, latent_group=0, correlation=0.4),
        ColumnSpec("scofflaw_indicator", 2, skew=0.9, latent_group=1, correlation=0.2),
        ColumnSpec("suspension_indicator", 2, skew=1.0, latent_group=1, correlation=0.2),
    )
    return generate_table(SyntheticTableSpec("dmv", num_rows, columns, seed=seed))


def make_kddcup98(scale: float = 0.08, seed: int = 1,
                  num_columns: int = 100) -> Table:
    """Synthetic stand-in for the Kddcup98 donation table.

    100 low-NDV columns (2-57 distinct values) — the paper's
    high-dimensional scalability case.  ``num_columns`` can be reduced for
    cheap unit tests and is also used by the Figure 6 sweep.
    """
    if not 2 <= num_columns <= 100:
        raise ValueError("num_columns must be between 2 and 100")
    num_rows = max(1_000, int(_KDD_FULL_ROWS * scale))
    rng = np.random.default_rng(seed + 1000)
    ndvs = rng.integers(2, 58, size=num_columns)
    # The real table has a handful of larger-domain columns; pin a few.
    ndvs[: min(5, num_columns)] = [57, 44, 32, 21, 12][: min(5, num_columns)]
    columns = tuple(
        ColumnSpec(
            name=f"col{i:03d}",
            num_distinct=int(ndvs[i]),
            skew=float(rng.uniform(0.6, 1.8)),
            latent_group=i % 8,
            correlation=float(rng.uniform(0.2, 0.8)),
        )
        for i in range(num_columns)
    )
    return generate_table(SyntheticTableSpec("kddcup98", num_rows, columns, seed=seed))


def make_census(scale: float = 0.2, seed: int = 2) -> Table:
    """Synthetic stand-in for the UCI Census (adult) table.

    14 columns with NDV 2-123, moderate skew — the paper's "small table"
    case.
    """
    num_rows = max(1_000, int(_CENSUS_FULL_ROWS * scale))
    columns = (
        ColumnSpec("age", 74, skew=0.7, latent_group=0, correlation=0.6),
        ColumnSpec("workclass", 9, skew=1.4, latent_group=1, correlation=0.4),
        ColumnSpec("fnlwgt_bucket", 100, skew=0.5, latent_group=2, correlation=0.3),
        ColumnSpec("education", 16, skew=1.1, latent_group=0, correlation=0.7),
        ColumnSpec("education_num", 16, skew=1.1, derived_from="education"),
        ColumnSpec("marital_status", 7, skew=1.2, latent_group=0, correlation=0.5),
        ColumnSpec("occupation", 15, skew=1.0, latent_group=1, correlation=0.6),
        ColumnSpec("relationship", 6, skew=1.2, latent_group=0, correlation=0.5),
        ColumnSpec("race", 5, skew=1.8, latent_group=3, correlation=0.3),
        ColumnSpec("sex", 2, skew=0.8, latent_group=3, correlation=0.4),
        ColumnSpec("capital_gain_bucket", 123, skew=2.0, latent_group=2, correlation=0.5),
        ColumnSpec("capital_loss_bucket", 99, skew=2.0, latent_group=2, correlation=0.5),
        ColumnSpec("hours_per_week", 96, skew=0.9, latent_group=0, correlation=0.5),
        ColumnSpec("native_country", 42, skew=2.2, latent_group=3, correlation=0.4),
    )
    return generate_table(SyntheticTableSpec("census", num_rows, columns, seed=seed))


DATASET_BUILDERS = {
    "dmv": make_dmv,
    "kddcup98": make_kddcup98,
    "census": make_census,
}


def make_dataset(name: str, **kwargs) -> Table:
    """Build one of the paper's datasets by name (``dmv``/``kddcup98``/``census``)."""
    try:
        builder = DATASET_BUILDERS[name.lower()]
    except KeyError as error:
        raise KeyError(f"unknown dataset {name!r}; "
                       f"choose from {sorted(DATASET_BUILDERS)}") from error
    return builder(**kwargs)
