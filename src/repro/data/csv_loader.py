"""CSV loading so the paper's real datasets (DMV, Kddcup98, Census) can be
dropped in unchanged when they are available.

The offline reproduction uses the synthetic generators in
:mod:`repro.data.datasets`; this loader exists so that a user with the real
CSV files gets the same pipeline the paper used (dictionary encoding per
column, NaN handling, optional column subset).

Files are **streamed in two passes** through a
:class:`~repro.data.ColumnStore`: the first pass only decides each column's
type (numeric vs string, integer vs float) so the decision is global — a
column is encoded the same way whatever ``chunk_rows`` is, and the result
matches a whole-file load bit for bit; the second pass encodes chunk by
chunk.  Only ``chunk_rows`` raw rows are ever buffered, so peak memory is
bounded by the chunk size plus the encoded output instead of a full
raw-string copy of the file (the file is read twice in exchange).  The
result is the store's :class:`~repro.data.Snapshot` — a :class:`Table` like
before, now additionally carrying the store so callers can keep appending
to the same dataset.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from .store import ColumnStore, Snapshot

__all__ = ["load_csv"]

_MISSING_TOKEN = "<missing>"


def load_csv(
    path: str | Path,
    table_name: str | None = None,
    usecols: Sequence[str] | None = None,
    max_rows: int | None = None,
    delimiter: str = ",",
    chunk_rows: int = 65536,
) -> Snapshot:
    """Stream a CSV file into a dictionary-encoded :class:`Table` snapshot.

    Parameters
    ----------
    path:
        CSV file with a header row.
    usecols:
        Optional subset (and order) of columns to keep.
    max_rows:
        Optional row limit, useful for smoke tests on huge files.
    chunk_rows:
        Rows buffered per :meth:`ColumnStore.append` batch; bounds peak
        memory on huge files.  The encoded result is independent of the
        chunk size (column types are decided by a dedicated first pass).
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    if chunk_rows <= 0:
        raise ValueError("chunk_rows must be positive")

    keep_names, keep_positions = _resolve_columns(path, usecols, delimiter)

    # Pass 1: decide each column's dtype from every value it will contain.
    numeric = [True] * len(keep_names)
    integral = [True] * len(keep_names)
    empty = True
    for buffers in _iter_chunks(path, delimiter, keep_positions, max_rows,
                                chunk_rows):
        empty = False
        for slot, values in enumerate(buffers):
            if not numeric[slot]:
                continue
            try:
                parsed = np.asarray(values).astype(np.float64)
            except ValueError:
                numeric[slot] = False
                continue
            if integral[slot] and not np.all(parsed == np.round(parsed)):
                integral[slot] = False
    if empty:
        raise ValueError(f"{path} contains a header but no data rows")

    # Pass 2: encode chunk by chunk under the global type decision.
    store = ColumnStore(table_name or path.stem, keep_names)
    for buffers in _iter_chunks(path, delimiter, keep_positions, max_rows,
                                chunk_rows):
        store.append({
            name: _coerce(values, numeric[slot], integral[slot])
            for slot, (name, values) in enumerate(zip(keep_names, buffers))
        })
    return store.snapshot()


def _resolve_columns(path: Path, usecols: Sequence[str] | None,
                     delimiter: str) -> tuple[list[str], list[int]]:
    """Read the header and map the kept column names to positions."""
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration as error:
            raise ValueError(f"{path} is empty") from error
    header = [name.strip() for name in header]
    if usecols is None:
        keep_names = header
    else:
        missing = [name for name in usecols if name not in header]
        if missing:
            raise KeyError(f"columns {missing} not found in {path}")
        keep_names = list(usecols)
    return keep_names, [header.index(name) for name in keep_names]


def _iter_chunks(path: Path, delimiter: str, keep_positions: list[int],
                 max_rows: int | None, chunk_rows: int
                 ) -> Iterator[list[list[str]]]:
    """Yield per-column string buffers of at most ``chunk_rows`` rows."""
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        next(reader)  # header (validated by _resolve_columns)
        buffers: list[list[str]] = [[] for _ in keep_positions]
        buffered = 0
        consumed = 0
        for row in reader:
            if max_rows is not None and consumed >= max_rows:
                break
            if not row:
                continue
            consumed += 1
            for slot, position in enumerate(keep_positions):
                value = row[position].strip() if position < len(row) else ""
                buffers[slot].append(value if value else _MISSING_TOKEN)
            buffered += 1
            if buffered >= chunk_rows:
                yield buffers
                buffers = [[] for _ in keep_positions]
                buffered = 0
        if buffered:
            yield buffers


def _coerce(values: list[str], numeric: bool, integral: bool) -> np.ndarray:
    """Apply the column's globally decided type to one chunk of strings."""
    array = np.asarray(values)
    if not numeric:
        return array
    parsed = array.astype(np.float64)
    # Keep integers integral so the dictionary codes follow integer order.
    return parsed.astype(np.int64) if integral else parsed
