"""CSV loading so the paper's real datasets (DMV, Kddcup98, Census) can be
dropped in unchanged when they are available.

The offline reproduction uses the synthetic generators in
:mod:`repro.data.datasets`; this loader exists so that a user with the real
CSV files gets bit-for-bit the same pipeline the paper used (dictionary
encoding per column, NaN handling, optional column subset).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

import numpy as np

from .column import Column
from .table import Table

__all__ = ["load_csv"]

_MISSING_TOKEN = "<missing>"


def load_csv(
    path: str | Path,
    table_name: str | None = None,
    usecols: Sequence[str] | None = None,
    max_rows: int | None = None,
    delimiter: str = ",",
) -> Table:
    """Load a CSV file into a dictionary-encoded :class:`Table`.

    Parameters
    ----------
    path:
        CSV file with a header row.
    usecols:
        Optional subset (and order) of columns to keep.
    max_rows:
        Optional row limit, useful for smoke tests on huge files.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)

    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration as error:
            raise ValueError(f"{path} is empty") from error
        header = [name.strip() for name in header]

        if usecols is None:
            keep_names = header
        else:
            missing = [name for name in usecols if name not in header]
            if missing:
                raise KeyError(f"columns {missing} not found in {path}")
            keep_names = list(usecols)
        keep_positions = [header.index(name) for name in keep_names]

        raw_columns: list[list[str]] = [[] for _ in keep_names]
        for row_number, row in enumerate(reader):
            if max_rows is not None and row_number >= max_rows:
                break
            if not row:
                continue
            for slot, position in enumerate(keep_positions):
                value = row[position].strip() if position < len(row) else ""
                raw_columns[slot].append(value if value else _MISSING_TOKEN)

    if not raw_columns[0]:
        raise ValueError(f"{path} contains a header but no data rows")

    columns = [Column.from_values(name, _coerce(values))
               for name, values in zip(keep_names, raw_columns)]
    return Table(table_name or path.stem, columns)


def _coerce(values: list[str]) -> np.ndarray:
    """Convert a string column to numbers when every value parses cleanly."""
    array = np.asarray(values)
    try:
        numeric = array.astype(np.float64)
    except ValueError:
        return array
    # Keep integers integral so the dictionary codes follow integer order.
    if np.all(numeric == np.round(numeric)):
        return numeric.astype(np.int64)
    return numeric
