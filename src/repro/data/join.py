"""Join support: materialise key-equality joins so Duet can estimate join queries.

The paper (§III, "Supported Queries") states that Duet supports joins the
same way NeuroCard does: learn the data distribution of the *joined* table
and answer join queries against that single relation.  This module provides
the substrate for that workflow:

* :func:`join_tables` — materialise the equi-join of two dictionary-encoded
  tables on a key pair (hash join on raw key values), producing a new
  :class:`~repro.data.table.Table` whose columns are prefixed with their
  source table's name;
* :class:`JoinSpec` — a declarative description of a two-table equi-join;
* :func:`join_row_multiplicities` — the per-row fan-out counts, useful for
  sanity checks and for down-sampling very large join results.

NeuroCard's complete treatment uses the *full outer* join with NULL
annotations so a single model serves every sub-join; this reproduction
materialises the inner equi-join (no NULL semantics needed), which is
sufficient to train Duet on join results and estimate join-query
cardinalities, and documents the outer-join generalisation as future work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .column import Column
from .table import Table

__all__ = ["JoinSpec", "join_tables", "join_row_multiplicities"]


@dataclass(frozen=True)
class JoinSpec:
    """Equi-join of two tables: ``left.left_key = right.right_key``."""

    left: Table
    right: Table
    left_key: str
    right_key: str

    def __post_init__(self) -> None:
        if self.left_key not in self.left.column_names:
            raise KeyError(f"left table {self.left.name!r} has no column {self.left_key!r}")
        if self.right_key not in self.right.column_names:
            raise KeyError(f"right table {self.right.name!r} has no column "
                           f"{self.right_key!r}")

    def materialise(self, name: str | None = None,
                    max_rows: int | None = None,
                    rng: np.random.Generator | None = None) -> Table:
        """Materialise the join (see :func:`join_tables`)."""
        return join_tables(self.left, self.right, self.left_key, self.right_key,
                           name=name, max_rows=max_rows, rng=rng)


def _matching_row_pairs(left: Table, right: Table, left_key: str, right_key: str
                        ) -> tuple[np.ndarray, np.ndarray]:
    """Row-index pairs ``(left_rows, right_rows)`` of the inner equi-join."""
    left_column = left.column(left_key)
    right_column = right.column(right_key)
    left_values = left_column.distinct_values[left_column.codes]
    right_values = right_column.distinct_values[right_column.codes]

    # Hash-join on raw key values: group right row indices by key value.
    right_rows_by_value: dict = {}
    for row_index, value in enumerate(right_values):
        right_rows_by_value.setdefault(value, []).append(row_index)

    left_indices: list[int] = []
    right_indices: list[int] = []
    for row_index, value in enumerate(left_values):
        matches = right_rows_by_value.get(value)
        if not matches:
            continue
        left_indices.extend([row_index] * len(matches))
        right_indices.extend(matches)
    return (np.asarray(left_indices, dtype=np.int64),
            np.asarray(right_indices, dtype=np.int64))


def join_row_multiplicities(left: Table, right: Table, left_key: str, right_key: str
                            ) -> np.ndarray:
    """Fan-out of each left row: how many right rows it joins with."""
    left_column = left.column(left_key)
    right_column = right.column(right_key)
    right_counts: dict = {}
    right_values = right_column.distinct_values[right_column.codes]
    for value in right_values:
        right_counts[value] = right_counts.get(value, 0) + 1
    left_values = left_column.distinct_values[left_column.codes]
    return np.array([right_counts.get(value, 0) for value in left_values], dtype=np.int64)


def join_tables(left: Table, right: Table, left_key: str, right_key: str,
                name: str | None = None, max_rows: int | None = None,
                rng: np.random.Generator | None = None) -> Table:
    """Materialise the inner equi-join of ``left`` and ``right``.

    The result contains every column of both inputs, renamed to
    ``"<table>.<column>"`` (the join keys keep both copies, which is handy
    for sanity checks).  With ``max_rows`` set, a uniform sample of the join
    result is materialised instead — the standard trick for very large joins,
    and statistically adequate for training a cardinality model when paired
    with the true join size for scaling.

    Raises ``ValueError`` when the join result is empty (an estimator cannot
    be trained on an empty relation).
    """
    left_rows, right_rows = _matching_row_pairs(left, right, left_key, right_key)
    if left_rows.size == 0:
        raise ValueError(f"the join of {left.name!r} and {right.name!r} on "
                         f"{left_key!r} = {right_key!r} is empty")

    if max_rows is not None and left_rows.size > max_rows:
        rng = rng or np.random.default_rng(0)
        picked = rng.choice(left_rows.size, size=max_rows, replace=False)
        left_rows, right_rows = left_rows[picked], right_rows[picked]

    columns: list[Column] = []
    for source, rows in ((left, left_rows), (right, right_rows)):
        for column in source.columns:
            joined_codes = column.codes[rows]
            columns.append(Column(
                name=f"{source.name}.{column.name}",
                distinct_values=column.distinct_values,
                codes=joined_codes,
            ))
    return Table(name or f"{left.name}_join_{right.name}", columns)
