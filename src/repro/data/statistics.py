"""Per-table statistics used by traditional estimators and reporting.

These are the classic optimizer statistics: per-column histograms and NDV,
plus a pairwise-correlation report used to sanity-check that the synthetic
datasets actually contain the correlation structure the paper's datasets
have (without it, the independence baseline would look artificially good).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .table import Table

__all__ = ["ColumnStatistics", "TableStatistics", "cramers_v", "correlation_matrix"]


@dataclass(frozen=True)
class ColumnStatistics:
    """Summary statistics of a single column."""

    name: str
    num_distinct: int
    min_code: int
    max_code: int
    most_common_code: int
    most_common_frequency: float
    entropy: float


class TableStatistics:
    """Statistics of a whole table, computed once and reused by estimators."""

    def __init__(self, table: Table) -> None:
        self.table = table
        self.num_rows = table.num_rows
        self.columns: list[ColumnStatistics] = [
            self._column_statistics(index) for index in range(table.num_columns)
        ]

    def _column_statistics(self, index: int) -> ColumnStatistics:
        column = self.table.column(index)
        frequencies = column.frequencies()
        nonzero = frequencies[frequencies > 0]
        entropy = float(-(nonzero * np.log2(nonzero)).sum())
        most_common = int(np.argmax(frequencies))
        return ColumnStatistics(
            name=column.name,
            num_distinct=column.num_distinct,
            min_code=int(column.codes.min()),
            max_code=int(column.codes.max()),
            most_common_code=most_common,
            most_common_frequency=float(frequencies[most_common]),
            entropy=entropy,
        )

    def summary(self) -> str:
        """Human-readable one-line-per-column summary."""
        lines = [f"table {self.table.name!r}: {self.num_rows} rows, "
                 f"{self.table.num_columns} columns"]
        for statistics in self.columns:
            lines.append(
                f"  {statistics.name:<24} ndv={statistics.num_distinct:<6} "
                f"top-freq={statistics.most_common_frequency:.3f} "
                f"entropy={statistics.entropy:.2f}")
        return "\n".join(lines)


def cramers_v(codes_a: np.ndarray, codes_b: np.ndarray) -> float:
    """Cramér's V association between two dictionary-encoded columns.

    Returns a value in [0, 1]; 0 means independent, 1 means a functional
    dependency in both directions.
    """
    a = np.asarray(codes_a, dtype=np.int64)
    b = np.asarray(codes_b, dtype=np.int64)
    if a.size != b.size:
        raise ValueError("columns must have the same number of rows")
    num_a = int(a.max()) + 1
    num_b = int(b.max()) + 1
    if num_a < 2 or num_b < 2:
        return 0.0
    contingency = np.zeros((num_a, num_b))
    np.add.at(contingency, (a, b), 1.0)
    total = contingency.sum()
    row_totals = contingency.sum(axis=1, keepdims=True)
    column_totals = contingency.sum(axis=0, keepdims=True)
    expected = row_totals @ column_totals / total
    with np.errstate(divide="ignore", invalid="ignore"):
        chi2 = np.where(expected > 0, (contingency - expected) ** 2 / expected, 0.0).sum()
    phi2 = chi2 / total
    denominator = min(num_a - 1, num_b - 1)
    return float(np.sqrt(phi2 / denominator)) if denominator > 0 else 0.0


def correlation_matrix(table: Table, max_rows: int = 20_000,
                       rng: np.random.Generator | None = None) -> np.ndarray:
    """Pairwise Cramér's V matrix (subsampled for large tables)."""
    codes = table.code_matrix()
    if codes.shape[0] > max_rows:
        rng = rng or np.random.default_rng(0)
        codes = codes[rng.choice(codes.shape[0], size=max_rows, replace=False)]
    num_columns = codes.shape[1]
    matrix = np.eye(num_columns)
    for i in range(num_columns):
        for j in range(i + 1, num_columns):
            value = cramers_v(codes[:, i], codes[:, j])
            matrix[i, j] = matrix[j, i] = value
    return matrix
