"""Mutable, chunked columnar store with snapshot versioning.

The static :class:`~repro.data.table.Table` is frozen at construction, which
is fine for a one-shot reproduction but rules out the paper's operational
story: a deployed estimator absorbing *data* changes through incremental
training instead of full retrains.  This module adds the mutation lifecycle:

* :class:`ColumnStore` — per-column dictionaries plus a list of immutable
  integer-code *chunks*; ``append`` ingests batches of raw values, growing
  dictionaries as needed while keeping codes sorted by value order;
  ``delete`` tombstones live rows (by mask, indices, or predicate) without
  touching the chunk arrays; ``compact`` rewrites chunks to drop dead rows;
* :class:`Snapshot` — an immutable :class:`Table` view of the store's **live
  rows** at one point in time, carrying a monotonically increasing
  ``data_version``.  Every existing consumer (trainer, executor, codec,
  serving) takes a ``Table``, so snapshots drop into all of them unchanged;
* :class:`TableDelta` — what changed between two snapshots: the appended
  rows that are still live and the rows removed from the base's live set,
  each as their own table (full current domains), plus which column domains
  grew.  Delta labeling, incremental fine-tuning, and staleness reporting
  are all driven by deltas.

Dictionary growth and snapshot immutability interact: codes index *sorted*
distinct values, so a new value landing in the middle of a domain shifts every
code above it.  The store handles this with **copy-on-remap**: existing chunks
are never mutated — a growth append builds remapped copies for the store's
current state while older snapshots keep referencing the original arrays
(which stay consistent with the dictionaries those snapshots hold).  Appends
whose values are all already in the domain take the *domain-preserving fast
path*: no remap, no copies, chunks are shared structurally with previous
snapshots.

Deletes follow the same discipline through **per-chunk tombstone bitmaps**:
a delete never mutates a chunk (or a previously published bitmap) — it
replaces the affected chunks' bitmaps with copies carrying the new bits, so
snapshots and version metadata handed out earlier keep referencing the
bitmaps that were current when they were published.  Dictionaries never
shrink on delete: a value whose last row was tombstoned keeps its code, so
re-appending it later is a domain-preserving fast-path append with the same
code (never a reused/shifted one).  Physical reclamation is a separate,
explicit step — :meth:`ColumnStore.compact` — which rewrites the chunks
without the dead rows and starts a new *chunk epoch*; deltas spanning a
compaction degrade to the documented unknown-base behaviour.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from .column import Column
from .table import Table

__all__ = ["DomainGrowthError", "Snapshot", "TableDelta", "ColumnStore"]


class DomainGrowthError(RuntimeError):
    """A column's value domain grew in a way the consumer cannot absorb.

    Raised by consumers whose shape is baked to a snapshot's domains — the
    model's output bins and predicate encodings are sized to each column's
    NDV, so a grown domain needs a cold retrain, not a rebind/fine-tune.
    """

    def __init__(self, message: str, columns: Sequence[str] = ()) -> None:
        super().__init__(message)
        self.columns = tuple(columns)


class Snapshot(Table):
    """An immutable, versioned view of a :class:`ColumnStore`'s live rows.

    A snapshot *is* a table — same columns, codes, and API — plus:

    * ``data_version`` — the store version it captures (monotonic), and
    * ``store`` — the store it came from, so downstream layers (serving)
      can compute staleness and deltas without extra plumbing.
    """

    def __init__(self, name: str, columns: Sequence[Column], data_version: int,
                 store: "ColumnStore | None" = None) -> None:
        super().__init__(name, columns)
        self.data_version = int(data_version)
        self.store = store

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Snapshot(name={self.name!r}, version={self.data_version}, "
                f"rows={self.num_rows}, columns={self.num_columns})")


@dataclass(frozen=True)
class TableDelta:
    """The difference between two snapshots of one store.

    Attributes
    ----------
    base_version / new_version:
        The two ``data_version`` endpoints (``base_version`` may be 0, the
        empty store).
    base_rows:
        **Live** row count at ``base_version``.
    appended:
        The rows appended after the base version *and still live*, as their
        own :class:`Table`, dictionary-encoded against the **new** snapshot's
        (full) domains — exactly what the chunk-vectorised labeling kernel
        and Algorithm 1 sampling consume.  In the new snapshot they occupy
        the tail positions ``[surviving_base_rows, num_rows)``.
    removed:
        The rows that were live at the base version but are tombstoned now,
        encoded against the same current domains (``None`` when nothing was
        removed).  Labeling *subtracts* their cardinality contribution;
        fine-tuning replays them as negatives.
    grown_columns:
        Names of columns whose domain grew between the two versions.
    promoted_columns:
        Names of columns whose dictionary *dtype kind* changed (e.g. a
        numeric column promoted to strings by a later append).  Promotion
        changes predicate comparison semantics, so delta labeling refuses
        to reuse base counts across it.
    """

    base_version: int
    new_version: int
    base_rows: int
    appended: Table
    removed: Table | None = None
    grown_columns: tuple[str, ...] = ()
    promoted_columns: tuple[str, ...] = ()

    @property
    def appended_rows(self) -> int:
        return self.appended.num_rows

    @property
    def removed_rows(self) -> int:
        return 0 if self.removed is None else self.removed.num_rows

    @property
    def surviving_base_rows(self) -> int:
        """Base-version live rows still live in the new snapshot.

        They occupy positions ``[0, surviving_base_rows)`` of the new
        snapshot; the appended (live) rows fill the tail.
        """
        return self.base_rows - self.removed_rows

    @property
    def churned_rows(self) -> int:
        """Total rows that changed state: appended-and-live plus removed."""
        return self.appended_rows + self.removed_rows

    @property
    def domains_grew(self) -> bool:
        return bool(self.grown_columns)


@dataclass
class _ColumnState:
    """One column inside the store: current dictionary + immutable chunks."""

    name: str
    distinct_values: np.ndarray          # sorted, append-only growth
    chunks: list[np.ndarray]             # int64 code arrays, never mutated


@dataclass(frozen=True)
class _VersionInfo:
    """What the store remembers about each published version.

    ``appended_total`` / ``removed_total`` are lifetime-cumulative row
    counters (monotone, unaffected by compaction), so churn between two
    versions is a pair of subtractions.  ``tombstones`` are references to
    the per-chunk bitmaps current at publish time (bitmaps are immutable:
    deletes replace them, never mutate them), which is what lets a later
    delta reconstruct exactly which rows were removed since this version.
    ``epoch`` identifies the chunk layout; compaction starts a new epoch
    and deltas refuse to mix epochs.
    """

    appended_total: int
    removed_total: int
    live_rows: int
    num_chunks: int
    ndv: tuple[int, ...]
    dtype_kinds: tuple[str, ...]
    tombstones: tuple["np.ndarray | None", ...]
    epoch: int


class ColumnStore:
    """A mutable, chunked, dictionary-encoded columnar store.

    Thread-safe for concurrent ``append``/``delete``/``snapshot``/``delta``
    calls (one writer lock); snapshots handed out are immutable and never
    change under the caller, whatever the store does afterwards.
    """

    def __init__(self, name: str, column_names: Sequence[str]) -> None:
        if not column_names:
            raise ValueError("a column store needs at least one column")
        names = list(column_names)
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in store {name!r}")
        self.name = name
        self._columns = [
            _ColumnState(name=column_name,
                         distinct_values=np.empty(0, dtype=np.int64),
                         chunks=[])
            for column_name in names
        ]
        #: live (non-tombstoned) rows — what snapshots expose
        self._live_rows = 0
        #: physical rows currently held in chunks (live + tombstoned)
        self._chunk_rows = 0
        #: lifetime-cumulative counters (monotone; compaction leaves them
        #: untouched, so churn math survives physical rewrites)
        self._appended_total = 0
        self._removed_total = 0
        #: one bitmap slot per chunk, shared by all columns (chunk
        #: partitioning is row-aligned); ``None`` means the chunk has no
        #: tombstoned rows.  Bitmaps are immutable once published.
        self._tombstones: list[np.ndarray | None] = []
        #: chunk-layout generation; compaction bumps it so deltas never mix
        #: pre- and post-compaction chunk indices
        self._chunk_epoch = 0
        self._data_version = 0
        self._lock = threading.RLock()
        # Version 0 is always the empty store, so deltas/staleness against an
        # unknown base degrade to "everything is new" instead of failing.
        self._versions: dict[int, _VersionInfo] = {
            0: _VersionInfo(appended_total=0, removed_total=0, live_rows=0,
                            num_chunks=0,
                            ndv=tuple(0 for _ in names),
                            dtype_kinds=tuple("i" for _ in names),
                            tombstones=(), epoch=0),
        }
        self._snapshot_cache: dict[int, Snapshot] = {}
        # Every snapshot ever handed out, tracked weakly: entries disappear
        # as callers drop their snapshots, which is what makes a version
        # "unreachable" for trim_versions().
        self._live_snapshots: "weakref.WeakValueDictionary[int, Snapshot]" = (
            weakref.WeakValueDictionary())
        #: chaos seam: a callable fired as ``hook("store.append")`` etc.
        #: before each mutation commits; a raising hook simulates the
        #: mutation failing before any state changed
        self.fault_hook = None

    def _fault(self, site: str) -> None:
        hook = self.fault_hook
        if hook is not None:
            hook(site, store=self.name)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_table(cls, table: Table, name: str | None = None) -> "ColumnStore":
        """Seed a store with an existing table's tuples (version 1)."""
        store = cls(name or table.name, table.column_names)
        with store._lock:
            for state, column in zip(store._columns, table.columns):
                state.distinct_values = np.asarray(column.distinct_values)
                state.chunks.append(np.asarray(column.codes, dtype=np.int64))
            store._tombstones.append(None)
            rows = table.num_rows
            store._live_rows = rows
            store._chunk_rows = rows
            store._appended_total = rows
            store._publish()
        return store

    @classmethod
    def from_dict(cls, name: str, data: Mapping[str, Iterable]) -> "ColumnStore":
        """Seed a store from raw values (version 1)."""
        store = cls(name, list(data))
        store.append(data)
        return store

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def column_names(self) -> list[str]:
        return [state.name for state in self._columns]

    @property
    def num_rows(self) -> int:
        """Live (non-tombstoned) rows — the size of the current snapshot."""
        with self._lock:
            return self._live_rows

    @property
    def physical_rows(self) -> int:
        """Rows physically held in chunks, including tombstoned ones."""
        with self._lock:
            return self._chunk_rows

    @property
    def tombstone_fraction(self) -> float:
        """Dead fraction of the physical rows (the compaction trigger)."""
        with self._lock:
            if self._chunk_rows == 0:
                return 0.0
            return (self._chunk_rows - self._live_rows) / self._chunk_rows

    @property
    def data_version(self) -> int:
        with self._lock:
            return self._data_version

    @property
    def tracked_versions(self) -> list[int]:
        """Versions whose per-version metadata is still retained."""
        with self._lock:
            return sorted(self._versions)

    def live_rows_at(self, version: int | None) -> int | None:
        """Live row count at ``version`` (``None`` if unknown/trimmed)."""
        with self._lock:
            if version is None:
                return None
            info = self._versions.get(int(version))
            return None if info is None else info.live_rows

    def oldest_live_version(self) -> int:
        """The oldest version some caller still holds a :class:`Snapshot` of.

        Falls back to the current version when no snapshot is live — then
        nothing older than "now" can ever be asked for again.
        """
        with self._lock:
            live = [version for version in self._live_snapshots]
            return min(live, default=self._data_version)

    def trim_versions(self, before: int | None = None) -> int:
        """Drop per-version metadata for unreachable old versions.

        Every append publishes a :class:`_VersionInfo` so staleness and
        deltas can be answered against any historical base — which grows
        forever on a long-lived store.  Versions below the oldest *live*
        snapshot and below ``before`` are dropped.  Liveness only tracks
        :class:`Snapshot` objects: a caller that remembers a version as a
        plain int (e.g. a service whose model came from a registry) must
        pass it as ``before`` to keep it answerable.  Version 0 (the empty
        store) and the current version always survive; asking about a
        trimmed version later degrades to the documented unknown-base
        behaviour (everything counts as appended) instead of failing.

        Returns the number of versions trimmed.
        """
        with self._lock:
            limit = min(v for v in (
                self.oldest_live_version(),
                self._data_version,
                before if before is not None else self._data_version,
            ))
            stale = [version for version in self._versions
                     if 0 < version < limit]
            for version in stale:
                del self._versions[version]
                self._snapshot_cache.pop(version, None)
            return len(stale)

    def rows_since(self, base_version: int) -> int:
        """Rows churned after ``base_version`` (staleness of that version).

        Churn counts both directions of change: rows appended *and* rows
        removed since the base — a model trained at the base version is
        equally stale whichever way the live set moved.  Unknown (trimmed
        or foreign) versions count from the empty store: every current live
        row is considered new.
        """
        with self._lock:
            base = self._versions.get(int(base_version))
            if base is None:
                return self._live_rows
            return ((self._appended_total - base.appended_total)
                    + (self._removed_total - base.removed_total))

    # ------------------------------------------------------------------
    # Append
    # ------------------------------------------------------------------
    def append(self, data: Mapping[str, Iterable]) -> Snapshot:
        """Append one batch of raw rows; returns the new snapshot.

        ``data`` maps every column name to an equal-length sequence of raw
        values.  Values already covered by the current dictionaries take the
        domain-preserving fast path (no remap); new values grow the
        dictionaries with a stable code remap applied copy-on-write, so
        previously handed-out snapshots are unaffected.  Appending zero rows
        returns the current snapshot without bumping the version.
        """
        arrays = self._validate_batch(data)
        if arrays[0].size == 0:
            return self.snapshot()
        self._fault("store.append")
        with self._lock:
            for state, values in zip(self._columns, arrays):
                self._append_column(state, values)
            self._tombstones.append(None)
            size = int(arrays[0].size)
            self._live_rows += size
            self._chunk_rows += size
            self._appended_total += size
            self._publish()
            return self.snapshot()

    def _validate_batch(self, data: Mapping[str, Iterable]) -> list[np.ndarray]:
        expected = self.column_names
        missing = [name for name in expected if name not in data]
        unknown = [name for name in data if name not in expected]
        if missing or unknown:
            raise KeyError(
                f"append to store {self.name!r} must cover exactly its columns; "
                f"missing {missing}, unknown {unknown}")
        arrays = []
        for name in expected:
            values = data[name]
            array = (values if isinstance(values, np.ndarray)
                     else np.asarray(list(values)))
            if array.ndim != 1:
                raise ValueError(f"column {name!r}: appended values must be 1-D")
            arrays.append(array)
        lengths = {array.size for array in arrays}
        if len(lengths) != 1:
            raise ValueError(f"appended columns have differing lengths: {lengths}")
        return arrays

    def _append_column(self, state: _ColumnState, values: np.ndarray) -> None:
        """Encode ``values`` against (a possibly grown) dictionary."""
        dictionary = state.distinct_values
        if dictionary.size and values.size:
            values = self._unify_dtype(state, values)
            dictionary = state.distinct_values  # may have been promoted
        if dictionary.size:
            positions = np.searchsorted(dictionary, values)
            clipped = np.minimum(positions, dictionary.size - 1)
            in_domain = dictionary[clipped] == values
            if in_domain.all():
                # Domain-preserving fast path: no dictionary change, no remap.
                state.chunks.append(clipped.astype(np.int64))
                return
            new_distinct = np.unique(values[~in_domain])
            merged = np.union1d(dictionary, new_distinct)
        else:
            merged = np.unique(values)
        if dictionary.size:
            # Stable remap old codes -> new codes; union1d keeps every old
            # value, so this lookup is exact.  Chunks are replaced by fresh
            # remapped arrays (copy-on-remap): snapshots holding the old
            # arrays stay consistent with the old dictionary.  Tombstone
            # bitmaps are row-positional, so the remap leaves them alone.
            remap = np.searchsorted(merged, dictionary)
            state.chunks = [remap[chunk] for chunk in state.chunks]
        state.distinct_values = merged
        state.chunks.append(np.searchsorted(merged, values).astype(np.int64))

    def _unify_dtype(self, state: _ColumnState, values: np.ndarray) -> np.ndarray:
        """Promote the column dictionary and/or the batch to a common dtype.

        Numeric kinds promote through NumPy's rules; mixing numeric and
        string kinds promotes everything to strings (with a full re-sort and
        remap, since lexicographic order differs from numeric order).
        """
        old = state.distinct_values.dtype
        new = values.dtype
        if old.kind == new.kind:
            return values
        numeric = ("i", "u", "f", "b")
        if old.kind in numeric and new.kind in numeric:
            return values  # searchsorted/union1d promote numerics natively
        # Mixed kinds: fall back to the string representation of both sides.
        as_text = state.distinct_values.astype(str)
        order = np.argsort(as_text, kind="stable")
        if not np.array_equal(order, np.arange(order.size)):
            # Re-sorting the dictionary changes code order: remap all chunks.
            remap = np.empty(order.size, dtype=np.int64)
            remap[order] = np.arange(order.size)
            state.chunks = [remap[chunk] for chunk in state.chunks]
        state.distinct_values = as_text[order]
        return values.astype(str)

    # ------------------------------------------------------------------
    # Delete and compaction
    # ------------------------------------------------------------------
    def delete(self, rows) -> Snapshot:
        """Tombstone live rows; returns the new snapshot.

        ``rows`` selects rows of the **current live view** (the table
        :meth:`snapshot` returns) and may be:

        * a boolean mask of length ``num_rows``,
        * an array of live-row indices, or
        * a :class:`~repro.workload.Query` — every live row satisfying it
          is deleted.

        Deletion is logical: chunks are untouched, the affected chunks'
        tombstone bitmaps are replaced with copies carrying the new bits
        (bitmaps are immutable once published, so earlier snapshots and
        version metadata stay exact).  Dictionaries never shrink — a value
        whose last row was deleted keeps its code, so re-appending the same
        value later reuses that code instead of shifting its neighbours.
        Deleting zero rows returns the current snapshot without bumping the
        version.  Physical space is reclaimed separately by :meth:`compact`.
        """
        self._fault("store.delete")
        if hasattr(rows, "predicates"):  # a workload Query (lazy import:
            # the executor imports this module for TableDelta)
            from ..workload.executor import execute
            # Evaluate the predicate scan *outside* the writer lock so a
            # large delete does not stall concurrent appends/snapshots; the
            # mask indexes one specific live view, so re-check the version
            # under the lock and re-evaluate on the (rare) lost race.  The
            # final attempt runs the scan under the lock: guaranteed
            # progress even under pathological concurrent churn.
            for _ in range(3):
                snapshot = self.snapshot()
                mask = execute(snapshot, rows)
                with self._lock:
                    if self._data_version == snapshot.data_version:
                        return self._apply_delete_mask(mask)
            with self._lock:
                return self._apply_delete_mask(execute(self.snapshot(), rows))
        with self._lock:
            return self._apply_delete_mask(self._normalise_delete_selector(rows))

    def _apply_delete_mask(self, mask: np.ndarray) -> Snapshot:
        """Tombstone the live rows ``mask`` selects (caller holds the lock)."""
        count = int(mask.sum())
        if count == 0:
            return self.snapshot()
        offset = 0
        for position, chunk in enumerate(self._columns[0].chunks):
            tombstone = self._tombstones[position]
            if tombstone is None:
                live_positions = np.arange(chunk.size)
            else:
                live_positions = np.flatnonzero(~tombstone)
            segment = mask[offset:offset + live_positions.size]
            offset += live_positions.size
            if not segment.any():
                continue
            grown = (np.zeros(chunk.size, dtype=bool)
                     if tombstone is None else tombstone.copy())
            grown[live_positions[segment]] = True
            self._tombstones[position] = grown
        self._live_rows -= count
        self._removed_total += count
        self._publish()
        return self.snapshot()

    def _normalise_delete_selector(self, rows) -> np.ndarray:
        """Turn a mask or index array into a live-view boolean mask."""
        selector = np.asarray(rows)
        if selector.dtype == bool:
            if selector.shape != (self._live_rows,):
                raise ValueError(
                    f"delete mask has shape {selector.shape} but the live "
                    f"view holds {self._live_rows} rows")
            return selector
        indices = selector.astype(np.int64, casting="safe") if selector.size \
            else np.empty(0, dtype=np.int64)
        if indices.size and (indices.min() < 0
                             or indices.max() >= self._live_rows):
            raise IndexError(
                f"delete indices out of range for a live view of "
                f"{self._live_rows} rows")
        mask = np.zeros(self._live_rows, dtype=bool)
        mask[indices] = True
        return mask

    def compact(self) -> Snapshot:
        """Rewrite chunks without the tombstoned rows; returns the snapshot.

        The physical half of deletion: every column's chunks are merged into
        one fresh chunk holding only live codes, the tombstone bitmaps are
        reset, and a new *chunk epoch* begins.  The live view is unchanged
        bit-for-bit (dictionaries are kept as-is — shrinking a domain would
        change model shapes, which is a cold-train concern, not a storage
        one), so compaction does not add churn: staleness across it stays
        whatever it was.  Deltas whose base predates the compaction can no
        longer map chunk indices and degrade to the documented unknown-base
        behaviour — the lifecycle controller pairs compaction with a cold
        train for exactly that reason.  A store with no dead rows is
        returned unchanged (no version bump).
        """
        return self.compact_measured()[0]

    def compact_measured(self) -> tuple[Snapshot, float, int]:
        """:meth:`compact`, also returning what it reclaimed, atomically.

        Returns ``(snapshot, tombstone_fraction, dropped_rows)`` where the
        fraction and the drop count are measured under the same lock
        acquisition that performs the rewrite — concurrent appends/deletes
        cannot skew them (the lifecycle controller records them in its
        event log).
        """
        self._fault("store.compact")
        with self._lock:
            fraction = self.tombstone_fraction
            dropped = self._chunk_rows - self._live_rows
            if dropped == 0:
                return self.snapshot(), fraction, 0
            for state in self._columns:
                parts = [chunk if tombstone is None else chunk[~tombstone]
                         for chunk, tombstone
                         in zip(state.chunks, self._tombstones)]
                merged = parts[0] if len(parts) == 1 else np.concatenate(parts)
                state.chunks = [merged]
            self._tombstones = [None]
            self._chunk_rows = self._live_rows
            self._chunk_epoch += 1
            self._publish()
            return self.snapshot(), fraction, dropped

    def _publish(self) -> None:
        """Record the new version's bookkeeping (caller holds the lock)."""
        self._data_version += 1
        self._versions[self._data_version] = _VersionInfo(
            appended_total=self._appended_total,
            removed_total=self._removed_total,
            live_rows=self._live_rows,
            num_chunks=len(self._columns[0].chunks),
            ndv=tuple(state.distinct_values.size for state in self._columns),
            dtype_kinds=tuple(state.distinct_values.dtype.kind
                              for state in self._columns),
            tombstones=tuple(self._tombstones),
            epoch=self._chunk_epoch,
        )
        self._snapshot_cache.clear()

    # ------------------------------------------------------------------
    # Snapshots and deltas
    # ------------------------------------------------------------------
    def snapshot(self) -> Snapshot:
        """The current live rows as an immutable, versioned :class:`Table`."""
        with self._lock:
            version = self._data_version
            cached = self._snapshot_cache.get(version)
            if cached is not None:
                return cached
            columns = [
                Column(name=state.name,
                       distinct_values=state.distinct_values,
                       codes=self._materialise_live(state.chunks))
                for state in self._columns
            ]
            snapshot = Snapshot(self.name, columns, version, store=self)
            self._snapshot_cache[version] = snapshot
            self._live_snapshots[version] = snapshot
            return snapshot

    def _materialise_live(self, chunks: list[np.ndarray]) -> np.ndarray:
        """Concatenate the live rows of ``chunks`` (caller holds the lock)."""
        if not chunks:
            return np.empty(0, dtype=np.int64)
        parts = [chunk if tombstone is None else chunk[~tombstone]
                 for chunk, tombstone in zip(chunks, self._tombstones)]
        if len(parts) == 1:
            return parts[0]  # chunks are immutable; sharing is safe
        return np.concatenate(parts)

    def delta(self, base_version: int | Snapshot) -> TableDelta:
        """What changed between ``base_version`` and the current version.

        Both sides come back encoded against the **current** domains, so the
        delta tables drop straight into the labeling kernel and the
        virtual-table sampler: ``appended`` holds the rows appended since
        the base *and still live*, ``removed`` the rows that were live at
        the base but are tombstoned now (per-chunk tombstone-bitmap diffs
        against the base version's published bitmaps).  An unknown base
        version — trimmed metadata, a foreign version, or a base from
        before the last :meth:`compact` — degrades to the empty store
        (everything live is an append, nothing is removed).
        """
        if isinstance(base_version, Snapshot):
            base_version = base_version.data_version
        base_version = int(base_version)
        with self._lock:
            base = self._versions.get(base_version)
            if base is None or base.epoch != self._chunk_epoch:
                base = self._versions[0]
                base_version = 0
                if base.epoch != self._chunk_epoch:
                    # Version 0 itself predates a compaction: synthesise the
                    # empty base in the current epoch (same degradation).
                    base = _VersionInfo(
                        appended_total=0, removed_total=0, live_rows=0,
                        num_chunks=0,
                        ndv=tuple(0 for _ in self._columns),
                        dtype_kinds=tuple("i" for _ in self._columns),
                        tombstones=(), epoch=self._chunk_epoch)
            chunks = self._columns[0].chunks
            # Chunk boundaries align with appends (remaps preserve the
            # partitioning and deletes never touch chunk arrays), so the
            # appended rows are exactly the chunks past the base version's
            # count — filtered down to the ones still live.
            appended_keep: list[np.ndarray | None] = []
            for position in range(base.num_chunks, len(chunks)):
                tombstone = self._tombstones[position]
                appended_keep.append(None if tombstone is None else ~tombstone)
            # Removed rows live in the base's chunks: the bitmap diff between
            # the current tombstones and the ones published with the base.
            removed_pick: list[tuple[int, np.ndarray]] = []
            for position in range(base.num_chunks):
                current = self._tombstones[position]
                if current is None:
                    continue
                base_tombstone = base.tombstones[position]
                diff = (current if base_tombstone is None
                        else current & ~base_tombstone)
                if diff.any():
                    removed_pick.append((position, diff))
            appended_columns = []
            removed_columns = []
            grown: list[str] = []
            promoted: list[str] = []
            for index, state in enumerate(self._columns):
                parts = [chunk if keep is None else chunk[keep]
                         for chunk, keep
                         in zip(state.chunks[base.num_chunks:], appended_keep)]
                codes = (np.concatenate(parts) if len(parts) > 1
                         else parts[0] if parts
                         else np.empty(0, dtype=np.int64))
                appended_columns.append(Column(name=state.name,
                                               distinct_values=state.distinct_values,
                                               codes=codes))
                if removed_pick:
                    removed_codes = np.concatenate(
                        [state.chunks[position][diff]
                         for position, diff in removed_pick])
                    removed_columns.append(Column(
                        name=state.name,
                        distinct_values=state.distinct_values,
                        codes=removed_codes))
                if state.distinct_values.size != base.ndv[index]:
                    grown.append(state.name)
                # Promotion only matters when the base actually had live
                # rows: counts over an empty base are trivially reusable
                # whatever the dtype became (and version 0's recorded kinds
                # are just the empty-store placeholders).
                if (base.live_rows
                        and state.distinct_values.dtype.kind != base.dtype_kinds[index]):
                    promoted.append(state.name)
            appended = Table(f"{self.name}_delta", appended_columns)
            removed = (Table(f"{self.name}_removed", removed_columns)
                       if removed_columns else None)
            return TableDelta(base_version=base_version,
                              new_version=self._data_version,
                              base_rows=base.live_rows,
                              appended=appended,
                              removed=removed,
                              grown_columns=tuple(grown),
                              promoted_columns=tuple(promoted))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ColumnStore(name={self.name!r}, version={self.data_version}, "
                f"rows={self.num_rows}, columns={len(self._columns)})")
